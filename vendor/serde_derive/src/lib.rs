//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde` crate's value-model [`Serialize`] /
//! [`Deserialize`] traits. Since `syn`/`quote` are unavailable offline, the
//! item is parsed directly from the raw token stream. Supported shapes —
//! everything this workspace uses:
//!
//! * structs with named fields (including `#[serde(with = "module")]`)
//! * tuple structs (newtypes serialize transparently, wider ones as a seq)
//! * unit structs
//! * enums with unit, newtype, tuple and struct variants (externally
//!   tagged, like upstream serde's default)
//!
//! Generic types are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    /// Module path from `#[serde(with = "path")]`, if present.
    with: Option<String>,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&item),
                Mode::Deserialize => gen_deserialize(&item),
            };
            code.parse()
                .expect("serde_derive: generated code must parse")
        }
        Err(msg) => format!("::std::compile_error!({msg:?});")
            .parse()
            .expect("compile_error must parse"),
    }
}

// ---- parsing ----

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => {
            return Err(format!(
                "serde_derive: expected struct or enum, found {other:?}"
            ))
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde_derive: expected item name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive (vendored): generic type {name} is not supported"
        ));
    }

    if kind == "struct" {
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                parse_named_fields(g.stream())?
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => return Err(format!("serde_derive: unexpected struct body {other:?}")),
        };
        Ok(Item::Struct { name, shape })
    } else {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => return Err(format!("serde_derive: expected enum body, found {other:?}")),
        };
        Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        })
    }
}

/// Advances `i` past any `#[...]` attributes, `pub`, and `pub(...)`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Extracts `with = "path"` from a `#[serde(...)]` attribute body, if the
/// attribute at `tokens[i]` is one. `i` must point at the `#`.
fn serde_with_of_attr(tokens: &[TokenTree], i: usize) -> Option<String> {
    let TokenTree::Group(bracket) = tokens.get(i + 1)? else {
        return None;
    };
    let inner: Vec<TokenTree> = bracket.stream().into_iter().collect();
    match (inner.first(), inner.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            let args: Vec<TokenTree> = args.stream().into_iter().collect();
            match (args.first(), args.get(1), args.get(2)) {
                (
                    Some(TokenTree::Ident(key)),
                    Some(TokenTree::Punct(eq)),
                    Some(TokenTree::Literal(lit)),
                ) if key.to_string() == "with" && eq.as_char() == '=' => {
                    let s = lit.to_string();
                    Some(s.trim_matches('"').to_string())
                }
                _ => None,
            }
        }
        _ => None,
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes (catching `#[serde(with = "...")]`).
        let mut with = None;
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(path) = serde_with_of_attr(&tokens, i) {
                with = Some(path);
            }
            i += 2;
        }
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => {
                return Err(format!(
                    "serde_derive: expected field name, found {other:?}"
                ))
            }
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("serde_derive: expected ':', found {other:?}")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
        fields.push(Field { name, with });
    }
    Ok(Shape::Named(fields))
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0;
    let mut saw_any = false;
    for tok in body {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => saw_any = true,
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("serde_derive: expected variant, found {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                parse_named_fields(g.stream())?
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip to the next top-level comma (covers discriminants).
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---- codegen ----

fn field_to_value(access: &str, with: &Option<String>) -> String {
    match with {
        Some(path) => format!(
            "match {path}::serialize(&{access}, serde::ValueSerializer) {{ \
                 Ok(v) => v, Err(e) => ::std::panic!(\"serialize failed: {{e}}\") }}"
        ),
        None => format!("serde::Serialize::to_value(&{access})"),
    }
}

fn named_fields_to_map(fields: &[Field], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            let access = format!("{access_prefix}{}", f.name);
            format!(
                "({:?}.to_string(), {})",
                f.name,
                field_to_value(&access, &f.with)
            )
        })
        .collect();
    format!("serde::Value::Map(vec![{}])", entries.join(", "))
}

fn named_fields_from_map(
    type_path: &str,
    fields: &[Field],
    value_expr: &str,
    context: &str,
) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let fetch = format!(
                "{value_expr}.get({:?}).ok_or_else(|| serde::DeError::custom(\
                     format!(\"missing field `{}` in {context}\")))?",
                f.name, f.name
            );
            match &f.with {
                Some(path) => format!(
                    "{}: {path}::deserialize(serde::ValueDeserializer(({fetch}).clone()))?",
                    f.name
                ),
                None => format!("{}: serde::Deserialize::from_value({fetch})?", f.name),
            }
        })
        .collect();
    format!("{type_path} {{ {} }}", inits.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "serde::Value::Null".to_string(),
                Shape::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => named_fields_to_map(fields, "self."),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.shape {
                    Shape::Unit => {
                        format!("Self::{0} => serde::Value::Str({0:?}.to_string()),", v.name)
                    }
                    Shape::Tuple(1) => format!(
                        "Self::{0}(x0) => serde::Value::Map(vec![({0:?}.to_string(), \
                             serde::Serialize::to_value(x0))]),",
                        v.name
                    ),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Serialize::to_value(x{i})"))
                            .collect();
                        format!(
                            "Self::{0}({binds}) => serde::Value::Map(vec![({0:?}.to_string(), \
                                 serde::Value::Seq(vec![{items}]))]),",
                            v.name,
                            binds = binds.join(", "),
                            items = items.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "({:?}.to_string(), {})",
                                    f.name,
                                    field_to_value(&f.name, &f.with)
                                )
                            })
                            .collect();
                        format!(
                            "Self::{0} {{ {binds} }} => serde::Value::Map(vec![({0:?}.to_string(), \
                                 serde::Value::Map(vec![{entries}]))]),",
                            v.name,
                            binds = binds.join(", "),
                            entries = entries.join(", ")
                        )
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("Ok({name})"),
                Shape::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(value)?))")
                }
                Shape::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "match value {{\n\
                             serde::Value::Seq(items) if items.len() == {n} => \
                                 Ok({name}({inits})),\n\
                             other => Err(serde::DeError::custom(format!(\
                                 \"expected {n}-element sequence for {name}, found {{other:?}}\"))),\n\
                         }}",
                        inits = inits.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let build = named_fields_from_map(name, fields, "value", name);
                    format!("Ok({build})")
                }
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("{0:?} => Ok(Self::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match &v.shape {
                    Shape::Unit => None,
                    Shape::Tuple(1) => Some(format!(
                        "{0:?} => Ok(Self::{0}(serde::Deserialize::from_value(payload)?)),",
                        v.name
                    )),
                    Shape::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        Some(format!(
                            "{0:?} => match payload {{\n\
                                 serde::Value::Seq(items) if items.len() == {n} => \
                                     Ok(Self::{0}({inits})),\n\
                                 other => Err(serde::DeError::custom(format!(\
                                     \"bad payload for {name}::{0}: {{other:?}}\"))),\n\
                             }},",
                            v.name,
                            inits = inits.join(", ")
                        ))
                    }
                    Shape::Named(fields) => {
                        let build = named_fields_from_map(
                            &format!("Self::{}", v.name),
                            fields,
                            "payload",
                            &format!("{name}::{}", v.name),
                        );
                        Some(format!("{0:?} => Ok({build}),", v.name))
                    }
                })
                .collect();
            let body = format!(
                "match value {{\n\
                     serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => Err(serde::DeError::custom(format!(\
                             \"unknown variant {{other}} of {name}\"))),\n\
                     }},\n\
                     serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let (tag, payload) = &entries[0];\n\
                         let _ = payload;\n\
                         match tag.as_str() {{\n\
                             {data_arms}\n\
                             other => Err(serde::DeError::custom(format!(\
                                 \"unknown variant {{other}} of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(serde::DeError::custom(format!(\
                         \"expected variant of {name}, found {{other:?}}\"))),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                data_arms = data_arms.join("\n")
            );
            (name, body)
        }
    };
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn from_value(value: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
