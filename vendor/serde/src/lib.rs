//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides a
//! simplified but API-shaped replacement: types implement [`Serialize`] /
//! [`Deserialize`] (usually via `#[derive(Serialize, Deserialize)]` from the
//! sibling `serde_derive` stub) by converting to and from a self-describing
//! [`Value`] tree. `serde_json` (also vendored) renders that tree as JSON.
//!
//! The generic [`Serializer`] / [`Deserializer`] traits are preserved so
//! hand-written adapters (e.g. `#[serde(with = "module")]` helpers) keep
//! their upstream signatures: `fn serialize<S: Serializer>(..) -> Result<S::Ok,
//! S::Error>`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A self-describing serialized tree — the data model every [`Serialize`]
/// impl produces and every [`Deserialize`] impl consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative integers.
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Key order is preserved (struct fields serialize in declaration
    /// order), which keeps output byte-stable.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Error construction hook, mirroring `serde::de::Error` /
/// `serde::ser::Error`.
pub trait Error: Sized {
    fn custom(msg: String) -> Self;
}

impl Error for DeError {
    fn custom(msg: String) -> Self {
        DeError(msg)
    }
}

/// A sink for one [`Value`] tree.
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;

    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A source of one [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

/// Serializable types. Implemented by `#[derive(Serialize)]` via
/// [`Serialize::to_value`].
pub trait Serialize {
    /// Converts `self` into the serialization data model.
    fn to_value(&self) -> Value;

    /// Upstream-shaped entry point.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// Deserializable types. Implemented by `#[derive(Deserialize)]` via
/// [`Deserialize::from_value`].
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from the serialization data model.
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// Upstream-shaped entry point.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.deserialize_value()?;
        Self::from_value(&value).map_err(|e| D::Error::custom(e.0))
    }
}

/// A [`Serializer`] producing the [`Value`] tree itself. Used by derived
/// code to drive `#[serde(with = "...")]` adapter modules.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = DeError;

    fn serialize_value(self, value: Value) -> Result<Value, DeError> {
        Ok(value)
    }
}

/// A [`Deserializer`] reading from an owned [`Value`] tree. Used by derived
/// code to drive `#[serde(with = "...")]` adapter modules.
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;

    fn deserialize_value(self) -> Result<Value, DeError> {
        Ok(self.0)
    }
}

// ---- impls for std types ----

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = match value {
                    Value::U64(v) => *v,
                    Value::I64(v) if *v >= 0 => *v as u64,
                    other => return Err(DeError::custom(format!(
                        "expected unsigned integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(raw).map_err(|_| DeError::custom(format!(
                    "integer {raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw: i64 = match value {
                    Value::I64(v) => *v,
                    Value::U64(v) => i64::try_from(*v).map_err(|_| {
                        DeError::custom(format!("integer {v} out of range for i64"))
                    })?,
                    other => return Err(DeError::custom(format!(
                        "expected integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(raw).map_err(|_| DeError::custom(format!(
                    "integer {raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::F64(v) => Ok(*v),
            Value::U64(v) => Ok(*v as f64),
            Value::I64(v) => Ok(*v as f64),
            other => Err(DeError::custom(format!("expected float, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!(
                "expected sequence, found {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(value).map(Into::into)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = match value {
                    Value::Seq(items) => items,
                    other => return Err(DeError::custom(format!(
                        "expected tuple sequence, found {other:?}"
                    ))),
                };
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                if items.len() != LEN {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {LEN}, found {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

/// Maps serialize as a sequence of `[key, value]` pairs: JSON objects can
/// only key on strings, and this workspace keys maps by ids and tuples.
impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(value).map(|items| items.into_iter().collect())
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T, S> Deserialize<'de> for std::collections::HashSet<T, S>
where
    T: Deserialize<'de> + std::hash::Hash + Eq,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(value).map(|items| items.into_iter().collect())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Vec::<(K, V)>::from_value(value).map(|pairs| pairs.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: Deserialize<'de> + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Vec::<(K, V)>::from_value(value).map(|pairs| pairs.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()),
            Ok(vec![1, 2, 3])
        );
        let pair = (3u32, "x".to_string());
        assert_eq!(<(u32, String)>::from_value(&pair.to_value()), Ok(pair));
    }

    #[test]
    fn btreemap_round_trips_as_pairs() {
        let mut m = BTreeMap::new();
        m.insert((1u32, 2u32), 9u64);
        let v = m.to_value();
        assert!(matches!(v, Value::Seq(_)));
        assert_eq!(BTreeMap::<(u32, u32), u64>::from_value(&v), Ok(m));
    }
}
