//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API this workspace uses — the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`arbitrary::any`], `prop_assert*` and `prop_assume!` — implemented as a
//! deterministic random-sampling runner (no shrinking). Each test draws its
//! cases from a seed derived from the test name, so failures reproduce; set
//! `PROPTEST_SEED` to explore other schedules and `PROPTEST_CASES` to change
//! the per-test case count.

pub mod test_runner {
    /// Per-test configuration (only the knobs the workspace uses).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// Why a sampled case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the message explains it.
        Fail(String),
        /// `prop_assume!` rejected the inputs; resample.
        Reject,
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// The deterministic generator cases are drawn from (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test name (stable across runs), XORed with
        /// `PROPTEST_SEED` when set.
        pub fn from_name(name: &str) -> Self {
            const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
            const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
            let mut h = FNV_OFFSET;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(FNV_PRIME);
            }
            let env = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            TestRng { state: h ^ env }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `bound` (> 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let m = (self.next_u64() as u128) * (bound as u128);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives one property: samples cases until `config.cases` pass, a case
    /// fails (panic, with the inputs), or the rejection budget is exhausted.
    pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    {
        let mut rng = TestRng::from_name(name);
        let mut passed = 0u32;
        let mut rejected = 0u64;
        let reject_budget = u64::from(config.cases) * 64 + 256;
        while passed < config.cases {
            let (inputs, outcome) = case(&mut rng);
            match outcome {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= reject_budget,
                        "proptest {name}: rejected {rejected} cases \
                         (only {passed}/{} passed); prop_assume! too strict?",
                        config.cases
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {name}: case failed after {passed} passing cases\n\
                         inputs: {inputs}\n{msg}"
                    );
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value: Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then samples from the strategy `f` builds
        /// from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Boxes the strategy (API compatibility).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Trait-object strategy, as returned by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn SampleOnly<T>>);

    /// Object-safe sampling facet.
    trait SampleOnly<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> SampleOnly<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Integers (and floats) that range strategies can produce.
    pub trait SampleValue: Copy + Debug + PartialOrd {
        fn sample_range(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self;
        fn sample_full(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_sample_unsigned {
        ($($t:ty),*) => {$(
            impl SampleValue for $t {
                fn sample_range(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                    let lo = lo as u64;
                    let hi = hi as u64;
                    let span = hi - lo;
                    if inclusive {
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        (lo + rng.below(span + 1)) as $t
                    } else {
                        assert!(span > 0, "empty range strategy");
                        (lo + rng.below(span)) as $t
                    }
                }
                fn sample_full(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    macro_rules! impl_sample_signed {
        ($($t:ty),*) => {$(
            impl SampleValue for $t {
                fn sample_range(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                    let lo = (lo as i64 as u64) ^ (1 << 63);
                    let hi = (hi as i64 as u64) ^ (1 << 63);
                    let span = hi - lo;
                    let raw = if inclusive {
                        if span == u64::MAX {
                            rng.next_u64()
                        } else {
                            lo + rng.below(span + 1)
                        }
                    } else {
                        assert!(span > 0, "empty range strategy");
                        lo + rng.below(span)
                    };
                    (raw ^ (1 << 63)) as i64 as $t
                }
                fn sample_full(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_sample_unsigned!(u8, u16, u32, u64, usize);
    impl_sample_signed!(i8, i16, i32, i64, isize);

    macro_rules! impl_sample_float {
        ($($t:ty),*) => {$(
            impl SampleValue for $t {
                fn sample_range(rng: &mut TestRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
                    assert!(lo < hi, "empty float range strategy");
                    let u = rng.unit_f64() as $t;
                    lo + (hi - lo) * u
                }
                fn sample_full(rng: &mut TestRng) -> Self {
                    (rng.unit_f64() * 2.0 - 1.0) as $t * <$t>::MAX
                }
            }
        )*};
    }

    impl_sample_float!(f32, f64);

    impl<T: SampleValue> Strategy for std::ops::Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample_range(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleValue> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample_range(rng, *self.start(), *self.end(), true)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_tuple!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
    );
}

pub mod arbitrary {
    use crate::strategy::{SampleValue, Strategy};
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Strategy for the full domain of `T` (`any::<T>()`).
    pub struct Any<T>(PhantomData<T>);

    /// Samples any value of `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    /// Types `any` supports.
    pub trait ArbitraryValue: std::fmt::Debug + Copy {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: SampleValue> ArbitraryValue for T {
        fn arbitrary(rng: &mut TestRng) -> Self {
            T::sample_full(rng)
        }
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Acceptable size arguments for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    /// `prop::collection::vec(...)`-style paths, as in upstream's prelude.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Mirrors upstream's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_property(x in 0u64..100, ys in prop::collection::vec(0u32..9, 1..5)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                let __vals = ($($crate::strategy::Strategy::sample(&($strat), __rng),)+);
                let __inputs = format!("{:?}", __vals);
                let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    let ($($pat,)+) = __vals;
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                (__inputs, __outcome)
            });
        }
    )*};
}

/// Asserts inside a property; on failure the case (with its inputs) is
/// reported and the test panics.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert!`-style equality check.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)+);
    }};
}

/// `prop_assert!`-style inequality check.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)+);
    }};
}

/// Rejects the current case (resampled without counting toward the case
/// budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in -3i32..=3, f in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..=3).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(xs in prop::collection::vec(0u8..4, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|x| *x < 4));
        }

        #[test]
        fn maps_and_flat_maps_compose(
            v in (1usize..4).prop_flat_map(|n| prop::collection::vec(Just(n), n))
        ) {
            prop_assert!(!v.is_empty());
            prop_assert_eq!(v.len(), v[0]);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "case failed")]
    fn failing_property_panics_with_inputs() {
        crate::proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[allow(dead_code)]
            fn always_fails(x in 0u64..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
