//! Offline stand-in for `serde_json`: renders the vendored `serde` crate's
//! [`Value`] tree as JSON text and parses it back.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns an error for non-finite floats (JSON has no representation for
/// them).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, DeError> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value())?;
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T, DeError> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(DeError::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, value: &Value) -> Result<(), DeError> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if !v.is_finite() {
                return Err(DeError::custom(format!("non-finite float {v} in JSON")));
            }
            // Rust's shortest-roundtrip formatting; ensure a float stays a
            // float through reparsing.
            let s = v.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::custom(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, DeError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(DeError::custom(format!(
                                "expected ',' or ']' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(DeError::custom(format!(
                                "expected ',' or '}}' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(DeError::custom(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| DeError::custom(format!("invalid utf-8: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| DeError::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|e| DeError::custom(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| DeError::custom(e.to_string()))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| DeError::custom("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(DeError::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(DeError::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| DeError::custom(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| DeError::custom(format!("bad number {text:?}: {e}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Value::I64)
                .ok_or_else(|| DeError::custom(format!("bad number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| DeError::custom(format!("bad number {text:?}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(
            to_string(&"a\"b\\c\nd".to_string()).unwrap(),
            r#""a\"b\\c\nd""#
        );
        assert_eq!(from_str::<String>(r#""a\"b\\c\nd""#).unwrap(), "a\"b\\c\nd");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(1u32, 2.5f64), (3, 4.0)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2.5],[3,4.0]]");
        assert_eq!(from_str::<Vec<(u32, f64)>>(&json).unwrap(), v);
        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("7").unwrap(), Some(7));
    }

    #[test]
    fn whitespace_and_nesting() {
        let v: Vec<Vec<u8>> = from_str(" [ [1, 2] , [ ] ] ").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![]]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("42 trailing").is_err());
        assert!(from_str::<u64>("[").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
