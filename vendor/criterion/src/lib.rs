//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API this workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `measurement_time`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — measured with plain
//! `std::time::Instant`. No statistics beyond min/median/max, no HTML
//! reports.
//!
//! Each bench calibrates with one untimed iteration, then spreads a time
//! budget (default 300 ms, override with `CRITERION_MEASURE_MS`) over up to
//! `sample_size` samples and reports nanoseconds per iteration. Passing
//! `--test` (as `cargo test --benches` does) runs every routine exactly once
//! without timing.

use std::time::{Duration, Instant};

/// Opaque value barrier: keeps the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
struct BenchConfig {
    sample_size: usize,
    measurement: Duration,
    test_mode: bool,
}

impl BenchConfig {
    fn default_from_env() -> Self {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        BenchConfig {
            sample_size: 20,
            measurement: Duration::from_millis(ms),
            test_mode: false,
        }
    }
}

/// The benchmark driver handed to `criterion_group!` target functions.
pub struct Criterion {
    cfg: BenchConfig,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            cfg: BenchConfig::default_from_env(),
        }
    }
}

impl Criterion {
    /// Applies CLI arguments (`--test` switches to run-once mode; everything
    /// else, e.g. cargo's `--bench`, is accepted and ignored).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.cfg.test_mode = true;
        }
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, self.cfg, &mut f);
        self
    }

    /// Starts a named group whose benches can override sampling settings.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let cfg = self.cfg;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            cfg,
        }
    }
}

/// A group of benches sharing a name prefix and sampling overrides.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    cfg: BenchConfig,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement time budget for benches in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement = d;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.cfg, &mut f);
        self
    }

    /// Ends the group (accepted for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// How much setup output to batch per timing sample (hint only here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to each bench closure; call [`iter`](Bencher::iter) or
/// [`iter_batched`](Bencher::iter_batched) exactly once.
pub struct Bencher {
    cfg: BenchConfig,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::PerIteration);
    }

    /// Times `routine` over inputs built by the untimed `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.cfg.test_mode {
            black_box(routine(setup()));
            self.samples_ns.push(0.0);
            return;
        }

        // Calibration: one timed iteration to estimate per-iteration cost.
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let per_iter_ns = (t0.elapsed().as_nanos() as u64).max(1);

        let budget_ns = self.cfg.measurement.as_nanos() as u64;
        let total_iters = (budget_ns / per_iter_ns).clamp(5, 50_000_000);
        let samples = self.cfg.sample_size.min(total_iters as usize).max(1);
        let iters_per_sample = (total_iters / samples as u64).max(1);

        for _ in 0..samples {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples_ns.push(ns);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, cfg: BenchConfig, f: &mut F) {
    let mut bencher = Bencher {
        cfg,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    if cfg.test_mode {
        println!("{name}: ok (test mode, ran once)");
        return;
    }
    let mut ns = bencher.samples_ns;
    if ns.is_empty() {
        println!("{name}: no samples (bench closure never called iter)");
        return;
    }
    ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let low = ns[0];
    let mid = ns[ns.len() / 2];
    let high = ns[ns.len() - 1];
    println!(
        "{name:<48} time: [{} {} {}]  ({} samples)",
        fmt_ns(low),
        fmt_ns(mid),
        fmt_ns(high),
        ns.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles bench target functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("stub/add", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls + 1)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_apply_overrides() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        let mut ran = false;
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
            ran = true;
        });
        g.finish();
        assert!(ran);
    }
}
