//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the subset of the `rand` 0.8 API the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], [`RngCore::next_u64`],
//! [`Rng::gen`] for `f64`/`u64`/`u32`/`bool`, and [`Rng::gen_range`] over
//! integer ranges. The generator is xoshiro256++ seeded through SplitMix64 —
//! the same algorithm real `rand` 0.8 uses for `SmallRng` on 64-bit targets —
//! so streams are deterministic, fast and of good statistical quality.

/// Core trait: a source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array for the real crate; we keep the
    /// same shape).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed via SplitMix64 expansion
    /// (identical to `rand` 0.8's universal implementation).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 per rand_core::SeedableRng::seed_from_u64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Sampling helpers layered on [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive integer ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: UniformRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types drawable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), as in rand 0.8's Standard.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types `gen_range` can produce. Values are mapped onto `u64`
/// through an order-preserving bijection so one unbiased sampler serves
/// every width and signedness.
pub trait SampleUniform: Copy + PartialOrd {
    fn to_ordered_u64(self) -> u64;
    fn from_ordered_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_ordered_u64(self) -> u64 { self as u64 }
            #[inline]
            fn from_ordered_u64(v: u64) -> Self { v as $t }
        }
    )*};
}

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_ordered_u64(self) -> u64 { (self as i64 as u64) ^ (1 << 63) }
            #[inline]
            fn from_ordered_u64(v: u64) -> Self { (v ^ (1 << 63)) as i64 as $t }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// Draws uniformly from `[0, bound)` without modulo bias (Lemire's
/// multiply-shift rejection method).
fn sample_below_u64<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait UniformRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> UniformRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        let lo = self.start.to_ordered_u64();
        let span = self.end.to_ordered_u64() - lo;
        T::from_ordered_u64(lo + sample_below_u64(rng, span))
    }
}

impl<T: SampleUniform> UniformRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        let lo = lo.to_ordered_u64();
        let span = hi.to_ordered_u64() - lo;
        if span == u64::MAX {
            return T::from_ordered_u64(rng.next_u64());
        }
        T::from_ordered_u64(lo + sample_below_u64(rng, span + 1))
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand` 0.8's 64-bit `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0usize..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
