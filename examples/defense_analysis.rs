//! The defender's view of a Grunt campaign — and what it would take to
//! catch it (Section VI).
//!
//! Runs a full campaign, then analyses the recorded run with every
//! detector in the `defense` crate: the deployed stack (Snort-style rules,
//! per-IP rate shield, 1 s resource alerts) that the attack evades, and
//! the proposed millibottleneck-correlation defense that can catch it —
//! at the price of fine-grained monitoring.
//!
//! ```text
//! cargo run --release -p lab --example defense_analysis
//! ```

use apps::social_network;
use defense::{AlertKind, CorrelationDefense, Ids, IdsConfig, RateShield};
use grunt::{CampaignConfig, GruntCampaign};
use microsim::{SimConfig, Simulation};
use simnet::{SimDuration, SimTime};
use workload::ClosedLoopUsers;

fn main() {
    let users = 7_000;
    let app = social_network(users);
    let mut sim = Simulation::new(app.topology().clone(), SimConfig::default().seed(13));
    sim.add_agent(Box::new(ClosedLoopUsers::new(
        users,
        app.browsing_model(),
        99,
    )));
    sim.run_until(SimTime::from_secs(30));
    let campaign = GruntCampaign::run(
        &mut sim,
        CampaignConfig::default(),
        SimDuration::from_secs(300),
    );
    let horizon = sim.now();
    let metrics = sim.metrics();
    println!(
        "campaign complete: {} attack requests from {} bots\n",
        campaign.report.requests_sent, campaign.bots_used
    );

    // ---- the deployed detection stack ----
    println!("== deployed stack (what the paper's clouds run) ==");
    let ids = Ids::new(IdsConfig::default()).analyze(metrics);
    for kind in [
        AlertKind::Content,
        AlertKind::Protocol,
        AlertKind::IntervalViolation,
        AlertKind::ResourceSaturation,
    ] {
        let total = ids.of_kind(kind).count();
        let attacker = ids.of_kind(kind).filter(|a| a.hit_attacker).count();
        println!("  {kind:?}: {total} alerts ({attacker} attributable to the attacker)");
    }
    let shield = RateShield::paper_default();
    println!(
        "  RateShield (100 req / IP / 5 min): {} IPs blocked",
        shield.blocked_count(metrics)
    );

    // ---- the Section VI candidate defense ----
    println!("\n== millibottleneck-correlation defense (proposed, needs 100 ms monitoring) ==");
    let report = CorrelationDefense::default().analyze(metrics, horizon);
    println!(
        "  bottleneck-correlated windows cover {:.1}% of the run",
        report.window_coverage() * 100.0
    );
    println!(
        "  flagged sessions: {} (precision {:.2}, recall {:.2})",
        report.flagged_sessions().len(),
        report.precision(),
        report.recall()
    );
    let top: Vec<String> = report
        .scores()
        .iter()
        .take(5)
        .map(|s| {
            format!(
                "session {} lift {:.1} ({}/{} reqs){}",
                s.session,
                s.lift,
                s.hits,
                s.total,
                if s.is_attack { " [attacker]" } else { "" }
            )
        })
        .collect();
    println!("  most suspicious sessions:");
    for line in top {
        println!("    {line}");
    }
    println!(
        "\nconclusion: the deployed stack sees nothing attributable; correlating \
         request timing with fine-grained millibottleneck detection exposes the \
         bot sessions — the defense direction Section VI argues for."
    );
}
