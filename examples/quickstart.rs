//! Quickstart: deploy SocialNetwork, run a baseline, launch a full Grunt
//! campaign, and print what happened.
//!
//! ```text
//! cargo run --release -p lab --example quickstart
//! ```

use apps::social_network;
use grunt::{CampaignConfig, GruntCampaign};
use microsim::{SimConfig, Simulation};
use simnet::{SimDuration, SimTime};
use telemetry::{LatencySummary, Traffic};
use workload::ClosedLoopUsers;

fn main() {
    // 1. Deploy the target: SocialNetwork provisioned for 7 000 users.
    let users = 7_000;
    let app = social_network(users);
    println!(
        "target: SocialNetwork — {} microservices, {} public request types",
        app.topology().num_services(),
        app.topology().num_request_types()
    );

    // 2. Drive it with a closed-loop user population (7 s think time).
    let mut sim = Simulation::new(app.topology().clone(), SimConfig::default().seed(7));
    sim.add_agent(Box::new(ClosedLoopUsers::new(
        users,
        app.browsing_model(),
        42,
    )));

    // 3. Measure the healthy baseline.
    sim.run_until(SimTime::from_secs(60));
    let baseline = LatencySummary::compute(
        sim.metrics(),
        Traffic::Legit,
        None,
        SimTime::from_secs(10),
        SimTime::from_secs(60),
    );
    println!(
        "baseline: avg {:.0} ms, p95 {:.0} ms over {} requests",
        baseline.avg_ms, baseline.p95_ms, baseline.count
    );

    // 4. Launch the attack: blackbox profiling, then 5 minutes of
    //    alternating millibottleneck bursts.
    let campaign = GruntCampaign::run(
        &mut sim,
        CampaignConfig::default(),
        SimDuration::from_secs(300),
    );
    println!(
        "profiling: {} requests, {} dependency groups found",
        campaign.profile.requests_sent,
        campaign.profile.groups.multi_member_groups().count()
    );
    for group in campaign.profile.groups.multi_member_groups() {
        let names: Vec<_> = group
            .iter()
            .map(|rt| app.topology().request_type(*rt).name.clone())
            .collect();
        println!("  group: {}", names.join(", "));
    }

    // 5. Report the damage.
    let a0 = campaign.attack_started + SimDuration::from_secs(20);
    let a1 = campaign.attack_started + SimDuration::from_secs(300);
    let attacked = LatencySummary::compute(sim.metrics(), Traffic::Legit, None, a0, a1);
    println!(
        "under attack: avg {:.0} ms ({:.1}x), p95 {:.0} ms ({:.1}x)",
        attacked.avg_ms,
        attacked.avg_ms / baseline.avg_ms,
        attacked.p95_ms,
        attacked.p95_ms / baseline.p95_ms
    );
    let pacing = CampaignConfig::default().commander.burst_length;
    let pmb_ms = campaign.report.mean_pmb().map_or(0.0, |d| {
        (d.as_millis_f64() - pacing.as_millis_f64()).max(0.0)
    });
    println!(
        "attacker: {} bursts, {} requests total, {} bots, mean millibottleneck {:.0} ms \
         (stealth goal: <= 500 ms)",
        campaign.report.bursts.len(),
        campaign.report.requests_sent,
        campaign.bots_used,
        pmb_ms
    );
}
