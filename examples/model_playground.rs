//! The analytic model as a planning tool: given a target's parameters,
//! predict burst impact and derive stealthy attack parameters with the
//! equations of Section III — no simulation involved.
//!
//! ```text
//! cargo run --release -p lab --example model_playground
//! ```

use queueing::{
    cross_tier_queue, damage_latency, execution_queue, group_min_damage, group_total_damage,
    maintenance_interval, millibottleneck_length, min_saturating_rate, solve_length_for_pmb,
    BurstPlan, PathParams, StageParams,
};

fn main() {
    // A write path: shared hub (compose-post-like) above a storage
    // bottleneck, parameters in the range of a small container deployment.
    let hub = StageParams::symmetric(32.0, 750.0, 180.0);
    let storage = StageParams::symmetric(20.0, 260.0, 80.0);
    let path = PathParams::new(vec![hub, storage], 1, 0);

    println!("== single-burst analysis (Equations 1-5) ==");
    let stealth_limit_s = 0.5;
    let bottleneck = path.bottleneck_stage();

    // Step 1 of the Commander's initialisation: the minimum saturating
    // rate, with 30% margin.
    let rate = min_saturating_rate(bottleneck.capacity_attack, bottleneck.lambda, 1.3);
    println!("minimum saturating burst rate B = {rate:.0} req/s");

    // Step 2: the longest burst that stays under the stealth limit.
    let max_len = solve_length_for_pmb(
        stealth_limit_s,
        rate,
        bottleneck.capacity_attack,
        bottleneck.lambda,
        bottleneck.capacity_legit,
    )
    .expect("path is attackable");
    let burst = BurstPlan::new(rate, max_len);
    println!(
        "longest stealthy burst L = {:.0} ms -> volume V = {:.0} requests",
        max_len * 1e3,
        burst.volume()
    );

    // Predicted impact of that burst.
    let q_exec = execution_queue(burst, bottleneck.lambda, bottleneck.capacity_attack);
    let q_cross = cross_tier_queue(burst, &path);
    let t_damage = damage_latency(q_exec.max(q_cross), bottleneck.capacity_attack);
    let pmb = millibottleneck_length(
        burst,
        bottleneck.capacity_attack,
        bottleneck.lambda,
        bottleneck.capacity_legit,
    );
    println!("queue build-up: execution {q_exec:.0} req, cross-tier {q_cross:.0} req");
    println!(
        "predicted damage latency t_damage = {:.0} ms, millibottleneck P_MB = {:.0} ms",
        t_damage * 1e3,
        pmb * 1e3
    );

    // Persistent blocking over a 3-path group (Equations 6-9).
    println!("\n== dependency-group attack plan (Equations 6-9) ==");
    let per_path = [t_damage, 0.35, 0.42];
    let t_d = group_total_damage(&per_path);
    let first_interval = 0.3;
    let t_min = group_min_damage(t_d, first_interval);
    println!(
        "opening mixed burst over 3 paths: total damage t_D = {:.0} ms; after the \
         first {first_interval:.1} s interval, persistent t_min = {:.0} ms",
        t_d * 1e3,
        t_min * 1e3
    );
    for (i, d) in per_path.iter().enumerate() {
        println!(
            "  path {i}: maintain with interval I_{i} = t_damage_{i} = {:.0} ms",
            maintenance_interval(*d) * 1e3
        );
    }
    println!(
        "\nEach maintenance burst lands exactly as its predecessor's queue drains \
         (Equation 8's fixed point), so every request entering the group keeps \
         seeing at least {:.0} ms of queueing.",
        t_min * 1e3
    );
}
