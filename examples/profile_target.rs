//! Blackbox dependency profiling of an unknown target.
//!
//! Generates a µBench-style application the "attacker" has never seen,
//! runs only the Profiler module against it, and compares the inferred
//! dependency groups with the administrator's ground truth.
//!
//! ```text
//! cargo run --release -p lab --example profile_target
//! ```

use apps::{UBench, UBenchConfig};
use grunt::{Profiler, ProfilerConfig};
use microsim::{SimConfig, Simulation};
use simnet::{SimDuration, SimTime};
use telemetry::{GroundTruth, ProfilerScore};
use workload::ClosedLoopUsers;

fn main() {
    // An unknown 62-microservice application under moderate load.
    let app = UBench::generate(UBenchConfig::app1(4_000));
    println!(
        "target: {} unique microservices, {} public request types (architecture \
         unknown to the attacker)",
        app.topology().num_services(),
        app.topology().num_request_types()
    );

    let mut sim = Simulation::new(app.topology().clone(), SimConfig::default().seed(21));
    sim.add_agent(Box::new(ClosedLoopUsers::new(
        4_000,
        app.browsing_model(),
        3,
    )));
    sim.run_until(SimTime::from_secs(10));

    // Run the profiler to completion.
    let id = sim.add_agent(Box::new(Profiler::new(ProfilerConfig::default())));
    loop {
        let next = sim.now() + SimDuration::from_secs(30);
        sim.run_until(next);
        if sim.agent_as::<Profiler>(id).expect("registered").is_done() {
            break;
        }
    }
    let outcome = sim
        .agent_as::<Profiler>(id)
        .expect("registered")
        .outcome()
        .expect("done")
        .clone();
    println!(
        "profiling took {} of simulated time and {} requests",
        outcome.finished_at, outcome.requests_sent
    );

    // Baselines and saturation volumes learned per path.
    println!("\nper-path measurements:");
    for (rt, name) in &outcome.catalog {
        println!(
            "  {name:12} baseline {:5.1} ms, saturation volume {:>4} requests",
            outcome.baseline_ms[rt], outcome.v_sat[rt]
        );
    }

    // Estimated groups vs ground truth.
    let gt = GroundTruth::from_topology(app.topology());
    println!("\nestimated groups: {:?}", outcome.groups.groups());
    println!("ground truth:     {:?}", gt.groups().groups());
    let members: Vec<_> = outcome.catalog.iter().map(|(id, _)| *id).collect();
    let score = ProfilerScore::compute(&members, &gt, &outcome.groups);
    println!(
        "precision {:.2}, recall {:.2}, F-score {:.2}",
        score.precision(),
        score.recall(),
        score.f_score()
    );
}
