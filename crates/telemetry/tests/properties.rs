//! Property-based tests of the monitoring views' consistency.

use callgraph::{RequestTypeId, ServiceId, ServiceSpec, TopologyBuilder};
use microsim::agents::FixedRate;
use microsim::{SimConfig, Simulation};
use proptest::prelude::*;
use simnet::{SimDuration, SimTime};
use telemetry::{CoarseMonitor, FineMonitor, LatencySeries, LatencySummary, Traffic};

fn run_sim(rate_per_s: u64, demand_ms: u64, secs: u64, seed: u64) -> microsim::Metrics {
    let mut b = TopologyBuilder::new();
    let gw = b.add_service(ServiceSpec::new("gw").threads(256).cores(4).demand_cv(0.1));
    b.add_request_type("r", vec![(gw, SimDuration::from_millis(demand_ms))]);
    let mut sim = Simulation::new(b.build(), SimConfig::default().seed(seed));
    let count = rate_per_s * secs;
    if count > 0 {
        sim.add_agent(Box::new(FixedRate::new(
            RequestTypeId::new(0),
            SimDuration::from_micros(1_000_000 / rate_per_s),
            count,
        )));
    }
    sim.run_until(SimTime::from_secs(secs + 5));
    sim.into_metrics()
}

/// A run with two request types and an attack source, so every
/// [`Traffic`]/request-type filter combination has matching and
/// non-matching records.
fn run_mixed_sim(
    rate_per_s: u64,
    attack_rate_per_s: u64,
    secs: u64,
    seed: u64,
) -> microsim::Metrics {
    let mut b = TopologyBuilder::new();
    let gw = b.add_service(ServiceSpec::new("gw").threads(256).cores(4).demand_cv(0.1));
    b.add_request_type("r0", vec![(gw, SimDuration::from_millis(2))]);
    b.add_request_type("r1", vec![(gw, SimDuration::from_millis(5))]);
    let mut sim = Simulation::new(b.build(), SimConfig::default().seed(seed));
    for (rt, rate, attack) in [
        (0u32, rate_per_s, false),
        (1u32, rate_per_s / 2 + 1, false),
        (0u32, attack_rate_per_s, true),
    ] {
        if rate == 0 {
            continue;
        }
        let mut agent = FixedRate::new(
            RequestTypeId::new(rt),
            SimDuration::from_micros(1_000_000 / rate),
            rate * secs,
        );
        if attack {
            agent = agent.with_origin(microsim::Origin::attack(7, 7));
        }
        sim.add_agent(Box::new(agent));
    }
    sim.run_until(SimTime::from_secs(secs + 5));
    sim.into_metrics()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The coarse (1 s) view is the mean of the fine (100 ms) view: both
    /// integrate to the same total busy time.
    #[test]
    fn coarse_equals_aggregated_fine(
        rate in 5u64..150,
        demand in 1u64..6,
        seed in any::<u64>(),
    ) {
        let m = run_sim(rate, demand, 8, seed);
        let svc = ServiceId::new(0);
        let fine = FineMonitor::new(&m);
        let coarse = CoarseMonitor::new(&m, SimDuration::from_secs(1));
        let fine_mean = {
            let s = fine.utilization_series(svc);
            s.iter().map(|(_, u)| u).sum::<f64>() / s.len() as f64
        };
        let coarse_mean = {
            let s = coarse.series(svc);
            s.iter().map(|c| c.utilization).sum::<f64>() / s.len() as f64
        };
        // Equal up to a trailing partial-second window.
        prop_assert!(
            (fine_mean - coarse_mean).abs() < 0.02,
            "fine {fine_mean:.4} vs coarse {coarse_mean:.4}"
        );
    }

    /// Latency summaries and series agree: the count-weighted series mean
    /// equals the summary mean over the same interval.
    #[test]
    fn series_consistent_with_summary(
        rate in 5u64..100,
        demand in 1u64..6,
        seed in any::<u64>(),
    ) {
        let m = run_sim(rate, demand, 6, seed);
        let to = SimTime::from_secs(11);
        let summary = LatencySummary::compute(&m, Traffic::All, None, SimTime::ZERO, to);
        let series = LatencySeries::compute(&m, Traffic::All, SimDuration::from_secs(1), to);
        let (mut weighted, mut n) = (0.0, 0usize);
        for (_, mean, count) in series.points() {
            weighted += mean * *count as f64;
            n += count;
        }
        prop_assert_eq!(n, summary.count);
        if n > 0 {
            let series_mean = weighted / n as f64;
            prop_assert!(
                (series_mean - summary.avg_ms).abs() < 1e-6 * (1.0 + summary.avg_ms),
                "series {series_mean} vs summary {}",
                summary.avg_ms
            );
        }
    }

    /// Percentile ordering holds in every summary.
    #[test]
    fn summary_percentiles_ordered(
        rate in 5u64..100,
        demand in 1u64..8,
        seed in any::<u64>(),
    ) {
        let m = run_sim(rate, demand, 5, seed);
        let s = LatencySummary::compute(
            &m,
            Traffic::All,
            None,
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        prop_assert!(s.avg_ms <= s.max_ms + 1e-9);
        prop_assert!(s.p95_ms <= s.p99_ms + 1e-9);
        prop_assert!(s.p99_ms <= s.max_ms + 1e-9);
    }

    /// Differential: the indexed [`LatencySummary::compute`] is
    /// bit-identical (exact float equality via `PartialEq`) to the naive
    /// full-scan reference, for every traffic class, request-type filter,
    /// and window — including empty, inverted, and out-of-range windows.
    #[test]
    fn indexed_summary_matches_naive(
        rate in 5u64..120,
        attack_rate in 0u64..40,
        seed in any::<u64>(),
        traffic_sel in 0u8..3,
        type_sel in 0u32..4,
        from_ms in 0u64..12_000,
        len_ms in 0u64..12_000,
    ) {
        let m = run_mixed_sim(rate, attack_rate, 6, seed);
        let traffic = match traffic_sel {
            0 => Traffic::All,
            1 => Traffic::Legit,
            _ => Traffic::Attack,
        };
        // 0 => no filter, 1/2 => real types, 3 => a type with no records.
        let request_type = type_sel.checked_sub(1).map(RequestTypeId::new);
        let from = SimTime::from_millis(from_ms);
        let to = SimTime::from_millis(from_ms + len_ms);
        let fast = LatencySummary::compute(&m, traffic, request_type, from, to);
        let naive = LatencySummary::compute_naive(&m, traffic, request_type, from, to);
        prop_assert_eq!(fast, naive);
    }

    /// Differential: the indexed [`LatencySeries::compute`] produces
    /// bit-identical points (exact float equality) to the naive full-scan
    /// reference, for every traffic class, window size, and horizon.
    #[test]
    fn indexed_series_matches_naive(
        rate in 5u64..120,
        attack_rate in 0u64..40,
        seed in any::<u64>(),
        traffic_sel in 0u8..3,
        window_ms in 1u64..3_000,
        horizon_ms in 0u64..12_000,
    ) {
        let m = run_mixed_sim(rate, attack_rate, 6, seed);
        let traffic = match traffic_sel {
            0 => Traffic::All,
            1 => Traffic::Legit,
            _ => Traffic::Attack,
        };
        let window = SimDuration::from_millis(window_ms);
        let horizon = SimTime::from_millis(horizon_ms);
        let fast = LatencySeries::compute(&m, traffic, window, horizon);
        let naive = LatencySeries::compute_naive(&m, traffic, window, horizon);
        prop_assert_eq!(fast.points(), naive.points());
    }
}
