//! Client-perceived latency analysis.

use callgraph::RequestTypeId;
use microsim::{Metrics, RequestFilter, RequestRecord};
use simnet::{SampleSet, SimDuration, SimTime};

/// Which traffic class to include when analysing latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Traffic {
    /// Only ground-truth legitimate requests (what the paper's tables
    /// report: the damage perceived by normal users).
    Legit,
    /// Only attack requests (the attacker's own Monitor input).
    Attack,
    /// Everything.
    All,
}

impl Traffic {
    fn matches(self, rec: &RequestRecord) -> bool {
        match self {
            Traffic::Legit => !rec.origin.is_attack,
            Traffic::Attack => rec.origin.is_attack,
            Traffic::All => true,
        }
    }

    /// The equivalent indexed-query origin filter.
    fn attack_filter(self) -> Option<bool> {
        match self {
            Traffic::Legit => Some(false),
            Traffic::Attack => Some(true),
            Traffic::All => None,
        }
    }
}

/// Summary statistics of response times over a time range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of requests.
    pub count: usize,
    /// Mean RT in milliseconds.
    pub avg_ms: f64,
    /// 95th-percentile RT in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile RT in milliseconds.
    pub p99_ms: f64,
    /// Maximum RT in milliseconds.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Computes a summary over the requests of `metrics` completed in
    /// `[from, to)`, restricted to `traffic` and optionally to one request
    /// type. Returns an all-zero summary when nothing matches.
    ///
    /// Runs on the request log's per-segment indexes, so cost is
    /// O(matching records) — including the `Traffic::All` + no-type shape,
    /// which resolves the time range by binary search instead of testing
    /// every record. Samples are gathered in completion order (exactly the
    /// order the naive scan pushes them), so every statistic — means and
    /// exact sorted percentiles alike — is **bit-identical** to
    /// [`LatencySummary::compute_naive`]; a differential proptest asserts
    /// this.
    pub fn compute(
        metrics: &Metrics,
        traffic: Traffic,
        request_type: Option<RequestTypeId>,
        from: SimTime,
        to: SimTime,
    ) -> Self {
        let filter = RequestFilter {
            is_attack: traffic.attack_filter(),
            request_type,
            outcome: None,
        };
        let log = metrics.request_log();
        let n = log.count_matching(from, to, filter);
        if n == 0 {
            return LatencySummary {
                count: 0,
                avg_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                max_ms: 0.0,
            };
        }
        let mut set = SampleSet::with_capacity(n);
        log.for_each_matching(from, to, filter, |rec| {
            set.push(rec.latency().as_millis_f64());
        });
        LatencySummary {
            count: set.len(),
            avg_ms: set.mean(),
            p95_ms: set.percentile(0.95),
            p99_ms: set.percentile(0.99),
            max_ms: set.max(),
        }
    }

    /// Reference implementation of [`LatencySummary::compute`]: a full
    /// scan of the request log with predicate filtering. Kept public as
    /// the ground truth for differential tests and benches.
    pub fn compute_naive(
        metrics: &Metrics,
        traffic: Traffic,
        request_type: Option<RequestTypeId>,
        from: SimTime,
        to: SimTime,
    ) -> Self {
        let mut set = SampleSet::new();
        for rec in metrics.request_log() {
            if rec.completed_at < from || rec.completed_at >= to {
                continue;
            }
            if !traffic.matches(rec) {
                continue;
            }
            if let Some(rt) = request_type {
                if rec.request_type != rt {
                    continue;
                }
            }
            set.push(rec.latency().as_millis_f64());
        }
        if set.is_empty() {
            return LatencySummary {
                count: 0,
                avg_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                max_ms: 0.0,
            };
        }
        LatencySummary {
            count: set.len(),
            avg_ms: set.mean(),
            p95_ms: set.percentile(0.95),
            p99_ms: set.percentile(0.99),
            max_ms: set.max(),
        }
    }
}

/// A windowed average-latency series — the timeline plots of Figs 1, 13d
/// and 15d.
#[derive(Debug, Clone)]
pub struct LatencySeries {
    window: SimDuration,
    /// `(window start, mean RT ms, count)` per window; windows with no
    /// completions carry a zero mean.
    points: Vec<(SimTime, f64, usize)>,
}

impl LatencySeries {
    /// Builds the series over `[0, horizon)` with the given window.
    ///
    /// Buckets via the request log's indexes: the origin posting lists
    /// slice away the non-matching traffic class and the time range is
    /// resolved by binary search. Records are visited in completion order,
    /// so each bucket's float accumulation order — and hence every mean —
    /// is bit-identical to a naive full scan.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn compute(
        metrics: &Metrics,
        traffic: Traffic,
        window: SimDuration,
        horizon: SimTime,
    ) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        let n = (horizon.as_micros() / window.as_micros()) as usize + 1;
        let mut sums = vec![0.0f64; n];
        let mut counts = vec![0usize; n];
        let filter = RequestFilter {
            is_attack: traffic.attack_filter(),
            request_type: None,
            outcome: None,
        };
        metrics
            .request_log()
            .for_each_matching(SimTime::ZERO, horizon, filter, |rec| {
                let idx = (rec.completed_at.as_micros() / window.as_micros()) as usize;
                sums[idx] += rec.latency().as_millis_f64();
                counts[idx] += 1;
            });
        let points = (0..n)
            .map(|i| {
                let start = SimTime::from_micros(i as u64 * window.as_micros());
                let mean = if counts[i] > 0 {
                    sums[i] / counts[i] as f64
                } else {
                    0.0
                };
                (start, mean, counts[i])
            })
            .collect();
        LatencySeries { window, points }
    }

    /// Reference implementation of [`LatencySeries::compute`]: a full scan
    /// of the request log with predicate filtering. Kept public as the
    /// ground truth for differential tests; bucket accumulation order is
    /// identical (completion order), so every mean is bit-identical.
    pub fn compute_naive(
        metrics: &Metrics,
        traffic: Traffic,
        window: SimDuration,
        horizon: SimTime,
    ) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        let n = (horizon.as_micros() / window.as_micros()) as usize + 1;
        let mut sums = vec![0.0f64; n];
        let mut counts = vec![0usize; n];
        for rec in metrics.request_log() {
            if rec.completed_at >= horizon || !traffic.matches(rec) {
                continue;
            }
            let idx = (rec.completed_at.as_micros() / window.as_micros()) as usize;
            sums[idx] += rec.latency().as_millis_f64();
            counts[idx] += 1;
        }
        let points = (0..n)
            .map(|i| {
                let start = SimTime::from_micros(i as u64 * window.as_micros());
                let mean = if counts[i] > 0 {
                    sums[i] / counts[i] as f64
                } else {
                    0.0
                };
                (start, mean, counts[i])
            })
            .collect();
        LatencySeries { window, points }
    }

    /// The window length.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// `(window start, mean RT ms, count)` points.
    pub fn points(&self) -> &[(SimTime, f64, usize)] {
        &self.points
    }

    /// Largest windowed mean RT.
    pub fn peak_ms(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(0.0, f64::max)
    }

    /// Mean of the non-empty windows in `[from, to)`.
    pub fn mean_over(&self, from: SimTime, to: SimTime) -> f64 {
        let pts: Vec<&(SimTime, f64, usize)> = self
            .points
            .iter()
            .filter(|(t, _, c)| *t >= from && *t < to && *c > 0)
            .collect();
        if pts.is_empty() {
            0.0
        } else {
            pts.iter().map(|p| p.1).sum::<f64>() / pts.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use callgraph::{ServiceSpec, TopologyBuilder};
    use microsim::agents::FixedRate;
    use microsim::{Origin, SimConfig, Simulation};

    fn run() -> Metrics {
        let mut b = TopologyBuilder::new();
        let gw = b.add_service(ServiceSpec::new("gw").threads(64).demand_cv(0.0));
        b.add_request_type("r", vec![(gw, SimDuration::from_millis(5))]);
        let mut sim = Simulation::new(b.build(), SimConfig::default());
        sim.add_agent(Box::new(FixedRate::new(
            RequestTypeId::new(0),
            SimDuration::from_millis(20),
            100,
        )));
        sim.add_agent(Box::new(
            FixedRate::new(RequestTypeId::new(0), SimDuration::from_millis(40), 25)
                .with_origin(Origin::attack(99, 99)),
        ));
        sim.run_until(SimTime::from_secs(5));
        sim.into_metrics()
    }

    #[test]
    fn summary_splits_traffic_classes() {
        let m = run();
        let all = LatencySummary::compute(
            &m,
            Traffic::All,
            None,
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        let legit = LatencySummary::compute(
            &m,
            Traffic::Legit,
            None,
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        let attack = LatencySummary::compute(
            &m,
            Traffic::Attack,
            None,
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        assert_eq!(all.count, 125);
        assert_eq!(legit.count, 100);
        assert_eq!(attack.count, 25);
        // Mostly idle: RT = 5 ms demand + 2 hops * 0.25 = 5.5 ms, except
        // when the two sources collide and one queues 5 ms more.
        assert!((5.4..8.0).contains(&legit.avg_ms), "avg {}", legit.avg_ms);
        assert!(legit.p95_ms >= legit.avg_ms * 0.9);
        assert!(all.max_ms >= all.p99_ms);
    }

    #[test]
    fn summary_empty_range_is_zero() {
        let m = run();
        let s = LatencySummary::compute(
            &m,
            Traffic::All,
            None,
            SimTime::from_secs(100),
            SimTime::from_secs(200),
        );
        assert_eq!(s.count, 0);
        assert_eq!(s.avg_ms, 0.0);
    }

    #[test]
    fn series_buckets_by_completion_time() {
        let m = run();
        let series = LatencySeries::compute(
            &m,
            Traffic::All,
            SimDuration::from_secs(1),
            SimTime::from_secs(5),
        );
        assert_eq!(series.points().len(), 6);
        let first_sec = series.points()[0];
        assert!(first_sec.2 > 0, "first second should have completions");
        assert!(
            (5.4..11.0).contains(&series.peak_ms()),
            "peak {}",
            series.peak_ms()
        );
        assert!(series.mean_over(SimTime::ZERO, SimTime::from_secs(5)) > 0.0);
    }

    #[test]
    fn series_filter_by_request_type() {
        let m = run();
        let s = LatencySummary::compute(
            &m,
            Traffic::All,
            Some(RequestTypeId::new(0)),
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        assert_eq!(s.count, 125);
        let none = LatencySummary::compute(
            &m,
            Traffic::All,
            Some(RequestTypeId::new(5)),
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        assert_eq!(none.count, 0);
    }
}
