//! Administrator-side observability over a finished (or running)
//! simulation: monitor views, latency series, millibottleneck detection and
//! ground-truth dependency extraction.
//!
//! The crate mirrors the instrumentation stack of the paper's experiments:
//!
//! * [`CoarseMonitor`] — the CloudWatch / Azure Monitor view: per-service
//!   CPU utilisation at 1 s granularity. This is what the auto-scaler and
//!   the resource-based IDS rules can see; millibottlenecks are invisible
//!   here (Fig 14).
//! * [`FineMonitor`] — the Collectl-style 100 ms view used for the
//!   white-box zoom-in analysis (Fig 13) and for
//!   [`find_millibottlenecks`].
//! * [`LatencySeries`] / [`LatencySummary`] — client-perceived response
//!   times, split legitimate vs attack traffic by ground-truth origin.
//! * [`GroundTruth`] — the Jaeger + Collectl pipeline of Section V-C:
//!   extract critical paths from sampled span trees, attribute each
//!   request type's runtime bottleneck, and classify pairwise dependencies
//!   (the reference the blackbox profiler is scored against in Fig 16).

pub mod ground_truth;
pub mod latency;
pub mod millibottleneck;
pub mod views;

pub use ground_truth::{GroundTruth, ProfilerScore};
pub use latency::{LatencySeries, LatencySummary, Traffic};
pub use millibottleneck::{
    find_millibottlenecks, millibottleneck_stats, Millibottleneck, MillibottleneckStats,
};
pub use views::{CoarseMonitor, CoarseSample, FineMonitor};
