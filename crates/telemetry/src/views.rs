//! Monitor views at different sampling granularities.

use callgraph::ServiceId;
use microsim::Metrics;
use simnet::{SimDuration, SimTime};

/// One coarse (aggregated) monitor sample for a service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoarseSample {
    /// Sample interval start.
    pub start: SimTime,
    /// Mean CPU utilisation over the interval, `[0, 1]`.
    pub utilization: f64,
    /// Mean queue length (admitted + waiting) over the interval.
    pub queue_len: f64,
    /// Active replicas at interval end.
    pub replicas: u32,
    /// Arrivals during the interval.
    pub arrivals: u32,
}

/// The CloudWatch / Azure Monitor view: per-service metrics aggregated to a
/// coarse interval (1 s in the paper — their finest supported granularity).
///
/// # Example
///
/// ```no_run
/// # let metrics: microsim::Metrics = unimplemented!();
/// use telemetry::CoarseMonitor;
/// use simnet::SimDuration;
///
/// let cw = CoarseMonitor::new(&metrics, SimDuration::from_secs(1));
/// let series = cw.series(callgraph::ServiceId::new(3));
/// let peak = series.iter().map(|s| s.utilization).fold(0.0, f64::max);
/// assert!(peak <= 1.0);
/// ```
#[derive(Debug)]
pub struct CoarseMonitor {
    interval: SimDuration,
    /// `samples[s]` = coarse series of service `s`.
    samples: Vec<Vec<CoarseSample>>,
}

impl CoarseMonitor {
    /// Aggregates the fine windows of `metrics` into `interval` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is smaller than the metrics window.
    pub fn new(metrics: &Metrics, interval: SimDuration) -> Self {
        let fine = metrics.window();
        assert!(
            interval >= fine,
            "coarse interval must not be finer than the metrics window"
        );
        let per = (interval.as_micros() / fine.as_micros()).max(1) as usize;
        let nsvc = metrics.num_services();
        let mut samples: Vec<Vec<CoarseSample>> = vec![Vec::new(); nsvc];
        let windows: Vec<&[microsim::ServiceWindow]> = metrics.windows().collect();
        for chunk in windows.chunks(per) {
            if chunk.is_empty() {
                continue;
            }
            for s in 0..nsvc {
                let n = chunk.len() as f64;
                let util = chunk.iter().map(|w| w[s].utilization(fine)).sum::<f64>() / n;
                let queue = chunk
                    .iter()
                    .map(|w| f64::from(w[s].queue_len()))
                    .sum::<f64>()
                    / n;
                let arrivals = chunk.iter().map(|w| w[s].arrivals).sum();
                samples[s].push(CoarseSample {
                    start: chunk[0][s].start,
                    utilization: util,
                    queue_len: queue,
                    replicas: chunk.last().expect("non-empty")[s].replicas,
                    arrivals,
                });
            }
        }
        CoarseMonitor { interval, samples }
    }

    /// Aggregates only the coarse buckets whose start lies in `[from, to)`.
    ///
    /// Bucket boundaries stay aligned to the run start exactly as in
    /// [`CoarseMonitor::new`] (bucket `k` covers fine rows
    /// `[k·per, (k+1)·per)`), and each in-window bucket accumulates its
    /// rows in the same order, so the produced samples are bit-identical
    /// to the corresponding samples of a full aggregation. Window row `w`
    /// starts at exactly `w · window`, so locating the bucket range is
    /// O(1) and the cost is O(in-window rows), not O(run).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is smaller than the metrics window.
    pub fn over(metrics: &Metrics, interval: SimDuration, from: SimTime, to: SimTime) -> Self {
        let fine = metrics.window();
        assert!(
            interval >= fine,
            "coarse interval must not be finer than the metrics window"
        );
        let per = (interval.as_micros() / fine.as_micros()).max(1) as usize;
        let span = per as u64 * fine.as_micros();
        let rows = metrics.num_windows();
        let buckets = rows.div_ceil(per);
        let lo = (from.as_micros().div_ceil(span) as usize).min(buckets);
        let hi = (to.as_micros().div_ceil(span) as usize).min(buckets);
        let nsvc = metrics.num_services();
        let mut samples: Vec<Vec<CoarseSample>> = vec![Vec::new(); nsvc];
        for k in lo..hi {
            let (a, b) = (k * per, ((k + 1) * per).min(rows));
            let n = (b - a) as f64;
            for (s, series) in samples.iter_mut().enumerate() {
                let service = ServiceId::new(s as u32);
                let mut start = SimTime::ZERO;
                let mut util = 0.0;
                let mut queue = 0.0;
                let mut arrivals = 0u32;
                let mut replicas = 0u32;
                for (i, w) in metrics.service_window_range(service, a, b).enumerate() {
                    if i == 0 {
                        start = w.start;
                    }
                    util += w.utilization(fine);
                    queue += f64::from(w.queue_len());
                    arrivals += w.arrivals;
                    replicas = w.replicas;
                }
                series.push(CoarseSample {
                    start,
                    utilization: util / n,
                    queue_len: queue / n,
                    replicas,
                    arrivals,
                });
            }
        }
        CoarseMonitor { interval, samples }
    }

    /// The aggregation interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// The coarse series of one service.
    pub fn series(&self, service: ServiceId) -> &[CoarseSample] {
        &self.samples[service.index()]
    }

    /// Peak coarse utilisation of a service over the whole run.
    pub fn peak_utilization(&self, service: ServiceId) -> f64 {
        self.series(service)
            .iter()
            .map(|s| s.utilization)
            .fold(0.0, f64::max)
    }

    /// Mean coarse utilisation of a service over `[from, to)`.
    pub fn mean_utilization(&self, service: ServiceId, from: SimTime, to: SimTime) -> f64 {
        let vals: Vec<f64> = self
            .series(service)
            .iter()
            .filter(|s| s.start >= from && s.start < to)
            .map(|s| s.utilization)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }
}

/// The fine-grained (100 ms) view — a thin typed wrapper over the raw
/// metrics windows, as used for the paper's zoom-in plots.
#[derive(Debug)]
pub struct FineMonitor<'a> {
    metrics: &'a Metrics,
}

impl<'a> FineMonitor<'a> {
    /// Wraps the metrics of a run.
    pub fn new(metrics: &'a Metrics) -> Self {
        FineMonitor { metrics }
    }

    /// The sampling window.
    pub fn window(&self) -> SimDuration {
        self.metrics.window()
    }

    /// `(window start, utilization)` series of one service.
    pub fn utilization_series(&self, service: ServiceId) -> Vec<(SimTime, f64)> {
        let w = self.metrics.window();
        self.metrics
            .service_series(service)
            .map(|s| (s.start, s.utilization(w)))
            .collect()
    }

    /// `(window start, queue length)` series of one service — the paper's
    /// "queued requests" plot (Fig 13c).
    pub fn queue_series(&self, service: ServiceId) -> Vec<(SimTime, u32)> {
        self.metrics
            .service_series(service)
            .map(|s| (s.start, s.queue_len()))
            .collect()
    }

    /// `(window start, arrivals/s)` series of one service.
    pub fn arrival_rate_series(&self, service: ServiceId) -> Vec<(SimTime, f64)> {
        let secs = self.metrics.window().as_secs_f64();
        self.metrics
            .service_series(service)
            .map(|s| (s.start, f64::from(s.arrivals) / secs))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use callgraph::{RequestTypeId, ServiceSpec, TopologyBuilder};
    use microsim::agents::FixedRate;
    use microsim::{SimConfig, Simulation};

    fn run() -> Metrics {
        let mut b = TopologyBuilder::new();
        let gw = b.add_service(ServiceSpec::new("gw").threads(64).demand_cv(0.0));
        b.add_request_type("r", vec![(gw, SimDuration::from_millis(5))]);
        let mut sim = Simulation::new(b.build(), SimConfig::default());
        // 100 req/s of 5 ms demand = 50% utilisation.
        sim.add_agent(Box::new(FixedRate::new(
            RequestTypeId::new(0),
            SimDuration::from_millis(10),
            500,
        )));
        sim.run_until(SimTime::from_secs(5));
        sim.into_metrics()
    }

    #[test]
    fn coarse_aggregates_to_one_second() {
        let m = run();
        let cw = CoarseMonitor::new(&m, SimDuration::from_secs(1));
        let series = cw.series(ServiceId::new(0));
        assert!(series.len() >= 4, "got {} samples", series.len());
        // Steady 50% load.
        let mid = series[2].utilization;
        assert!((mid - 0.5).abs() < 0.1, "utilization {mid}");
        assert_eq!(cw.interval(), SimDuration::from_secs(1));
    }

    #[test]
    fn windowed_aggregation_matches_full() {
        let m = run();
        let svc = ServiceId::new(0);
        let full = CoarseMonitor::new(&m, SimDuration::from_secs(1));
        let (from, to) = (SimTime::from_secs(1), SimTime::from_secs(4));
        let windowed = CoarseMonitor::over(&m, SimDuration::from_secs(1), from, to);
        let expect: Vec<CoarseSample> = full
            .series(svc)
            .iter()
            .filter(|s| s.start >= from && s.start < to)
            .copied()
            .collect();
        assert_eq!(windowed.series(svc), &expect[..]);
        let all = CoarseMonitor::over(
            &m,
            SimDuration::from_secs(1),
            SimTime::ZERO,
            SimTime::FAR_FUTURE,
        );
        assert_eq!(all.series(svc), full.series(svc));
        let empty = CoarseMonitor::over(&m, SimDuration::from_secs(1), to, to);
        assert!(empty.series(svc).is_empty());
    }

    #[test]
    fn coarse_mean_and_peak_consistent() {
        let m = run();
        let cw = CoarseMonitor::new(&m, SimDuration::from_secs(1));
        let svc = ServiceId::new(0);
        let mean = cw.mean_utilization(svc, SimTime::ZERO, SimTime::from_secs(5));
        let peak = cw.peak_utilization(svc);
        assert!(peak >= mean);
        assert!(mean > 0.3);
    }

    #[test]
    fn fine_series_have_window_resolution() {
        let m = run();
        let fine = FineMonitor::new(&m);
        let series = fine.utilization_series(ServiceId::new(0));
        assert!(series.len() >= 45, "got {}", series.len());
        assert_eq!(fine.window(), SimDuration::from_millis(100));
        let rates = fine.arrival_rate_series(ServiceId::new(0));
        // ~100 req/s mid-run.
        let mid = rates[rates.len() / 2].1;
        assert!((mid - 100.0).abs() < 20.0, "rate {mid}");
    }

    #[test]
    #[should_panic(expected = "must not be finer")]
    fn coarse_finer_than_fine_rejected() {
        let m = run();
        CoarseMonitor::new(&m, SimDuration::from_millis(10));
    }
}
