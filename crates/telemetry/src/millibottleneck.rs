//! Millibottleneck detection from fine-grained monitoring windows.
//!
//! A *millibottleneck* is a maximal run of consecutive fine windows in
//! which a service's CPU utilisation stays at (or near) saturation. The
//! paper shows these last under 500 ms under Grunt and are therefore
//! invisible to 1 s monitors; this module is the white-box detector used
//! in the zoom-in analysis (Fig 13b) and by the candidate defenses
//! (`defense` crate).

use callgraph::ServiceId;
use microsim::Metrics;
use simnet::{SimDuration, SimTime};

/// One detected saturation interval on one service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Millibottleneck {
    /// The saturated service.
    pub service: ServiceId,
    /// First saturated window start.
    pub start: SimTime,
    /// End of the last saturated window.
    pub end: SimTime,
}

impl Millibottleneck {
    /// The bottleneck length (`P_MB` in the paper's notation).
    pub fn length(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// Scans all services for maximal runs of windows with utilisation at or
/// above `threshold` (e.g. `0.95`). Returns bottlenecks sorted by start
/// time, then service.
///
/// # Example
///
/// ```no_run
/// # let metrics: microsim::Metrics = unimplemented!();
/// let mbs = telemetry::find_millibottlenecks(&metrics, 0.95);
/// for mb in &mbs {
///     println!("{} saturated for {}", mb.service, mb.length());
/// }
/// ```
pub fn find_millibottlenecks(metrics: &Metrics, threshold: f64) -> Vec<Millibottleneck> {
    let window = metrics.window();
    let mut out = Vec::new();
    for s in 0..metrics.num_services() {
        let service = ServiceId::new(s as u32);
        let mut run_start: Option<SimTime> = None;
        let mut run_end = SimTime::ZERO;
        for w in metrics.service_series(service) {
            let saturated = w.utilization(window) >= threshold;
            match (saturated, run_start) {
                (true, None) => {
                    run_start = Some(w.start);
                    run_end = w.start + window;
                }
                (true, Some(_)) => run_end = w.start + window,
                (false, Some(start)) => {
                    out.push(Millibottleneck {
                        service,
                        start,
                        end: run_end,
                    });
                    run_start = None;
                }
                (false, None) => {}
            }
        }
        if let Some(start) = run_start {
            out.push(Millibottleneck {
                service,
                start,
                end: run_end,
            });
        }
    }
    out.sort_by_key(|m| (m.start, m.service));
    out
}

/// Statistics over detected millibottlenecks of one service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MillibottleneckStats {
    /// Number of bottlenecks.
    pub count: usize,
    /// Mean length.
    pub mean_length: SimDuration,
    /// Longest bottleneck.
    pub max_length: SimDuration,
}

/// Aggregates detected bottlenecks (e.g. from [`find_millibottlenecks`]),
/// optionally restricted to one service.
pub fn millibottleneck_stats(
    bottlenecks: &[Millibottleneck],
    service: Option<ServiceId>,
) -> MillibottleneckStats {
    let lengths: Vec<SimDuration> = bottlenecks
        .iter()
        .filter(|m| service.is_none_or(|s| m.service == s))
        .map(Millibottleneck::length)
        .collect();
    if lengths.is_empty() {
        return MillibottleneckStats {
            count: 0,
            mean_length: SimDuration::ZERO,
            max_length: SimDuration::ZERO,
        };
    }
    let total: u64 = lengths.iter().map(|l| l.as_micros()).sum();
    MillibottleneckStats {
        count: lengths.len(),
        mean_length: SimDuration::from_micros(total / lengths.len() as u64),
        max_length: *lengths.iter().max().expect("non-empty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use callgraph::{RequestTypeId, ServiceSpec, TopologyBuilder};
    use microsim::agents::FixedRate;
    use microsim::{SimConfig, Simulation};

    #[test]
    fn detects_burst_induced_bottleneck() {
        let mut b = TopologyBuilder::new();
        let gw = b.add_service(ServiceSpec::new("gw").threads(128).demand_cv(0.0));
        b.add_request_type("r", vec![(gw, SimDuration::from_millis(10))]);
        let mut sim = Simulation::new(b.build(), SimConfig::default());
        // 40 requests of 10 ms back-to-back -> ~400 ms of saturation.
        sim.add_agent(Box::new(FixedRate::new(
            RequestTypeId::new(0),
            SimDuration::from_millis(1),
            40,
        )));
        sim.run_until(SimTime::from_secs(2));
        let m = sim.into_metrics();
        let mbs = find_millibottlenecks(&m, 0.95);
        assert_eq!(mbs.len(), 1, "expected exactly one bottleneck: {mbs:?}");
        let len = mbs[0].length().as_millis_f64();
        assert!((300.0..=600.0).contains(&len), "length {len} ms");

        let stats = millibottleneck_stats(&mbs, Some(ServiceId::new(0)));
        assert_eq!(stats.count, 1);
        assert_eq!(stats.mean_length, mbs[0].length());
        assert_eq!(stats.max_length, mbs[0].length());
    }

    #[test]
    fn quiet_system_has_no_bottlenecks() {
        let mut b = TopologyBuilder::new();
        let gw = b.add_service(ServiceSpec::new("gw").threads(128).demand_cv(0.0));
        b.add_request_type("r", vec![(gw, SimDuration::from_millis(1))]);
        let mut sim = Simulation::new(b.build(), SimConfig::default());
        sim.add_agent(Box::new(FixedRate::new(
            RequestTypeId::new(0),
            SimDuration::from_millis(50),
            20,
        )));
        sim.run_until(SimTime::from_secs(2));
        let mbs = find_millibottlenecks(&sim.into_metrics(), 0.95);
        assert!(mbs.is_empty(), "unexpected bottlenecks: {mbs:?}");
    }

    #[test]
    fn stats_of_empty_are_zero() {
        let stats = millibottleneck_stats(&[], None);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.mean_length, SimDuration::ZERO);
    }

    #[test]
    fn stats_filter_by_service() {
        let mbs = vec![
            Millibottleneck {
                service: ServiceId::new(0),
                start: SimTime::ZERO,
                end: SimTime::from_millis(100),
            },
            Millibottleneck {
                service: ServiceId::new(1),
                start: SimTime::ZERO,
                end: SimTime::from_millis(300),
            },
        ];
        assert_eq!(millibottleneck_stats(&mbs, None).count, 2);
        let s1 = millibottleneck_stats(&mbs, Some(ServiceId::new(1)));
        assert_eq!(s1.count, 1);
        assert_eq!(s1.max_length, SimDuration::from_millis(300));
    }
}
