//! Ground-truth dependency extraction — the administrator's pipeline.
//!
//! Reproduces the Jaeger + Collectl methodology of the paper's live-attack
//! experiments (Section V-C): sample span trees of completed requests,
//! extract each request type's critical path and attribute its runtime
//! bottleneck by largest self-time, then classify every pair of request
//! types with the taxonomy of Definitions I/II. The result is the
//! reference against which the blackbox profiler's output is scored
//! (precision / recall / F-score, Fig 16).

use std::collections::BTreeMap;

use callgraph::{
    DependencyGroups, ExecutionPath, PairwiseDependency, RequestTypeId, ServiceId, Topology,
};
use microsim::Metrics;

/// The administrator's view of who bottlenecks where and which paths
/// depend on which.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    paths: Vec<ExecutionPath>,
    bottlenecks: BTreeMap<RequestTypeId, ServiceId>,
    groups: DependencyGroups,
}

impl GroundTruth {
    /// Derives ground truth from the deployment model: the *physical
    /// blocking* analysis of Section III applied to the static topology.
    ///
    /// For each path the effective bottleneck is the step with the lowest
    /// capacity (`cores * replicas / demand`). A burst on path X blocks a
    /// victim path Y when they share a blockable service where X\'s queues
    /// actually accumulate:
    ///
    /// * X\'s **first blockable service** — the backlog there is unbounded
    ///   (waiters hold no upstream resource), so any sharer is blocked; or
    /// * a service `S` between that and X\'s bottleneck `j`, where the
    ///   victim\'s wait is the slot-stack drain time
    ///   `(Σ pools from S down to j) / C_j` (the cross-tier cascade of
    ///   Equation (3)); sharing blocks when this exceeds a detectability
    ///   threshold (~100 ms).
    ///
    /// Pair labels follow the taxonomy: both bottlenecks hitting the other
    /// path → shared bottleneck; one → sequential (that side is the
    /// execution blocker); mutual blocking only through upstream pools →
    /// parallel.
    pub fn from_topology(topology: &Topology) -> Self {
        let paths = topology.paths();
        let bottlenecks: BTreeMap<RequestTypeId, ServiceId> = paths
            .iter()
            .map(|p| {
                (
                    p.request_type(),
                    effective_bottleneck(topology, p).unwrap_or_else(|| p.bottleneck_service()),
                )
            })
            .collect();
        let groups = physical_groups(topology, &paths, &bottlenecks);
        GroundTruth {
            paths,
            bottlenecks,
            groups,
        }
    }

    /// Derives ground truth from runtime traces: for each request type the
    /// bottleneck service is the one most often attributed the largest
    /// self-time along sampled critical paths. Falls back to the static
    /// bottleneck for request types with no samples.
    ///
    /// This is the live-experiment methodology (tracing + per-service
    /// resource attribution) and accounts for replica scaling shifting a
    /// bottleneck away from the highest-demand step.
    pub fn from_traces(topology: &Topology, metrics: &Metrics) -> Self {
        let paths = topology.paths();
        // Vote per (request type, service).
        let mut votes: BTreeMap<RequestTypeId, BTreeMap<ServiceId, u32>> = BTreeMap::new();
        for (rt, hist) in metrics.traces() {
            if let Some(cp) = hist.critical_path() {
                *votes
                    .entry(*rt)
                    .or_default()
                    .entry(cp.bottleneck_service())
                    .or_insert(0) += 1;
            }
        }
        let bottlenecks: BTreeMap<RequestTypeId, ServiceId> = paths
            .iter()
            .map(|p| {
                let rt = p.request_type();
                let winner = votes.get(&rt).and_then(|per_svc| {
                    per_svc
                        .iter()
                        .max_by_key(|(svc, n)| (**n, std::cmp::Reverse(**svc)))
                        .map(|(svc, _)| *svc)
                });
                (
                    rt,
                    winner.unwrap_or_else(|| {
                        effective_bottleneck(topology, p).unwrap_or_else(|| p.bottleneck_service())
                    }),
                )
            })
            .collect();

        let groups = physical_groups(topology, &paths, &bottlenecks);
        GroundTruth {
            paths,
            bottlenecks,
            groups,
        }
    }

    /// The execution paths, in request-type order.
    pub fn paths(&self) -> &[ExecutionPath] {
        &self.paths
    }

    /// The attributed bottleneck service of a request type.
    ///
    /// # Panics
    ///
    /// Panics if `rt` is unknown.
    pub fn bottleneck(&self, rt: RequestTypeId) -> ServiceId {
        self.bottlenecks[&rt]
    }

    /// The pairwise classification between two request types.
    pub fn pairwise(&self, a: RequestTypeId, b: RequestTypeId) -> PairwiseDependency {
        self.groups.pairwise(a, b)
    }

    /// The dependency groups.
    pub fn groups(&self) -> &DependencyGroups {
        &self.groups
    }
}

/// Victim waits shorter than this are considered undetectable /
/// non-blocking (well inside normal response-time jitter).
const DETECTABLE_DELAY_S: f64 = 0.1;

/// Capacity of a path step: `cores * replicas / demand` (req/s).
fn step_capacity(topology: &Topology, path: &ExecutionPath, idx: usize) -> f64 {
    let step = &path.steps()[idx];
    let spec = topology.service(step.service);
    let demand = step.demand.as_secs_f64();
    if demand <= 0.0 {
        return f64::INFINITY;
    }
    f64::from(spec.cores) * f64::from(spec.replicas) / demand
}

/// The effective bottleneck of a path: the blockable step with the lowest
/// capacity. `None` when no step is blockable.
fn effective_bottleneck(topology: &Topology, path: &ExecutionPath) -> Option<ServiceId> {
    let mut best: Option<(f64, ServiceId)> = None;
    for i in 0..path.len() {
        let svc = path.steps()[i].service;
        if !topology.service(svc).blockable {
            continue;
        }
        let c = step_capacity(topology, path, i);
        if best.is_none_or(|(bc, _)| c < bc) {
            best = Some((c, svc));
        }
    }
    best.map(|(_, s)| s)
}

/// Whether a burst on `x` (bottlenecking at `j_x`) blocks requests of `y`
/// detectably: see [`GroundTruth::from_topology`].
fn blocks(topology: &Topology, x: &ExecutionPath, j_x: ServiceId, y: &ExecutionPath) -> bool {
    let Some(j_pos) = x.position(j_x) else {
        return false;
    };
    let first_blockable = (0..x.len()).find(|&i| topology.service(x.steps()[i].service).blockable);
    let Some(fb) = first_blockable else {
        return false;
    };
    let c_j = step_capacity(topology, x, j_pos);
    for p in fb..=j_pos.max(fb) {
        let svc = x.steps()[p].service;
        if !topology.service(svc).blockable || !y.visits(svc) {
            continue;
        }
        if p == fb {
            // Unbounded backlog at the first blockable service.
            return true;
        }
        // Slot stack between the shared service and the bottleneck drains
        // at the bottleneck\'s rate.
        let stacked: f64 = (p..=j_pos)
            .map(|i| {
                let spec = topology.service(x.steps()[i].service);
                f64::from(spec.threads) * f64::from(spec.replicas)
            })
            .sum();
        if c_j > 0.0 && stacked / c_j >= DETECTABLE_DELAY_S {
            return true;
        }
    }
    false
}

/// Builds the pairwise classification and groups from the physical model.
fn physical_groups(
    topology: &Topology,
    paths: &[ExecutionPath],
    bottlenecks: &BTreeMap<RequestTypeId, ServiceId>,
) -> DependencyGroups {
    let mut pairwise = BTreeMap::new();
    for i in 0..paths.len() {
        for k in (i + 1)..paths.len() {
            let (x, y) = (&paths[i], &paths[k]);
            let (j_x, j_y) = (
                bottlenecks[&x.request_type()],
                bottlenecks[&y.request_type()],
            );
            let x_blocks = blocks(topology, x, j_x, y);
            let y_blocks = blocks(topology, y, j_y, x);
            let x_j_hits = x_blocks && y.visits(j_x);
            let y_j_hits = y_blocks && x.visits(j_y);
            let dep = match (x_j_hits, y_j_hits) {
                (true, true) => PairwiseDependency::SharedBottleneck,
                (true, false) => PairwiseDependency::Sequential {
                    upstream: x.request_type(),
                },
                (false, true) => PairwiseDependency::Sequential {
                    upstream: y.request_type(),
                },
                (false, false) => {
                    if x_blocks || y_blocks {
                        PairwiseDependency::Parallel
                    } else {
                        PairwiseDependency::None
                    }
                }
            };
            pairwise.insert((x.request_type(), y.request_type()), dep);
        }
    }
    DependencyGroups::from_pairwise(
        paths
            .iter()
            .map(callgraph::ExecutionPath::request_type)
            .collect(),
        pairwise,
    )
}

/// Precision / recall / F-score of an *estimated* pairwise classification
/// against ground truth, over the "dependent or not" binary relation —
/// the Fig 16 metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilerScore {
    /// True positives: pairs dependent in both.
    pub tp: usize,
    /// False positives: estimated dependent, truly independent.
    pub fp: usize,
    /// False negatives: estimated independent, truly dependent.
    pub fn_: usize,
    /// Pairs whose dependency *kind* also matches (among true positives).
    pub kind_matches: usize,
}

impl ProfilerScore {
    /// Scores `estimated` against `truth` over all pairs of `members`.
    pub fn compute(
        members: &[RequestTypeId],
        truth: &GroundTruth,
        estimated: &DependencyGroups,
    ) -> Self {
        let mut score = ProfilerScore {
            tp: 0,
            fp: 0,
            fn_: 0,
            kind_matches: 0,
        };
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                let t = truth.pairwise(members[i], members[j]);
                let e = estimated.pairwise(members[i], members[j]);
                match (t.is_dependent(), e.is_dependent()) {
                    (true, true) => {
                        score.tp += 1;
                        if t.same_kind(e) {
                            score.kind_matches += 1;
                        }
                    }
                    (false, true) => score.fp += 1,
                    (true, false) => score.fn_ += 1,
                    (false, false) => {}
                }
            }
        }
        score
    }

    /// Precision: `tp / (tp + fp)`; 1.0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall: `tp / (tp + fn)`; 1.0 when nothing was there to find.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f_score(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use callgraph::{ServiceSpec, TopologyBuilder};
    use microsim::agents::FixedRate;
    use microsim::{SimConfig, Simulation};
    use simnet::{SimDuration, SimTime};

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn topo() -> Topology {
        let mut b = TopologyBuilder::new();
        let gw = b.add_service(ServiceSpec::new("gw").threads(64).demand_cv(0.0));
        let x = b.add_service(ServiceSpec::new("x").threads(32).demand_cv(0.0));
        let y = b.add_service(ServiceSpec::new("y").threads(32).demand_cv(0.0));
        let z = b.add_service(ServiceSpec::new("z").threads(32).demand_cv(0.0));
        b.add_request_type("rx", vec![(gw, ms(1)), (x, ms(8))]);
        b.add_request_type("ry", vec![(gw, ms(1)), (y, ms(8))]);
        b.add_request_type("rz", vec![(z, ms(1)), (z, ms(1))]); // isolated
        b.build()
    }

    #[test]
    fn static_ground_truth_matches_paths() {
        let t = topo();
        let gt = GroundTruth::from_topology(&t);
        assert_eq!(gt.bottleneck(RequestTypeId::new(0)), ServiceId::new(1));
        assert_eq!(gt.bottleneck(RequestTypeId::new(1)), ServiceId::new(2));
        assert_eq!(
            gt.pairwise(RequestTypeId::new(0), RequestTypeId::new(1)),
            PairwiseDependency::Parallel
        );
        assert_eq!(gt.groups().len(), 2);
    }

    #[test]
    fn trace_ground_truth_agrees_with_static_when_unscaled() {
        let t = topo();
        let mut sim = Simulation::new(t.clone(), SimConfig::default().trace_sampling(1.0));
        for rt in 0..2 {
            sim.add_agent(Box::new(FixedRate::new(RequestTypeId::new(rt), ms(20), 20)));
        }
        sim.run_until(SimTime::from_secs(3));
        let m = sim.into_metrics();
        let gt = GroundTruth::from_traces(&t, &m);
        let static_gt = GroundTruth::from_topology(&t);
        for rt in 0..3 {
            let rt = RequestTypeId::new(rt);
            assert_eq!(gt.bottleneck(rt), static_gt.bottleneck(rt), "{rt}");
        }
        assert_eq!(gt.groups().len(), static_gt.groups().len());
    }

    #[test]
    fn perfect_profiler_scores_one() {
        let t = topo();
        let gt = GroundTruth::from_topology(&t);
        let members: Vec<RequestTypeId> = (0..3).map(RequestTypeId::new).collect();
        let score = ProfilerScore::compute(&members, &gt, gt.groups());
        assert_eq!(score.precision(), 1.0);
        assert_eq!(score.recall(), 1.0);
        assert_eq!(score.f_score(), 1.0);
        assert_eq!(score.kind_matches, score.tp);
    }

    #[test]
    fn wrong_profiler_scores_below_one() {
        let t = topo();
        let gt = GroundTruth::from_topology(&t);
        let members: Vec<RequestTypeId> = (0..3).map(RequestTypeId::new).collect();
        // An estimator that claims nothing is dependent: recall suffers.
        let empty =
            DependencyGroups::from_pairwise(members.clone(), std::collections::BTreeMap::new());
        let score = ProfilerScore::compute(&members, &gt, &empty);
        assert_eq!(score.recall(), 0.0);
        assert_eq!(score.precision(), 1.0, "no predictions, no false alarms");
        assert_eq!(score.f_score(), 0.0);

        // An estimator that claims everything is dependent: precision
        // suffers.
        let mut all = std::collections::BTreeMap::new();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                all.insert((members[i], members[j]), PairwiseDependency::Parallel);
            }
        }
        let full = DependencyGroups::from_pairwise(members.clone(), all);
        let score = ProfilerScore::compute(&members, &gt, &full);
        assert_eq!(score.recall(), 1.0);
        assert!(score.precision() < 1.0);
    }
}
