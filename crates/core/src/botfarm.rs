//! The attacker's bot identity pool.
//!
//! The paper's attacker coordinates a centralised bot farm with
//! millisecond synchronisation; during a burst every bot sends exactly one
//! request. The farm exists to evade two identity-keyed rules:
//!
//! * the per-IP request budget of AWS-Shield-style rate limiting, and
//! * the inter-request-interval IDS rule (< 3 s between two consecutive
//!   requests of one session is flagged).
//!
//! [`BotFarm`] hands out origins round-robin and *grows on demand*
//! whenever every existing bot was used too recently — the paper's
//! "use conservative values (e.g. use more bots)" guidance. The farm size
//! at campaign end is the bot count the tables report.

use microsim::Origin;
use simnet::{SimDuration, SimTime};

/// A pool of attacker identities (IP + session), each used at most once
/// per [`BotFarm::min_interval`].
#[derive(Debug, Clone)]
pub struct BotFarm {
    /// Per-bot time of last use; `SimTime::ZERO` means never used. Bots
    /// are identified by their index.
    last_used: Vec<Option<SimTime>>,
    next: usize,
    min_interval: SimDuration,
    ip_base: u32,
    session_base: u64,
    grown: usize,
}

impl BotFarm {
    /// Creates a farm with `initial` bots that reuses a bot only after
    /// `min_interval` (choose it above the IDS interval threshold, e.g.
    /// 3.2 s against a 3 s rule).
    ///
    /// # Panics
    ///
    /// Panics if `initial` is zero or the interval is zero.
    pub fn new(initial: usize, min_interval: SimDuration) -> Self {
        assert!(initial > 0, "farm needs at least one bot");
        assert!(!min_interval.is_zero(), "reuse interval must be positive");
        BotFarm {
            last_used: vec![None; initial],
            next: 0,
            min_interval,
            ip_base: 0xC600_0000, // 198.x bot block, disjoint from users
            session_base: 1_000_000,
            grown: 0,
        }
    }

    /// Moves the farm into its own identity namespace so two farms (e.g.
    /// the profiling phase's and the attack phase's) never share an IP or
    /// session id — a shared session would chain their request timestamps
    /// under the IDS interval rule.
    pub fn with_namespace(mut self, namespace: u32) -> Self {
        self.ip_base += namespace << 20;
        self.session_base += u64::from(namespace) * 10_000_000;
        self
    }

    /// Sizes a farm for an expected aggregate request rate (req/s): at
    /// least `rate * min_interval` bots are needed so no bot repeats too
    /// fast, with 30 % headroom.
    pub fn sized_for(rate: f64, min_interval: SimDuration) -> Self {
        let bots = (rate * min_interval.as_secs_f64() * 1.3).ceil().max(1.0);
        BotFarm::new(bots as usize, min_interval)
    }

    /// Allocates `n` distinct origins for one burst at time `now`,
    /// growing the pool whenever no cold bot is available.
    pub fn allocate(&mut self, n: usize, now: SimTime) -> Vec<Origin> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = self.take_cold(now);
            self.last_used[idx] = Some(now);
            out.push(Origin::attack(
                self.ip_base + idx as u32,
                self.session_base + idx as u64,
            ));
        }
        out
    }

    fn take_cold(&mut self, now: SimTime) -> usize {
        let len = self.last_used.len();
        for offset in 0..len {
            let idx = (self.next + offset) % len;
            let cold = match self.last_used[idx] {
                None => true,
                Some(t) => now.saturating_since(t) >= self.min_interval,
            };
            if cold {
                self.next = (idx + 1) % len;
                return idx;
            }
        }
        // Every bot is hot: recruit one more.
        self.last_used.push(None);
        self.grown += 1;
        self.last_used.len() - 1
    }

    /// Current farm size.
    pub fn size(&self) -> usize {
        self.last_used.len()
    }

    /// How many bots were recruited beyond the initial pool.
    pub fn grown(&self) -> usize {
        self.grown
    }

    /// Number of bots that were ever used.
    pub fn used(&self) -> usize {
        self.last_used.iter().filter(|t| t.is_some()).count()
    }

    /// The configured minimum reuse interval.
    pub fn min_interval(&self) -> SimDuration {
        self.min_interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_distinct_origins() {
        let mut farm = BotFarm::new(10, SimDuration::from_secs(3));
        let origins = farm.allocate(10, SimTime::ZERO);
        let ips: std::collections::HashSet<u32> = origins.iter().map(|o| o.ip).collect();
        assert_eq!(ips.len(), 10);
        assert!(origins.iter().all(|o| o.is_attack));
    }

    #[test]
    fn reuses_bots_after_interval() {
        let mut farm = BotFarm::new(5, SimDuration::from_secs(3));
        farm.allocate(5, SimTime::ZERO);
        // After the interval, same pool suffices: no growth.
        farm.allocate(5, SimTime::from_secs(4));
        assert_eq!(farm.size(), 5);
        assert_eq!(farm.grown(), 0);
    }

    #[test]
    fn grows_when_all_hot() {
        let mut farm = BotFarm::new(5, SimDuration::from_secs(3));
        farm.allocate(5, SimTime::ZERO);
        // One second later every bot is hot: the farm must recruit.
        let extra = farm.allocate(3, SimTime::from_secs(1));
        assert_eq!(extra.len(), 3);
        assert_eq!(farm.size(), 8);
        assert_eq!(farm.grown(), 3);
    }

    #[test]
    fn bots_never_violate_interval() {
        let mut farm = BotFarm::new(4, SimDuration::from_secs(3));
        let mut last: std::collections::HashMap<u32, SimTime> = Default::default();
        for step in 0..50u64 {
            let now = SimTime::from_millis(step * 700);
            for o in farm.allocate(2, now) {
                if let Some(prev) = last.insert(o.ip, now) {
                    assert!(
                        now.saturating_since(prev) >= SimDuration::from_secs(3),
                        "bot {} reused after {}",
                        o.ip,
                        now.saturating_since(prev)
                    );
                }
            }
        }
    }

    #[test]
    fn sized_for_rate() {
        let farm = BotFarm::sized_for(100.0, SimDuration::from_secs(3));
        assert!(farm.size() >= 300, "size {}", farm.size());
        assert!(farm.size() <= 450);
    }
}
