//! Attack-side bookkeeping the experiments read out.

use callgraph::RequestTypeId;
use simnet::{SimDuration, SimTime};

/// One completed attacking burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstRecord {
    /// Index of the dependency group attacked.
    pub group: usize,
    /// The attacked critical path.
    pub path: RequestTypeId,
    /// Burst start.
    pub started: SimTime,
    /// Requests in the burst (`V = B * L`).
    pub volume: u32,
    /// Monitor's millibottleneck-length estimate.
    pub pmb_estimate: Option<SimDuration>,
    /// Monitor's damage-latency estimate (mean burst RT, ms).
    pub avg_rt_ms: Option<f64>,
}

/// The Commander's campaign log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttackReport {
    /// Completed bursts in launch order.
    pub bursts: Vec<BurstRecord>,
    /// Total attack requests sent (profiling excluded).
    pub requests_sent: u64,
    /// Kalman-filtered `t_min` per group over time: `(time, group, ms)`.
    pub tmin_series: Vec<(SimTime, usize, f64)>,
    /// Adapted per-burst volume over time: `(time, group, volume)` —
    /// Fig 15c plots this.
    pub volume_series: Vec<(SimTime, usize, u32)>,
}

impl AttackReport {
    /// Mean of the Monitor's millibottleneck estimates, over bursts that
    /// produced one.
    pub fn mean_pmb(&self) -> Option<SimDuration> {
        let lengths: Vec<u64> = self
            .bursts
            .iter()
            .filter_map(|b| b.pmb_estimate.map(simnet::SimDuration::as_micros))
            .collect();
        if lengths.is_empty() {
            return None;
        }
        Some(SimDuration::from_micros(
            lengths.iter().sum::<u64>() / lengths.len() as u64,
        ))
    }

    /// Fraction of bursts whose millibottleneck estimate stayed within
    /// `limit`.
    pub fn stealth_compliance(&self, limit: SimDuration) -> f64 {
        let with_est: Vec<&BurstRecord> = self
            .bursts
            .iter()
            .filter(|b| b.pmb_estimate.is_some())
            .collect();
        if with_est.is_empty() {
            return 1.0;
        }
        let ok = with_est
            .iter()
            .filter(|b| b.pmb_estimate.expect("filtered") <= limit)
            .count();
        ok as f64 / with_est.len() as f64
    }

    /// Bursts that attacked a given group.
    pub fn bursts_for_group(&self, group: usize) -> impl Iterator<Item = &BurstRecord> + '_ {
        self.bursts.iter().filter(move |b| b.group == group)
    }

    /// Total volume (requests) sent during the campaign window.
    pub fn total_volume(&self) -> u64 {
        self.bursts.iter().map(|b| u64::from(b.volume)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(group: usize, pmb_ms: Option<u64>, volume: u32) -> BurstRecord {
        BurstRecord {
            group,
            path: RequestTypeId::new(0),
            started: SimTime::ZERO,
            volume,
            pmb_estimate: pmb_ms.map(SimDuration::from_millis),
            avg_rt_ms: Some(100.0),
        }
    }

    #[test]
    fn mean_pmb_averages_present_estimates() {
        let report = AttackReport {
            bursts: vec![
                rec(0, Some(400), 10),
                rec(0, Some(200), 10),
                rec(0, None, 10),
            ],
            ..AttackReport::default()
        };
        assert_eq!(report.mean_pmb(), Some(SimDuration::from_millis(300)));
    }

    #[test]
    fn stealth_compliance_fraction() {
        let report = AttackReport {
            bursts: vec![rec(0, Some(400), 10), rec(0, Some(700), 10)],
            ..AttackReport::default()
        };
        assert_eq!(
            report.stealth_compliance(SimDuration::from_millis(500)),
            0.5
        );
        let empty = AttackReport::default();
        assert_eq!(empty.stealth_compliance(SimDuration::from_millis(500)), 1.0);
    }

    #[test]
    fn group_filter_and_volume() {
        let report = AttackReport {
            bursts: vec![rec(0, None, 10), rec(1, None, 20), rec(0, None, 30)],
            ..AttackReport::default()
        };
        assert_eq!(report.bursts_for_group(0).count(), 2);
        assert_eq!(report.total_volume(), 60);
    }
}
