//! The Grunt attack framework — the paper's primary contribution.
//!
//! Grunt is a low-volume DDoS attack on microservice applications that
//! exploits *execution dependencies* between the critical paths of
//! different public request types. The framework has three modules
//! (Section IV, Fig 7), all operating strictly blackbox through the
//! external-client interface ([`microsim::SimCtx`]):
//!
//! * **Monitor** ([`monitor`]) — estimates, from client-side timestamps
//!   only, the millibottleneck length `P_MB` created by each burst (end
//!   time of the last request minus end time of the first, Fig 8) and the
//!   damage latency `t_min` (average end-to-end RT of the burst).
//! * **Profiler** ([`profiler`]) — crawls the public request catalogue,
//!   measures per-type baselines, finds each type's minimum saturating
//!   volume, probes every ordered pair for performance interference at
//!   increasing volumes, classifies pairs (none / parallel / sequential /
//!   shared bottleneck) and assembles dependency groups (Section IV-C).
//! * **Commander** ([`commander`]) — initialises per-path burst
//!   parameters, then runs the alternating-burst attack against every
//!   dependency group, adapting burst volume and inter-burst interval
//!   with Kalman-filtered feedback to hold the damage goal
//!   (`avg RT >= 1 s`) under the stealth goal (`P_MB <= 500 ms`)
//!   (Section IV-D).
//!
//! Supporting pieces: [`kalman`] (scalar Kalman filter), [`botfarm`]
//! (bot identity pool sized against per-IP rate rules and the
//! inter-request-interval IDS rule), and [`report`] (attack-side
//! bookkeeping the experiments read out).
//!
//! # Typical usage
//!
//! ```no_run
//! use grunt::{CampaignConfig, GruntCampaign};
//! # let app = apps::social_network(7_000);
//! # let mut sim = microsim::Simulation::new(app.topology().clone(), microsim::SimConfig::default());
//! // Run the profiling phase, then attack for 20 minutes:
//! let campaign = GruntCampaign::run(
//!     &mut sim,
//!     CampaignConfig::default(),
//!     simnet::SimDuration::from_secs(1200),
//! );
//! println!(
//!     "{} bursts from {} bots",
//!     campaign.report.bursts.len(),
//!     campaign.bots_used
//! );
//! ```

pub mod attack;
pub mod botfarm;
pub mod commander;
pub mod kalman;
pub mod monitor;
pub mod profiler;
pub mod report;

pub use attack::{CampaignConfig, GruntCampaign};
pub use botfarm::BotFarm;
pub use commander::{CommanderConfig, GruntCommander};
pub use kalman::ScalarKalman;
pub use monitor::BurstObservation;
pub use profiler::{PairObservation, Profiler, ProfilerConfig, ProfilerOutcome};
pub use report::{AttackReport, BurstRecord};
