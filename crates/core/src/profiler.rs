//! The blackbox Profiler module (Section IV-C).
//!
//! Operating purely as an external HTTP client, the profiler:
//!
//! 1. **Crawls** the public request catalogue (the simulator's analogue of
//!    walking the application's public URLs).
//! 2. Measures a **baseline RT** per request type with paced single
//!    probes.
//! 3. Finds each type's **minimum saturating volume** `v_sat`: the
//!    smallest burst whose own requests show a clear RT inflation
//!    (a millibottleneck formed on the path's own bottleneck).
//! 4. Runs the **pairwise interference test** for every ordered pair
//!    `(a, b)`: bursts of `a` at increasing volume multiples of
//!    `v_sat(a)`, with probe requests of `b` interleaved; interference
//!    means the probes' RTs inflate well beyond `b`'s baseline (Fig 9–11).
//!    The sweep stops early when the self-measured millibottleneck length
//!    exceeds the stealth limit.
//! 5. **Classifies** each pair: interference already at the lowest volume
//!    in one direction only → sequential (that side is upstream); in both
//!    directions → shared bottleneck; only at higher volumes → parallel;
//!    never → no dependency. Dependency groups are the connected
//!    components of the result.
//!
//! All actions run on a fixed-slot schedule: each action owns a time slot
//! and is finalised at the slot end with whatever responses arrived.
//! Probes still in flight at finalisation count as *inflated* — an
//! unanswered probe is the strongest possible interference signal.

use std::collections::{BTreeMap, HashMap};

use callgraph::{DependencyGroups, PairwiseDependency, RequestTypeId};
use microsim::{Agent, Response, SimCtx};
use simnet::{RngStream, SegSamples, SimDuration, SimTime};

use crate::botfarm::BotFarm;
use crate::monitor::BurstObservation;

/// Profiler tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilerConfig {
    /// Seed for pacing jitter and bot identities.
    pub seed: u64,
    /// Baseline probes per request type.
    pub baseline_probes: u32,
    /// Spacing between baseline probes.
    pub probe_spacing: SimDuration,
    /// Volumes (requests) tried when searching `v_sat`, ascending.
    pub saturation_sweep: Vec<u32>,
    /// Length `L` over which a profiling burst's volume is spread (so the
    /// burst has a definite rate `B = V / L`; an instantaneous volley
    /// would overwhelm any shared upstream service and mask where the
    /// bottleneck truly sits).
    pub burst_length: SimDuration,
    /// Volume multipliers (relative to `v_sat(a)`) tried in pair tests.
    pub volume_multipliers: Vec<f64>,
    /// Hard cap on any single burst's volume (the bot budget).
    pub max_volume: u32,
    /// Stealth limit on the self-measured millibottleneck length.
    pub pmb_limit: SimDuration,
    /// A self-saturation measurement counts as inflated when it exceeds
    /// `baseline * inflation_factor + inflation_margin_ms`.
    pub inflation_factor: f64,
    /// Absolute inflation margin (ms).
    pub inflation_margin_ms: f64,
    /// Pair-test probes use this (more sensitive) factor: a victim probe
    /// delayed well beyond its baseline indicates interference even when
    /// the delay is smaller than a full saturation plateau.
    pub pair_inflation_factor: f64,
    /// Probes of `b` interleaved into each pair test.
    pub probes_per_test: u32,
    /// Spacing between interleaved probes: probe `p` is sent
    /// `(p + 1) * probe_offset` after the burst, sampling the victim path
    /// while the millibottleneck develops and drains.
    pub probe_offset: SimDuration,
    /// Length of one action slot (burst + observation + settle).
    pub slot: SimDuration,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            seed: 0,
            baseline_probes: 4,
            probe_spacing: SimDuration::from_millis(400),
            saturation_sweep: vec![8, 12, 16, 24, 32, 48, 64, 96, 128, 176, 240, 320, 400],
            burst_length: SimDuration::from_millis(400),
            volume_multipliers: vec![1.0, 1.8, 3.2],
            max_volume: 500,
            pmb_limit: SimDuration::from_millis(500),
            inflation_factor: 3.0,
            inflation_margin_ms: 40.0,
            pair_inflation_factor: 2.2,
            probes_per_test: 6,
            probe_offset: SimDuration::from_millis(120),
            slot: SimDuration::from_secs(3),
        }
    }
}

/// Raw result of one ordered pair sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PairObservation {
    /// Burst side.
    pub attacker: RequestTypeId,
    /// Probe side.
    pub victim: RequestTypeId,
    /// Per multiplier: `(multiplier, interference seen)`.
    pub sweep: Vec<(f64, bool)>,
}

impl PairObservation {
    /// The smallest multiplier that showed interference.
    pub fn threshold(&self) -> Option<f64> {
        self.sweep.iter().find(|(_, hit)| *hit).map(|(m, _)| *m)
    }

    /// Interference already at the lowest tested volume (the signature of
    /// an execution blocking effect).
    pub fn persistent(&self) -> bool {
        self.sweep.first().is_some_and(|(_, hit)| *hit)
    }
}

/// Everything the profiling phase learned.
#[derive(Debug, Clone)]
pub struct ProfilerOutcome {
    /// Public request types (id, name).
    pub catalog: Vec<(RequestTypeId, String)>,
    /// Baseline RT per type, ms (median of the probes).
    pub baseline_ms: BTreeMap<RequestTypeId, f64>,
    /// Minimum saturating volume per type (requests).
    pub v_sat: BTreeMap<RequestTypeId, u32>,
    /// Raw ordered-pair sweeps.
    pub pairs: Vec<PairObservation>,
    /// The estimated dependency groups.
    pub groups: DependencyGroups,
    /// Total profiling requests sent.
    pub requests_sent: u64,
    /// When profiling finished.
    pub finished_at: SimTime,
}

/// Which action the profiler is currently running.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Baseline { type_idx: usize, probe: u32 },
    Saturation { type_idx: usize, sweep_idx: usize },
    Pairs { pair_idx: usize, mult_idx: usize },
    Done,
}

/// The profiling agent. Register it, run the simulation until
/// [`Profiler::is_done`], then read [`Profiler::outcome`].
#[derive(Debug, Clone)]
pub struct Profiler {
    cfg: ProfilerConfig,
    rng: RngStream,
    farm: BotFarm,
    phase: Phase,
    action_seq: u64,
    catalog: Vec<(RequestTypeId, String)>,
    // Baseline phase.
    baseline_samples: HashMap<RequestTypeId, SegSamples>,
    baseline_ms: BTreeMap<RequestTypeId, f64>,
    // Saturation phase.
    v_sat: BTreeMap<RequestTypeId, u32>,
    current_burst: Option<BurstObservation>,
    /// Remaining requests and per-chunk count of the paced burst.
    chunk_plan: Option<(RequestTypeId, u32, u32)>,
    // Pair phase.
    ordered_pairs: Vec<(RequestTypeId, RequestTypeId)>,
    probe_results: Vec<Option<f64>>, // RT ms per probe, None = in flight/unsent
    probe_token_index: HashMap<u64, usize>,
    probe_victim: Option<RequestTypeId>,
    pair_results: Vec<PairObservation>,
    sweep_acc: Vec<(f64, bool)>,
    stealth_capped: bool,
    // Bookkeeping.
    requests_sent: u64,
    outcome: Option<ProfilerOutcome>,
    // Baseline probe token routing.
    baseline_tokens: HashMap<u64, RequestTypeId>,
}

const WAKE_NEXT_ACTION: u64 = u64::MAX;
/// Wake tokens `WAKE_PROBE_BASE + p` fire the delayed probe `p` of the
/// current pair test.
const WAKE_PROBE_BASE: u64 = u64::MAX - 1_024;
/// Wake token that submits the next chunk of the paced burst in flight.
const WAKE_CHUNK: u64 = u64::MAX - 2_048;
/// Pacing granularity of a burst.
const CHUNK_GAP: SimDuration = SimDuration::from_millis(20);

impl Profiler {
    /// Creates the profiling agent.
    pub fn new(cfg: ProfilerConfig) -> Self {
        let farm = BotFarm::new(64, SimDuration::from_millis(3_200));
        Profiler {
            rng: RngStream::from_label(cfg.seed, "grunt/profiler"),
            cfg,
            farm,
            phase: Phase::Baseline {
                type_idx: 0,
                probe: 0,
            },
            action_seq: 0,
            catalog: Vec::new(),
            baseline_samples: HashMap::new(),
            baseline_ms: BTreeMap::new(),
            v_sat: BTreeMap::new(),
            current_burst: None,
            chunk_plan: None,
            ordered_pairs: Vec::new(),
            probe_results: Vec::new(),
            probe_token_index: HashMap::new(),
            probe_victim: None,
            pair_results: Vec::new(),
            sweep_acc: Vec::new(),
            stealth_capped: false,
            requests_sent: 0,
            outcome: None,
            baseline_tokens: HashMap::new(),
        }
    }

    /// `true` once profiling finished and the outcome is available.
    pub fn is_done(&self) -> bool {
        self.outcome.is_some()
    }

    /// The profiling result, once done.
    pub fn outcome(&self) -> Option<&ProfilerOutcome> {
        self.outcome.as_ref()
    }

    fn inflation_threshold(&self, baseline_ms: f64) -> f64 {
        baseline_ms * self.cfg.inflation_factor + self.cfg.inflation_margin_ms
    }

    /// Starts a paced burst: `volume` requests of `rt` spread evenly over
    /// the configured burst length (each from its own bot), giving the
    /// burst a definite rate `B = V / L`.
    fn send_burst(&mut self, ctx: &mut SimCtx<'_>, rt: RequestTypeId, volume: u32) {
        let now = ctx.now();
        self.current_burst = Some(BurstObservation::new(rt, now, volume));
        let chunks = (self.cfg.burst_length.as_micros() / CHUNK_GAP.as_micros()).max(1) as u32;
        let per_chunk = volume.div_ceil(chunks);
        self.chunk_plan = Some((rt, volume, per_chunk));
        self.submit_chunk(ctx);
    }

    /// Submits the next chunk of the paced burst and reschedules itself.
    fn submit_chunk(&mut self, ctx: &mut SimCtx<'_>) {
        let Some((rt, remaining, per_chunk)) = self.chunk_plan else {
            return;
        };
        let n = remaining.min(per_chunk);
        let now = ctx.now();
        let origins = self.farm.allocate(n as usize, now);
        for origin in origins {
            let token = ctx.submit(rt, origin);
            if let Some(obs) = &mut self.current_burst {
                obs.track(token);
            }
            self.requests_sent += 1;
        }
        let left = remaining - n;
        if left > 0 {
            self.chunk_plan = Some((rt, left, per_chunk));
            ctx.schedule_wake(CHUNK_GAP, WAKE_CHUNK);
        } else {
            self.chunk_plan = None;
        }
    }

    /// Schedules the next action slot.
    fn schedule_slot(&mut self, ctx: &mut SimCtx<'_>, len: SimDuration) {
        self.action_seq += 1;
        ctx.schedule_wake(len, WAKE_NEXT_ACTION);
    }

    fn begin_action(&mut self, ctx: &mut SimCtx<'_>) {
        match self.phase {
            Phase::Baseline { type_idx, probe: _ } => {
                let (rt, _) = self.catalog[type_idx];
                let origin = self.farm.allocate(1, ctx.now())[0];
                let token = ctx.submit(rt, origin);
                self.baseline_tokens.insert(token, rt);
                self.requests_sent += 1;
                let spacing = self.cfg.probe_spacing;
                self.schedule_slot(ctx, spacing);
            }
            Phase::Saturation {
                type_idx,
                sweep_idx,
            } => {
                let (rt, _) = self.catalog[type_idx];
                let volume = self.cfg.saturation_sweep[sweep_idx].min(self.cfg.max_volume);
                self.send_burst(ctx, rt, volume);
                let slot = self.cfg.slot;
                self.schedule_slot(ctx, slot);
            }
            Phase::Pairs { pair_idx, mult_idx } => {
                let (a, b) = self.ordered_pairs[pair_idx];
                let mult = self.cfg.volume_multipliers[mult_idx];
                let v = ((self.v_sat[&a] as f64) * mult).round() as u32;
                let v = v.clamp(1, self.cfg.max_volume);
                self.send_burst(ctx, a, v);
                // Interleave probes of b across the observation window,
                // sampling while the millibottleneck develops and drains
                // (a probe sent at burst start would slip through before
                // the queue has formed).
                self.probe_results = vec![None; self.cfg.probes_per_test as usize];
                self.probe_token_index.clear();
                self.probe_victim = Some(b);
                for p in 0..self.cfg.probes_per_test {
                    let offset = self.cfg.probe_offset * u64::from(p + 1);
                    ctx.schedule_wake(offset, WAKE_PROBE_BASE + u64::from(p));
                }
                let slot = self.cfg.slot;
                self.schedule_slot(ctx, slot);
            }
            Phase::Done => {}
        }
    }

    fn finalize_action(&mut self, ctx: &mut SimCtx<'_>) {
        self.chunk_plan = None;
        match self.phase {
            Phase::Baseline { type_idx, probe } => {
                let next = if probe + 1 < self.cfg.baseline_probes {
                    Phase::Baseline {
                        type_idx,
                        probe: probe + 1,
                    }
                } else if type_idx + 1 < self.catalog.len() {
                    Phase::Baseline {
                        type_idx: type_idx + 1,
                        probe: 0,
                    }
                } else {
                    self.finish_baseline();
                    Phase::Saturation {
                        type_idx: 0,
                        sweep_idx: 0,
                    }
                };
                self.phase = next;
            }
            Phase::Saturation {
                type_idx,
                sweep_idx,
            } => {
                let (rt, _) = self.catalog[type_idx];
                let obs = self.current_burst.take().expect("burst in progress");
                let baseline = self.baseline_ms[&rt];
                let inflated = obs
                    .avg_rt_ms()
                    .is_none_or(|avg| avg > self.inflation_threshold(baseline));
                let volume = self.cfg.saturation_sweep[sweep_idx].min(self.cfg.max_volume);
                let saturated = inflated;
                let next = if saturated {
                    self.v_sat.insert(rt, volume);
                    self.next_saturation_type(type_idx)
                } else if sweep_idx + 1 < self.cfg.saturation_sweep.len() {
                    Phase::Saturation {
                        type_idx,
                        sweep_idx: sweep_idx + 1,
                    }
                } else {
                    // Could not saturate within the bot budget: remember
                    // the cap so pair tests still run at max volume.
                    self.v_sat.insert(rt, self.cfg.max_volume);
                    self.next_saturation_type(type_idx)
                };
                self.phase = next;
            }
            Phase::Pairs { pair_idx, mult_idx } => {
                let (a, b) = self.ordered_pairs[pair_idx];
                // Burst self-observation: stealth check.
                let obs = self.current_burst.take().expect("burst in progress");
                let over_stealth = obs
                    .pmb_estimate()
                    .is_some_and(|p| p > self.cfg.pmb_limit + self.cfg.burst_length)
                    || !obs.is_complete();
                // Probe verdict: a third of probes inflated (probes
                // sample different phases of the bottleneck, so most land
                // outside the saturated window even when interference is
                // real; in-flight probes count as inflated).
                let baseline_b = self.baseline_ms[&b];
                let threshold =
                    baseline_b * self.cfg.pair_inflation_factor + self.cfg.inflation_margin_ms;
                let inflated = self
                    .probe_results
                    .iter()
                    .filter(|r| r.is_none_or(|rt_ms| rt_ms > threshold))
                    .count();
                let hit = inflated * 3 >= self.probe_results.len().max(1);
                let mult = self.cfg.volume_multipliers[mult_idx];
                // Gates debug output to stderr only — no simulated state
                // depends on it. simlint: allow(nondet-source)
                if std::env::var("GRUNT_DEBUG_PAIR").is_ok() {
                    eprintln!(
                        "DBG pair {}->{} mult {:.1}: probes {:?} thr {:.0} hit {}",
                        a.index(),
                        b.index(),
                        mult,
                        self.probe_results,
                        threshold,
                        hit
                    );
                }
                self.sweep_acc.push((mult, hit));
                self.probe_victim = None;

                let volume_exhausted = {
                    let v = ((self.v_sat[&a] as f64) * mult).round() as u32;
                    v >= self.cfg.max_volume
                };
                let stop_sweep = mult_idx + 1 >= self.cfg.volume_multipliers.len()
                    || (over_stealth && {
                        self.stealth_capped = true;
                        true
                    })
                    || volume_exhausted;
                let next = if stop_sweep {
                    self.pair_results.push(PairObservation {
                        attacker: a,
                        victim: b,
                        sweep: std::mem::take(&mut self.sweep_acc),
                    });
                    if pair_idx + 1 < self.ordered_pairs.len() {
                        Phase::Pairs {
                            pair_idx: pair_idx + 1,
                            mult_idx: 0,
                        }
                    } else {
                        self.finish(ctx.now());
                        Phase::Done
                    }
                } else {
                    Phase::Pairs {
                        pair_idx,
                        mult_idx: mult_idx + 1,
                    }
                };
                self.phase = next;
            }
            Phase::Done => {}
        }
    }

    fn next_saturation_type(&mut self, type_idx: usize) -> Phase {
        if type_idx + 1 < self.catalog.len() {
            Phase::Saturation {
                type_idx: type_idx + 1,
                sweep_idx: 0,
            }
        } else {
            // Prepare pair phase: all ordered pairs in a deterministic but
            // shuffled order (interleaving groups reduces systematic
            // carry-over between adjacent tests).
            let ids: Vec<RequestTypeId> = self.catalog.iter().map(|(id, _)| *id).collect();
            let mut pairs = Vec::new();
            for &a in &ids {
                for &b in &ids {
                    if a != b {
                        pairs.push((a, b));
                    }
                }
            }
            self.rng.shuffle(&mut pairs);
            self.ordered_pairs = pairs;
            Phase::Pairs {
                pair_idx: 0,
                mult_idx: 0,
            }
        }
    }

    fn finish_baseline(&mut self) {
        for (rt, _) in &self.catalog {
            let mut samples = self.baseline_samples.remove(rt).unwrap_or_default();
            let median = if samples.is_empty() {
                // Nothing came back within the probing window: the path is
                // effectively unusable; treat as very slow.
                5_000.0
            } else {
                // Upper median, identical to the old full-sort-and-index
                // (`sorted[len / 2]`) but via the COW store's k-way merge.
                samples.nth_smallest(samples.len() / 2)
            };
            self.baseline_ms.insert(*rt, median);
        }
    }

    fn finish(&mut self, now: SimTime) {
        // Classify each unordered pair from its two ordered sweeps.
        let mut by_pair: BTreeMap<(RequestTypeId, RequestTypeId), Vec<&PairObservation>> =
            BTreeMap::new();
        for obs in &self.pair_results {
            let key = if obs.attacker <= obs.victim {
                (obs.attacker, obs.victim)
            } else {
                (obs.victim, obs.attacker)
            };
            by_pair.entry(key).or_default().push(obs);
        }
        let mut pairwise = BTreeMap::new();
        for ((x, y), obs) in by_pair {
            let fwd = obs.iter().find(|o| o.attacker == x);
            let rev = obs.iter().find(|o| o.attacker == y);
            let dep = classify(fwd.copied(), rev.copied());
            pairwise.insert((x, y), dep);
        }
        let members: Vec<RequestTypeId> = self.catalog.iter().map(|(id, _)| *id).collect();
        let groups = DependencyGroups::from_pairwise(members, pairwise);
        self.outcome = Some(ProfilerOutcome {
            catalog: self.catalog.clone(),
            baseline_ms: self.baseline_ms.clone(),
            v_sat: self.v_sat.clone(),
            pairs: std::mem::take(&mut self.pair_results),
            groups,
            requests_sent: self.requests_sent,
            finished_at: now,
        });
    }
}

/// Classification rule over the two ordered sweeps of one pair.
fn classify(fwd: Option<&PairObservation>, rev: Option<&PairObservation>) -> PairwiseDependency {
    let f_thr = fwd.and_then(PairObservation::threshold);
    let r_thr = rev.and_then(PairObservation::threshold);
    let f_persistent = fwd.is_some_and(PairObservation::persistent);
    let r_persistent = rev.is_some_and(PairObservation::persistent);
    match (f_thr, r_thr) {
        (None, None) => PairwiseDependency::None,
        _ => {
            if f_persistent && r_persistent {
                PairwiseDependency::SharedBottleneck
            } else if f_persistent {
                PairwiseDependency::Sequential {
                    upstream: fwd.expect("persistent implies present").attacker,
                }
            } else if r_persistent {
                PairwiseDependency::Sequential {
                    upstream: rev.expect("persistent implies present").attacker,
                }
            } else {
                PairwiseDependency::Parallel
            }
        }
    }
}

impl Agent for Profiler {
    fn start(&mut self, ctx: &mut SimCtx<'_>) {
        self.catalog = ctx.request_type_catalog();
        assert!(
            !self.catalog.is_empty(),
            "target application exposes no request types"
        );
        self.begin_action(ctx);
    }

    fn on_wake(&mut self, ctx: &mut SimCtx<'_>, token: u64) {
        if self.outcome.is_some() {
            return;
        }
        if token == WAKE_CHUNK {
            self.submit_chunk(ctx);
            return;
        }
        if (WAKE_PROBE_BASE..WAKE_NEXT_ACTION).contains(&token) {
            let p = (token - WAKE_PROBE_BASE) as usize;
            if let Some(victim) = self.probe_victim {
                if p < self.probe_results.len() {
                    let origin = self.farm.allocate(1, ctx.now())[0];
                    let probe_token = ctx.submit(victim, origin);
                    self.requests_sent += 1;
                    self.probe_token_index.insert(probe_token, p);
                }
            }
            return;
        }
        if token != WAKE_NEXT_ACTION {
            return;
        }
        self.finalize_action(ctx);
        if self.outcome.is_none() {
            self.begin_action(ctx);
        }
    }

    fn on_response(&mut self, _ctx: &mut SimCtx<'_>, response: &Response) {
        if let Some(rt) = self.baseline_tokens.remove(&response.token) {
            self.baseline_samples
                .entry(rt)
                .or_default()
                .push(response.latency_ms());
            return;
        }
        if let Some(idx) = self.probe_token_index.remove(&response.token) {
            if idx < self.probe_results.len() {
                self.probe_results[idx] = Some(response.latency_ms());
            }
            return;
        }
        if let Some(burst) = &mut self.current_burst {
            burst.record(response);
        }
    }

    fn snapshot(&self) -> Option<microsim::AgentState> {
        Some(microsim::AgentState::of(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(attacker: u32, victim: u32, sweep: &[(f64, bool)]) -> PairObservation {
        PairObservation {
            attacker: RequestTypeId::new(attacker),
            victim: RequestTypeId::new(victim),
            sweep: sweep.to_vec(),
        }
    }

    #[test]
    fn threshold_and_persistence() {
        let o = obs(0, 1, &[(1.0, false), (2.0, true), (4.0, true)]);
        assert_eq!(o.threshold(), Some(2.0));
        assert!(!o.persistent());
        let p = obs(0, 1, &[(1.0, true), (2.0, true)]);
        assert!(p.persistent());
        assert_eq!(p.threshold(), Some(1.0));
        let n = obs(0, 1, &[(1.0, false), (2.0, false)]);
        assert_eq!(n.threshold(), None);
    }

    #[test]
    fn classify_none() {
        let f = obs(0, 1, &[(1.0, false), (2.0, false)]);
        let r = obs(1, 0, &[(1.0, false), (2.0, false)]);
        assert_eq!(classify(Some(&f), Some(&r)), PairwiseDependency::None);
        assert_eq!(classify(None, None), PairwiseDependency::None);
    }

    #[test]
    fn classify_parallel() {
        // Interference only appears at higher volumes in either direction.
        let f = obs(0, 1, &[(1.0, false), (2.0, true)]);
        let r = obs(1, 0, &[(1.0, false), (2.0, false)]);
        assert_eq!(classify(Some(&f), Some(&r)), PairwiseDependency::Parallel);
        let r2 = obs(1, 0, &[(1.0, false), (2.0, true)]);
        assert_eq!(classify(Some(&f), Some(&r2)), PairwiseDependency::Parallel);
    }

    #[test]
    fn classify_sequential_picks_upstream() {
        // a blocks b even at the minimum volume; b needs more.
        let f = obs(0, 1, &[(1.0, true), (2.0, true)]);
        let r = obs(1, 0, &[(1.0, false), (2.0, true)]);
        assert_eq!(
            classify(Some(&f), Some(&r)),
            PairwiseDependency::Sequential {
                upstream: RequestTypeId::new(0)
            }
        );
        assert_eq!(
            classify(Some(&r), Some(&f)),
            PairwiseDependency::Sequential {
                upstream: RequestTypeId::new(0)
            }
        );
    }

    #[test]
    fn classify_shared_bottleneck() {
        let f = obs(0, 1, &[(1.0, true)]);
        let r = obs(1, 0, &[(1.0, true)]);
        assert_eq!(
            classify(Some(&f), Some(&r)),
            PairwiseDependency::SharedBottleneck
        );
    }
}
