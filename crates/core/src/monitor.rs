//! The Monitor module: client-side burst impact estimation (Section IV-B).

use callgraph::RequestTypeId;
use microsim::Response;
use simnet::{SimDuration, SimTime};
use std::collections::HashSet;

/// Bookkeeping for one attacking (or probing) burst.
///
/// The attacker records the send and completion times of every request in
/// the burst and derives two estimates:
///
/// * **Millibottleneck length** `P_MB` — end time of the *last* request
///   minus end time of the *first* (Fig 8): the burst keeps the bottleneck
///   resource busy until its last request finishes, so this difference is
///   a conservative estimate of the saturation interval.
/// * **Damage latency** — the average end-to-end response time of the
///   burst's requests, which approximates the `t_min` experienced by any
///   request traversing the blocked dependency group.
#[derive(Debug, Clone)]
pub struct BurstObservation {
    /// The attacked critical path.
    pub path: RequestTypeId,
    /// When the first request of the burst was sent.
    pub started: SimTime,
    /// Number of requests sent.
    pub sent: u32,
    tokens: HashSet<u64>,
    responses: u32,
    first_end: Option<SimTime>,
    last_end: Option<SimTime>,
    sum_rt_ms: f64,
    max_rt_ms: f64,
}

impl BurstObservation {
    /// Starts tracking a burst of `sent` requests on `path`.
    pub fn new(path: RequestTypeId, started: SimTime, sent: u32) -> Self {
        BurstObservation {
            path,
            started,
            sent,
            tokens: HashSet::with_capacity(sent as usize),
            responses: 0,
            first_end: None,
            last_end: None,
            sum_rt_ms: 0.0,
            max_rt_ms: 0.0,
        }
    }

    /// Registers a submitted request token as belonging to this burst.
    pub fn track(&mut self, token: u64) {
        self.tokens.insert(token);
    }

    /// Feeds a response; returns `true` when it belonged to this burst.
    pub fn record(&mut self, response: &Response) -> bool {
        if !self.tokens.remove(&response.token) {
            return false;
        }
        self.responses += 1;
        let end = response.completed_at;
        self.first_end = Some(self.first_end.map_or(end, |f| f.min(end)));
        self.last_end = Some(self.last_end.map_or(end, |l| l.max(end)));
        let rt = response.latency_ms();
        self.sum_rt_ms += rt;
        self.max_rt_ms = self.max_rt_ms.max(rt);
        true
    }

    /// `true` once every tracked request has responded.
    pub fn is_complete(&self) -> bool {
        self.responses >= self.sent && self.sent > 0
    }

    /// Responses received so far.
    pub fn responses(&self) -> u32 {
        self.responses
    }

    /// The millibottleneck-length estimate (Fig 8): last completion minus
    /// first completion. `None` with fewer than two responses.
    pub fn pmb_estimate(&self) -> Option<SimDuration> {
        match (self.first_end, self.last_end) {
            (Some(f), Some(l)) if self.responses >= 2 => Some(l.saturating_since(f)),
            _ => None,
        }
    }

    /// The damage-latency estimate: mean end-to-end RT of the burst (ms).
    /// `None` without responses.
    pub fn avg_rt_ms(&self) -> Option<f64> {
        if self.responses == 0 {
            None
        } else {
            Some(self.sum_rt_ms / f64::from(self.responses))
        }
    }

    /// Largest observed RT in the burst (ms); `0.0` without responses.
    pub fn max_rt_ms(&self) -> f64 {
        self.max_rt_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(token: u64, sent_ms: u64, done_ms: u64) -> Response {
        Response {
            tag: 0,
            token,
            request_type: RequestTypeId::new(0),
            submitted_at: SimTime::from_millis(sent_ms),
            completed_at: SimTime::from_millis(done_ms),
            outcome: microsim::Outcome::Ok,
        }
    }

    #[test]
    fn pmb_is_last_minus_first_completion() {
        let mut obs = BurstObservation::new(RequestTypeId::new(0), SimTime::ZERO, 3);
        for t in [1, 2, 3] {
            obs.track(t);
        }
        obs.record(&resp(1, 0, 100));
        obs.record(&resp(2, 10, 350));
        obs.record(&resp(3, 20, 480));
        assert!(obs.is_complete());
        assert_eq!(obs.pmb_estimate(), Some(SimDuration::from_millis(380)));
        let avg = obs.avg_rt_ms().unwrap();
        assert!((avg - (100.0 + 340.0 + 460.0) / 3.0).abs() < 1e-9);
        assert_eq!(obs.max_rt_ms(), 460.0);
    }

    #[test]
    fn foreign_tokens_are_rejected() {
        let mut obs = BurstObservation::new(RequestTypeId::new(0), SimTime::ZERO, 1);
        obs.track(7);
        assert!(!obs.record(&resp(99, 0, 10)));
        assert!(obs.record(&resp(7, 0, 10)));
        // Duplicate delivery is also rejected.
        assert!(!obs.record(&resp(7, 0, 10)));
    }

    #[test]
    fn estimates_unavailable_early() {
        let mut obs = BurstObservation::new(RequestTypeId::new(0), SimTime::ZERO, 2);
        obs.track(1);
        obs.track(2);
        assert_eq!(obs.pmb_estimate(), None);
        assert_eq!(obs.avg_rt_ms(), None);
        obs.record(&resp(1, 0, 50));
        assert_eq!(obs.pmb_estimate(), None, "one response is not enough");
        assert!(obs.avg_rt_ms().is_some());
        assert!(!obs.is_complete());
    }
}
