//! Campaign orchestration: profile, then attack.
//!
//! [`GruntCampaign::run`] drives the full pipeline the paper's attacker
//! follows against a live target: run the blackbox Profiler to completion,
//! build a Commander from the learned dependency groups, then attack for
//! the requested window. It exists so examples, tests and every experiment
//! harness share one battle-tested driver.

use microsim::Simulation;
use simnet::{SimDuration, SimTime};

use crate::commander::{CommanderConfig, GruntCommander};
use crate::profiler::{Profiler, ProfilerConfig, ProfilerOutcome};
use crate::report::AttackReport;

/// Configuration of a full campaign.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CampaignConfig {
    /// Profiler knobs.
    pub profiler: ProfilerConfig,
    /// Commander knobs (`stop_at` is overwritten by the attack window).
    pub commander: CommanderConfig,
}

/// Result of a full campaign.
#[derive(Debug, Clone)]
pub struct GruntCampaign {
    /// What the Profiler learned.
    pub profile: ProfilerOutcome,
    /// The Commander's campaign log.
    pub report: AttackReport,
    /// Final bot-farm size.
    pub bots_used: usize,
    /// When the attack (not the profiling) started.
    pub attack_started: SimTime,
    /// Active paths per group at campaign end.
    pub active_paths: Vec<usize>,
}

impl GruntCampaign {
    /// Runs profiling to completion, then attacks for `attack_window`.
    ///
    /// The simulation must already contain the target application and any
    /// background workload agents; it is advanced in place (first through
    /// the profiling phase, then through the attack window).
    ///
    /// # Panics
    ///
    /// Panics if the profiler fails to finish within a generous horizon
    /// (24 simulated hours) — that indicates a mis-configured target.
    pub fn run(
        sim: &mut Simulation,
        config: CampaignConfig,
        attack_window: SimDuration,
    ) -> GruntCampaign {
        let profile = GruntCampaign::profile(sim, config.profiler);
        GruntCampaign::attack_with(sim, profile, config.commander, attack_window)
    }

    /// Runs just the profiling phase to completion and returns what the
    /// Profiler learned. The simulation is left at the instant profiling
    /// finished, ready for [`GruntCampaign::attack_with`] — or for a
    /// [`Simulation::checkpoint`] so several attack variants can fork from
    /// the same profiled state.
    ///
    /// # Panics
    ///
    /// Panics if the profiler fails to finish within a generous horizon
    /// (24 simulated hours) — that indicates a mis-configured target.
    pub fn profile(sim: &mut Simulation, config: ProfilerConfig) -> ProfilerOutcome {
        let profiler_id = sim.add_agent(Box::new(Profiler::new(config)));
        let horizon = sim.now() + SimDuration::from_secs(24 * 3600);
        loop {
            let next = sim.now() + SimDuration::from_secs(10);
            sim.run_until(next);
            let done = sim
                .agent_as::<Profiler>(profiler_id)
                .expect("profiler registered")
                .is_done();
            if done {
                break;
            }
            assert!(sim.now() < horizon, "profiler did not converge");
        }
        sim.agent_as::<Profiler>(profiler_id)
            .expect("profiler registered")
            .outcome()
            .expect("done implies outcome")
            .clone()
    }

    /// Attacks for `attack_window` using an already-obtained `profile`
    /// (from [`GruntCampaign::profile`], possibly on a forked simulation).
    ///
    /// `commander.stop_at` is overwritten by the attack window.
    pub fn attack_with(
        sim: &mut Simulation,
        profile: ProfilerOutcome,
        commander: CommanderConfig,
        attack_window: SimDuration,
    ) -> GruntCampaign {
        let attack_started = sim.now();
        let commander_cfg = CommanderConfig {
            stop_at: attack_started + attack_window,
            ..commander
        };
        let commander_id = sim.add_agent(Box::new(GruntCommander::new(&profile, commander_cfg)));
        sim.run_until(attack_started + attack_window);

        let commander = sim
            .agent_as::<GruntCommander>(commander_id)
            .expect("commander registered");
        GruntCampaign {
            profile,
            report: commander.report().clone(),
            bots_used: commander.bots(),
            attack_started,
            active_paths: commander.active_paths(),
        }
    }
}
