//! The Commander module: alternating-burst attack with feedback control
//! (Section IV-D).
//!
//! One [`GruntCommander`] attacks every multi-member dependency group the
//! Profiler found, concurrently. Per group it keeps a rotation over the
//! ranked candidate paths and, after each burst, uses the Monitor's
//! estimates through two Kalman filters to adapt:
//!
//! * **burst volume** — held at the largest value whose measured
//!   millibottleneck length stays under the stealth limit
//!   (`P_MB <= 500 ms`): shrink multiplicatively when over, grow gently
//!   when clearly under;
//! * **inter-burst interval** — per Equation (9) the interval that
//!   *maintains* the blocking effect equals the previous burst's damage
//!   latency; the Commander schedules the next burst at
//!   `burst end + t_damage * interval_factor` and drives `interval_factor`
//!   down (overlapping damage) while the measured `t_min` is below the
//!   damage goal, up when comfortably above;
//! * **number of active paths `m`** — starts at 2 (or the group size if
//!   smaller) and grows whenever the interval factor has bottomed out and
//!   the damage goal is still unmet (the paper's step 3).

use callgraph::{DependencyGroups, PairwiseDependency, RequestTypeId};
use microsim::{Agent, Response, SimCtx};
use queueing::{rank_candidates, RankedPath};
use simnet::{SimDuration, SimTime};
use std::collections::BTreeMap;

use crate::botfarm::BotFarm;
use crate::kalman::ScalarKalman;
use crate::monitor::BurstObservation;
use crate::profiler::ProfilerOutcome;
use crate::report::{AttackReport, BurstRecord};

/// Commander tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct CommanderConfig {
    /// Seed for pacing jitter.
    pub seed: u64,
    /// Damage goal: average response time of the attacked groups, ms.
    pub damage_goal_ms: f64,
    /// Stealth goal: maximum millibottleneck length.
    pub pmb_limit: SimDuration,
    /// Initial number of paths attacked per group.
    pub initial_paths: usize,
    /// Minimum / maximum interval factor (fraction of the estimated
    /// damage latency waited between bursts).
    pub min_interval_factor: f64,
    /// See [`CommanderConfig::min_interval_factor`].
    pub max_interval_factor: f64,
    /// Upper bound on any burst volume (bot budget per burst).
    pub max_volume: u32,
    /// Length `L` over which each burst's volume is spread (the burst rate
    /// is `B = V / L`).
    pub burst_length: SimDuration,
    /// Minimum gap between two bursts that saturate the *same physical
    /// bottleneck* (paths related by a shared-bottleneck classification
    /// form one cluster). Keeping this above ~1 s guarantees no service's
    /// 1 s-average CPU ever approaches saturation — the stealth property
    /// Fig 14 demonstrates.
    pub bottleneck_cooldown: SimDuration,
    /// When the campaign ends.
    pub stop_at: SimTime,
    /// Reuse interval for bots (stay above the IDS 3 s rule).
    pub bot_reuse: SimDuration,
    /// Enables the feedback loops (volume, cadence, active-path count).
    /// Disabling freezes the initial parameters — the ablation showing why
    /// Section IV-D's adaptation is necessary.
    pub adaptive: bool,
}

impl Default for CommanderConfig {
    fn default() -> Self {
        CommanderConfig {
            seed: 0,
            damage_goal_ms: 1_000.0,
            pmb_limit: SimDuration::from_millis(500),
            initial_paths: 2,
            min_interval_factor: 0.25,
            max_interval_factor: 6.0,
            max_volume: 900,
            burst_length: SimDuration::from_millis(250),
            bottleneck_cooldown: SimDuration::from_millis(2_200),
            stop_at: SimTime::from_secs(1_200),
            bot_reuse: SimDuration::from_millis(3_200),
            adaptive: true,
        }
    }
}

/// Per-group attack state.
#[derive(Debug, Clone)]
struct GroupState {
    /// Ranked candidates (best first).
    ranked: Vec<RankedPath>,
    /// How many of the ranked paths are in the rotation.
    active: usize,
    /// Rotation cursor.
    cursor: usize,
    /// Per-path volume (requests per burst), adapted.
    volume: BTreeMap<RequestTypeId, f64>,
    /// Filtered damage-latency estimate (ms).
    tmin: ScalarKalman,
    /// Filtered per-burst damage (drain) estimate (ms), drives intervals.
    t_damage: ScalarKalman,
    /// Current interval factor.
    interval_factor: f64,
    /// Outstanding bursts (responses may lag multiple burst cycles when
    /// damage accumulates — that is the point of the attack).
    bursts: Vec<BurstObservation>,
    /// Remaining requests and per-chunk count of the burst being paced.
    chunk_plan: Option<(RequestTypeId, u32, u32)>,
    /// Bottleneck-cluster id per ranked path (paths mutually classified
    /// as shared-bottleneck saturate the same service).
    cluster: BTreeMap<RequestTypeId, usize>,
    /// Last burst start per cluster id.
    cluster_last: BTreeMap<usize, SimTime>,
    /// Most recent launches `(path, start)` for adaptive cluster merging.
    recent_launches: Vec<(RequestTypeId, SimTime)>,
    /// Violation co-occurrence per path pair: `(count, last strike time)`.
    /// Cluster merging needs repeated evidence *close in time* — isolated
    /// violations minutes apart are noise, and unbounded accumulation
    /// would eventually merge every pair on a long campaign.
    merge_strikes: BTreeMap<(RequestTypeId, RequestTypeId), (u32, SimTime)>,
    /// Sequence number for wake dedup.
    seq: u64,
}

/// The attacking agent. Construct from a [`ProfilerOutcome`], register,
/// and run the simulation to `stop_at`; read the [`AttackReport`] back
/// with [`GruntCommander::report`].
#[derive(Debug, Clone)]
pub struct GruntCommander {
    cfg: CommanderConfig,
    farm: BotFarm,
    groups: Vec<GroupState>,
    report: AttackReport,
}

impl GruntCommander {
    /// Builds the Commander from profiling results.
    ///
    /// Only multi-member groups are attacked (a singleton blocks nobody
    /// but itself). Initial per-path volume is `1.5 * v_sat`, clamped to
    /// the bot budget.
    pub fn new(outcome: &ProfilerOutcome, cfg: CommanderConfig) -> Self {
        let mut groups = Vec::new();
        for members in outcome.groups.multi_member_groups() {
            let mut ranked = rank_candidates(members, &outcome.groups, |rt| {
                f64::from(*outcome.v_sat.get(&rt).unwrap_or(&cfg.max_volume))
            });
            space_shared_bottlenecks(&mut ranked, &outcome.groups);
            // Every path starts in its own bottleneck cluster; clusters are
            // merged adaptively when overlapping bursts of two paths
            // produce an over-long millibottleneck (see `finish_burst`).
            let clusters: BTreeMap<RequestTypeId, usize> = ranked
                .iter()
                .enumerate()
                .map(|(i, r)| (r.request_type, i))
                .collect();
            let mut volume = BTreeMap::new();
            for r in &ranked {
                // Start slightly below the measured saturation volume and
                // let the P_MB feedback grow it: overshooting on the first
                // bursts is a stealth violation that cannot be undone.
                let v = if r.reference_volume >= f64::from(cfg.max_volume) {
                    // The profiler never confirmed saturation within its
                    // budget: start at the full budget.
                    f64::from(cfg.max_volume)
                } else {
                    (r.reference_volume * 0.8).clamp(4.0, f64::from(cfg.max_volume))
                };
                volume.insert(r.request_type, v);
            }
            let active = cfg.initial_paths.clamp(1, ranked.len());
            groups.push(GroupState {
                ranked,
                active,
                cursor: 0,
                volume,
                tmin: ScalarKalman::new(2_000.0, 40_000.0),
                t_damage: ScalarKalman::new(2_000.0, 40_000.0),
                interval_factor: 1.0,
                bursts: Vec::new(),
                chunk_plan: None,
                cluster: clusters,
                cluster_last: BTreeMap::new(),
                recent_launches: Vec::new(),
                merge_strikes: BTreeMap::new(),
                seq: 0,
            });
        }
        // Size the farm for a rough worst case: every group bursting its
        // maximum volume twice per reuse interval.
        let rate = groups.len().max(1) as f64 * f64::from(cfg.max_volume) * 2.0
            / cfg.bot_reuse.as_secs_f64();
        let farm = BotFarm::sized_for(rate, cfg.bot_reuse).with_namespace(1);
        GruntCommander {
            cfg,
            farm,
            groups,
            report: AttackReport::default(),
        }
    }

    /// The campaign log so far.
    pub fn report(&self) -> &AttackReport {
        &self.report
    }

    /// Final bot-farm size (the tables' "Bot" column).
    pub fn bots(&self) -> usize {
        self.farm.size()
    }

    /// Number of groups under attack.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Active paths per group (grows under feedback).
    pub fn active_paths(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g.active).collect()
    }

    const CHUNK_FLAG: u64 = 1 << 47;
    /// Pacing granularity of a burst.
    const CHUNK_GAP: SimDuration = SimDuration::from_millis(20);

    fn wake_token(group: usize, seq: u64) -> u64 {
        (group as u64) << 48 | (seq & 0x7FFF_FFFF_FFFF)
    }

    fn chunk_token(group: usize) -> u64 {
        (group as u64) << 48 | Self::CHUNK_FLAG
    }

    /// Returns `(group, seq, is_chunk)`.
    fn parse_token(token: u64) -> (usize, u64, bool) {
        (
            (token >> 48) as usize,
            token & 0x7FFF_FFFF_FFFF,
            token & Self::CHUNK_FLAG != 0,
        )
    }

    fn launch_burst(&mut self, ctx: &mut SimCtx<'_>, gi: usize) {
        let now = ctx.now();
        if now >= self.cfg.stop_at {
            return;
        }
        // Garbage-collect bursts whose responses went missing for a very
        // long time (finalise with whatever data arrived).
        let stale: Vec<BurstObservation> = {
            let g = &mut self.groups[gi];
            let cutoff = SimDuration::from_secs(20);
            let (old, live): (Vec<_>, Vec<_>) = g
                .bursts
                .drain(..)
                .partition(|b| now.saturating_since(b.started) > cutoff);
            g.bursts = live;
            old
        };
        for obs in stale {
            self.finish_burst(gi, &obs, now);
        }

        // Pick the next path in rotation whose bottleneck cluster is cold
        // (alternating bottlenecks is what keeps every individual service's
        // millibottlenecks short and sparse).
        let cooldown = self.cfg.bottleneck_cooldown;
        let g = &mut self.groups[gi];
        let active = g.active.max(1);
        let mut chosen = None;
        for offset in 0..active {
            let idx = (g.cursor + offset) % active;
            let path = g.ranked[idx].request_type;
            let cluster = g.cluster[&path];
            let cold = g
                .cluster_last
                .get(&cluster)
                .is_none_or(|t| now.saturating_since(*t) >= cooldown);
            if cold {
                chosen = Some((idx, path, cluster));
                break;
            }
        }
        let Some((idx, path, cluster)) = chosen else {
            // Every cluster is hot: retry shortly after the earliest one
            // cools down.
            g.seq += 1;
            let seq = g.seq;
            ctx.schedule_wake(cooldown / 3, Self::wake_token(gi, seq));
            return;
        };
        g.cluster_last.insert(cluster, now);
        g.recent_launches.push((path, now));
        if g.recent_launches.len() > 4 {
            g.recent_launches.remove(0);
        }
        g.cursor = (idx + 1) % active;
        let volume = g.volume[&path]
            .round()
            .clamp(1.0, f64::from(self.cfg.max_volume)) as u32;

        self.report.volume_series.push((now, gi, volume));
        self.groups[gi]
            .bursts
            .push(BurstObservation::new(path, now, volume));
        let chunks =
            (self.cfg.burst_length.as_micros() / Self::CHUNK_GAP.as_micros()).max(1) as u32;
        let per_chunk = volume.div_ceil(chunks);
        self.groups[gi].chunk_plan = Some((path, volume, per_chunk));
        self.submit_chunk(ctx, gi);

        // Timer-driven cadence (Equations (8)/(9)): the next burst fires
        // after `t_damage * interval_factor`, *without* waiting for this
        // burst's queue to drain — an interval factor below 1 overlaps the
        // drain and accumulates damage across the group's bottlenecks.
        let g = &mut self.groups[gi];
        g.seq += 1;
        // Phase-staggered cadence (Equations (8)/(9)): with `k` distinct
        // bottleneck clusters in the rotation and a per-cluster cooldown,
        // launching every `cooldown / k` tiles the blockades back-to-back
        // so the group's blocking never lapses. The feedback factor eases
        // the cadence when the damage goal is exceeded.
        let clusters: std::collections::HashSet<usize> = g
            .ranked
            .iter()
            .take(g.active.max(1))
            .map(|r| g.cluster[&r.request_type])
            .collect();
        let base_ms = self.cfg.bottleneck_cooldown.as_millis_f64() / clusters.len().max(1) as f64;
        let delay_ms = (base_ms * g.interval_factor).max(150.0);
        let seq = g.seq;
        ctx.schedule_wake(
            SimDuration::from_secs_f64(delay_ms / 1e3),
            Self::wake_token(gi, seq),
        );
    }

    /// Submits the next chunk of the group's paced burst and reschedules
    /// itself until the burst volume is exhausted.
    fn submit_chunk(&mut self, ctx: &mut SimCtx<'_>, gi: usize) {
        let Some((path, remaining, per_chunk)) = self.groups[gi].chunk_plan else {
            return;
        };
        let n = remaining.min(per_chunk);
        let now = ctx.now();
        let origins = self.farm.allocate(n as usize, now);
        for origin in origins {
            let token = ctx.submit(path, origin);
            if let Some(obs) = self.groups[gi].bursts.last_mut() {
                obs.track(token);
            }
            self.report.requests_sent += 1;
        }
        let left = remaining - n;
        if left > 0 {
            self.groups[gi].chunk_plan = Some((path, left, per_chunk));
            ctx.schedule_wake(Self::CHUNK_GAP, Self::chunk_token(gi));
        } else {
            self.groups[gi].chunk_plan = None;
        }
    }

    /// Close out a burst: feed the Monitor estimates into the filters and
    /// adapt volume / interval / active-path count.
    fn finish_burst(&mut self, gi: usize, obs: &BurstObservation, now: SimTime) {
        let g = &mut self.groups[gi];
        let pmb = obs.pmb_estimate();
        let avg = obs.avg_rt_ms();
        self.report.bursts.push(BurstRecord {
            group: gi,
            path: obs.path,
            started: obs.started,
            volume: obs.sent,
            pmb_estimate: pmb,
            avg_rt_ms: avg,
        });

        // Keep the estimators current even in the frozen ablation (they
        // drive scheduling), but apply no parameter feedback.
        if !self.cfg.adaptive {
            if let Some(p) = pmb {
                g.t_damage.update(p.as_millis_f64());
            }
            if let Some(rt) = avg {
                let tmin = g.tmin.update(rt);
                self.report.tmin_series.push((now, gi, tmin));
            }
            return;
        }

        // Stealth feedback on this path's volume (P_MB is linear in the
        // volume at fixed rate, Section III).
        if let Some(p) = pmb {
            // A paced burst's completions span the burst length even with
            // zero queueing, so the actual saturation is roughly
            // `measured - L`; the stealth budget therefore corresponds to
            // a measurement of `L + limit`.
            let pacing_floor = self.cfg.burst_length.as_millis_f64();
            let budget = self.cfg.pmb_limit.as_millis_f64() + pacing_floor;
            let measured = p.as_millis_f64().max(1.0);
            let v = g.volume.get_mut(&obs.path).expect("known path");
            if measured <= pacing_floor * 1.2 + 40.0 {
                // No millibottleneck formed at all: grow firmly.
                *v = (*v * 1.3).min(f64::from(self.cfg.max_volume));
            } else if measured > 0.9 * budget {
                *v = (*v * (0.78 * budget / measured).max(0.5)).max(4.0);
                // A too-long bottleneck also means bursts overlap on the
                // same resource: ease the cadence...
                g.interval_factor = (g.interval_factor * 1.15).min(self.cfg.max_interval_factor);
                // ...and if the millibottleneck ran far past the limit
                // right after another path's burst, the two likely
                // saturate the same physical service. Two strikes on the
                // same pair merge their clusters so the cooldown spaces
                // them apart.
                // Differential collision test: when the whole group's
                // bursts measure high (accumulated damage — the attack
                // working as intended), a high reading carries no
                // collision information. Only a reading far above both the
                // stealth budget and the group's running average suggests
                // two paths saturating one service.
                let group_avg = g.t_damage.estimate().unwrap_or(budget);
                if measured > 1.3 * budget && measured > 1.8 * group_avg {
                    let overlap_window = self.cfg.pmb_limit * 2;
                    let other = g
                        .recent_launches
                        .iter()
                        .rev()
                        .find(|(p, t)| {
                            *p != obs.path && obs.started.saturating_since(*t) <= overlap_window
                        })
                        .map(|(p, _)| *p);
                    if let Some(other) = other {
                        let key = if obs.path <= other {
                            (obs.path, other)
                        } else {
                            (other, obs.path)
                        };
                        let entry = g.merge_strikes.entry(key).or_insert((0, SimTime::ZERO));
                        if now.saturating_since(entry.1) > SimDuration::from_secs(30) {
                            entry.0 = 0;
                        }
                        entry.0 += 1;
                        entry.1 = now;
                        if entry.0 >= 2 {
                            let ca = g.cluster[&obs.path];
                            let cb = g.cluster[&other];
                            if ca != cb {
                                let (keep, drop) = (ca.min(cb), ca.max(cb));
                                for c in g.cluster.values_mut() {
                                    if *c == drop {
                                        *c = keep;
                                    }
                                }
                            }
                        }
                    }
                }
            } else if measured < 0.65 * budget {
                *v = (*v * 1.15).min(f64::from(self.cfg.max_volume));
            }
        }

        // Damage feedback. The drain time of this burst's queue is best
        // estimated by the millibottleneck length; the damage perceived by
        // the group is the average burst RT.
        if let Some(p) = pmb {
            g.t_damage.update(p.as_millis_f64());
        }
        if let Some(rt) = avg {
            let tmin = g.tmin.update(rt);
            self.report.tmin_series.push((now, gi, tmin));
            if tmin < 0.9 * self.cfg.damage_goal_ms {
                g.interval_factor = (g.interval_factor * 0.85).max(self.cfg.min_interval_factor);
                if g.interval_factor <= self.cfg.min_interval_factor * 1.01 {
                    if g.active < g.ranked.len() {
                        g.active += 1;
                    } else if let Some(p) = pmb {
                        // Cadence and path count are maxed out and the goal
                        // is still unmet: push volume toward the stealth
                        // ceiling (the shrink rule above caps the climb).
                        let pacing = self.cfg.burst_length.as_millis_f64();
                        let budget = self.cfg.pmb_limit.as_millis_f64() + pacing;
                        if p.as_millis_f64() < 0.85 * budget {
                            let v = g.volume.get_mut(&obs.path).expect("known path");
                            *v = (*v * 1.1).min(f64::from(self.cfg.max_volume));
                        }
                    }
                }
            } else if tmin > 1.1 * self.cfg.damage_goal_ms {
                g.interval_factor = (g.interval_factor * 1.15).min(self.cfg.max_interval_factor);
                if tmin > 2.0 * self.cfg.damage_goal_ms {
                    // Far past the goal (e.g. the baseline itself surged,
                    // Fig 15): shed burst volume, not just cadence — extra
                    // damage is pure stealth risk.
                    let v = g.volume.get_mut(&obs.path).expect("known path");
                    *v = (*v * 0.7).max(4.0);
                }
            }
        }
    }
}

impl Agent for GruntCommander {
    fn start(&mut self, ctx: &mut SimCtx<'_>) {
        // Open every group with a staggered first burst (the opening mixed
        // burst of Section III-B is realised as back-to-back bursts on the
        // first `active` paths).
        for gi in 0..self.groups.len() {
            let stagger = SimDuration::from_millis(50 * gi as u64);
            self.groups[gi].seq += 1;
            let seq = self.groups[gi].seq;
            ctx.schedule_wake(stagger, Self::wake_token(gi, seq));
        }
    }

    fn on_wake(&mut self, ctx: &mut SimCtx<'_>, token: u64) {
        let (gi, seq, is_chunk) = Self::parse_token(token);
        if gi >= self.groups.len() {
            return;
        }
        if is_chunk {
            self.submit_chunk(ctx, gi);
            return;
        }
        if seq != self.groups[gi].seq {
            return; // stale timer
        }
        self.launch_burst(ctx, gi);
    }

    fn on_response(&mut self, ctx: &mut SimCtx<'_>, response: &Response) {
        let now = ctx.now();
        for gi in 0..self.groups.len() {
            let mut completed_idx = None;
            let mut matched = false;
            for (i, obs) in self.groups[gi].bursts.iter_mut().enumerate() {
                if obs.record(response) {
                    matched = true;
                    if obs.is_complete() {
                        completed_idx = Some(i);
                    }
                    break;
                }
            }
            if let Some(i) = completed_idx {
                let obs = self.groups[gi].bursts.remove(i);
                self.finish_burst(gi, &obs, now);
            }
            if matched {
                return;
            }
        }
        let _ = ctx;
    }

    fn snapshot(&self) -> Option<microsim::AgentState> {
        Some(microsim::AgentState::of(self))
    }
}

/// Reorders ranked candidates so that paths sharing a bottleneck
/// (classified [`PairwiseDependency::SharedBottleneck`]) are not adjacent
/// in the rotation: consecutive bursts on the same physical bottleneck
/// double its saturation window and show up on 1 s monitors.
fn space_shared_bottlenecks(ranked: &mut [RankedPath], deps: &DependencyGroups) {
    for i in 1..ranked.len() {
        let prev = ranked[i - 1].request_type;
        if matches!(
            deps.pairwise(prev, ranked[i].request_type),
            PairwiseDependency::SharedBottleneck
        ) {
            // Find a later candidate that does not share the previous
            // bottleneck and swap it forward.
            if let Some(j) = (i + 1..ranked.len()).find(|&j| {
                !matches!(
                    deps.pairwise(prev, ranked[j].request_type),
                    PairwiseDependency::SharedBottleneck
                )
            }) {
                ranked.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use callgraph::ExecutionPath;
    use queueing::BlockingKind;

    #[test]
    fn shared_bottleneck_siblings_get_spaced() {
        // Three paths: 0 and 1 share a bottleneck (same service), 2 is
        // distinct. After spacing, 0 and 1 must not be adjacent.
        let ms = SimDuration::from_millis;
        let paths = vec![
            ExecutionPath::from_chain(
                RequestTypeId::new(0),
                vec![
                    (callgraph::ServiceId::new(0), ms(1)),
                    (callgraph::ServiceId::new(1), ms(9)),
                ],
            ),
            ExecutionPath::from_chain(
                RequestTypeId::new(1),
                vec![
                    (callgraph::ServiceId::new(2), ms(1)),
                    (callgraph::ServiceId::new(1), ms(9)),
                ],
            ),
            ExecutionPath::from_chain(
                RequestTypeId::new(2),
                vec![
                    (callgraph::ServiceId::new(0), ms(1)),
                    (callgraph::ServiceId::new(3), ms(9)),
                ],
            ),
        ];
        let deps = DependencyGroups::from_ground_truth(&paths);
        let mut ranked: Vec<RankedPath> = paths
            .iter()
            .map(|p| RankedPath {
                request_type: p.request_type(),
                kind: BlockingKind::Execution,
                reference_volume: 100.0,
            })
            .collect();
        space_shared_bottlenecks(&mut ranked, &deps);
        for w in ranked.windows(2) {
            let pair = deps.pairwise(w[0].request_type, w[1].request_type);
            assert_ne!(
                pair,
                PairwiseDependency::SharedBottleneck,
                "adjacent shared-bottleneck paths after spacing: {ranked:?}"
            );
        }
    }

    #[test]
    fn wake_tokens_roundtrip() {
        for (g, s) in [(0usize, 1u64), (5, 999), (12, 1 << 40)] {
            let t = GruntCommander::wake_token(g, s);
            assert_eq!(GruntCommander::parse_token(t), (g, s, false));
        }
        let c = GruntCommander::chunk_token(3);
        assert_eq!(GruntCommander::parse_token(c), (3, 0, true));
    }
}
