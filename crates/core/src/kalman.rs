//! Scalar Kalman filtering for noisy client-side estimates.
//!
//! The Commander observes `P_MB` and `t_min` through single-burst
//! measurements that carry substantial noise (background workload,
//! demand jitter). A one-dimensional Kalman filter with a random-walk
//! state model smooths these observations while still tracking drifts of
//! the system state (replica scaling, workload swings) — exactly the role
//! the paper assigns it in Section IV-D.

/// A one-dimensional Kalman filter over a random-walk state.
///
/// # Example
///
/// ```
/// use grunt::ScalarKalman;
///
/// let mut k = ScalarKalman::new(1.0, 25.0);
/// for z in [100.0, 120.0, 90.0, 110.0] {
///     k.update(z);
/// }
/// let est = k.estimate().unwrap();
/// assert!((90.0..=120.0).contains(&est));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarKalman {
    /// Process-noise variance `q`: how fast the true value may drift.
    q: f64,
    /// Measurement-noise variance `r`: how noisy one observation is.
    r: f64,
    state: Option<(f64, f64)>, // (estimate, error covariance)
}

impl ScalarKalman {
    /// Creates a filter with process-noise variance `q` and
    /// measurement-noise variance `r`.
    ///
    /// # Panics
    ///
    /// Panics if either variance is not positive and finite.
    pub fn new(q: f64, r: f64) -> Self {
        assert!(q.is_finite() && q > 0.0, "process noise must be positive");
        assert!(
            r.is_finite() && r > 0.0,
            "measurement noise must be positive"
        );
        ScalarKalman { q, r, state: None }
    }

    /// Incorporates one measurement and returns the new estimate.
    ///
    /// The first measurement initialises the state directly. Non-finite
    /// measurements are ignored (the previous estimate is returned).
    pub fn update(&mut self, z: f64) -> f64 {
        if !z.is_finite() {
            return self.state.map_or(0.0, |(x, _)| x);
        }
        match self.state {
            None => {
                self.state = Some((z, self.r));
                z
            }
            Some((x, p)) => {
                let p_pred = p + self.q;
                let k = p_pred / (p_pred + self.r);
                let x_new = x + k * (z - x);
                let p_new = (1.0 - k) * p_pred;
                self.state = Some((x_new, p_new));
                x_new
            }
        }
    }

    /// The current estimate, if any measurement arrived yet.
    pub fn estimate(&self) -> Option<f64> {
        self.state.map(|(x, _)| x)
    }

    /// The current error covariance, if initialised.
    pub fn covariance(&self) -> Option<f64> {
        self.state.map(|(_, p)| p)
    }

    /// Discards all state (e.g. after a scaling event invalidates the
    /// model).
    pub fn reset(&mut self) {
        self.state = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_measurement_initialises() {
        let mut k = ScalarKalman::new(1.0, 10.0);
        assert_eq!(k.estimate(), None);
        assert_eq!(k.update(42.0), 42.0);
        assert_eq!(k.estimate(), Some(42.0));
    }

    #[test]
    fn smooths_noise_toward_mean() {
        let mut k = ScalarKalman::new(0.01, 100.0);
        // Noisy measurements around 50.
        let measurements = [60.0, 40.0, 55.0, 45.0, 52.0, 48.0, 58.0, 42.0];
        let mut last = 0.0;
        for z in measurements {
            last = k.update(z);
        }
        assert!((last - 50.0).abs() < 5.0, "estimate {last}");
        // Filter variance shrinks below a single measurement's.
        assert!(k.covariance().unwrap() < 100.0);
    }

    #[test]
    fn tracks_drift() {
        let mut k = ScalarKalman::new(5.0, 10.0);
        for z in [10.0; 10] {
            k.update(z);
        }
        for z in [100.0; 10] {
            k.update(z);
        }
        let est = k.estimate().unwrap();
        assert!(est > 90.0, "should track the jump, got {est}");
    }

    #[test]
    fn ignores_non_finite() {
        let mut k = ScalarKalman::new(1.0, 1.0);
        k.update(10.0);
        assert_eq!(k.update(f64::NAN), 10.0);
        assert_eq!(k.update(f64::INFINITY), 10.0);
        assert_eq!(k.estimate(), Some(10.0));
    }

    #[test]
    fn reset_clears_state() {
        let mut k = ScalarKalman::new(1.0, 1.0);
        k.update(5.0);
        k.reset();
        assert_eq!(k.estimate(), None);
    }

    #[test]
    #[should_panic(expected = "process noise")]
    fn zero_process_noise_rejected() {
        ScalarKalman::new(0.0, 1.0);
    }
}
