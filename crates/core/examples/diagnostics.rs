//! Campaign diagnostics: a verbose end-to-end run against SocialNetwork
//! that prints every intermediate quantity — profiling details, per-group
//! feedback state, per-type damage, the full detection stack's verdicts,
//! and white-box millibottleneck statistics. The first stop when tuning
//! the Commander's feedback or investigating a regression.
//!
//! Set `GRUNT_DEBUG_PAIR=1` for per-pair probe dumps during profiling.
use apps::social_network;
use grunt::{CampaignConfig, GruntCampaign};
use microsim::{SimConfig, Simulation};
use simnet::{SimDuration, SimTime};
use telemetry::{LatencySummary, Traffic};
use workload::ClosedLoopUsers;

fn main() {
    let users = 7000;
    let app = social_network(users);
    let mut sim = Simulation::new(app.topology().clone(), SimConfig::default().seed(3));
    sim.add_agent(Box::new(ClosedLoopUsers::new(
        users,
        app.browsing_model(),
        42,
    )));
    // Warm up baseline.
    sim.run_until(SimTime::from_secs(30));
    let t0 = std::time::Instant::now();
    let window: u64 = std::env::var("GRUNT_ATTACK_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let campaign = GruntCampaign::run(
        &mut sim,
        CampaignConfig::default(),
        SimDuration::from_secs(window),
    );
    eprintln!("wall: {:?}", t0.elapsed());

    println!(
        "profiling finished at {} with {} requests",
        campaign.profile.finished_at, campaign.profile.requests_sent
    );
    println!("v_sat: {:?}", campaign.profile.v_sat);
    println!(
        "baselines: {:?}",
        campaign
            .profile
            .baseline_ms
            .iter()
            .map(|(k, v)| (k.index(), (*v * 10.0).round() / 10.0))
            .collect::<Vec<_>>()
    );
    println!("estimated groups: {:?}", campaign.profile.groups.groups());
    let gt = telemetry::GroundTruth::from_topology(app.topology());
    println!("true groups:      {:?}", gt.groups().groups());
    let members: Vec<_> = campaign.profile.catalog.iter().map(|(id, _)| *id).collect();
    let score = telemetry::ProfilerScore::compute(&members, &gt, &campaign.profile.groups);
    println!(
        "profiler P={:.2} R={:.2} F={:.2}",
        score.precision(),
        score.recall(),
        score.f_score()
    );

    for p in &campaign.profile.pairs {
        let (a, b) = (p.attacker.index(), p.victim.index());
        if (a == 4 || a == 5) && (b == 4 || b == 5) {
            println!("  sweep {a}->{b}: {:?}", p.sweep);
        }
        if (a == 4 && b == 6) || (a == 6 && b == 4) {
            println!("  sweep {a}->{b}: {:?}", p.sweep);
        }
    }
    for (a, b, d) in campaign.profile.groups.pairs() {
        if d.is_dependent() {
            println!("  pair {}-{}: {:?}", a.index(), b.index(), d);
        }
    }
    let a0 = campaign.attack_started;
    let a1 = a0 + SimDuration::from_secs(window);
    let m = sim.metrics();
    let base = LatencySummary::compute(
        m,
        Traffic::Legit,
        None,
        SimTime::from_secs(10),
        campaign
            .profile
            .finished_at
            .min(SimTime::from_secs(30 + 10 * 60)),
    );
    let att = LatencySummary::compute(m, Traffic::Legit, None, a0 + SimDuration::from_secs(20), a1);
    println!(
        "baseline: avg={:.0}ms p95={:.0}ms  attack: avg={:.0}ms p95={:.0}ms",
        base.avg_ms, base.p95_ms, att.avg_ms, att.p95_ms
    );
    println!(
        "bursts={} total_volume={} bots={} mean_pmb={:?} stealth={:.2} active={:?}",
        campaign.report.bursts.len(),
        campaign.report.total_volume(),
        campaign.bots_used,
        campaign.report.mean_pmb(),
        campaign
            .report
            .stealth_compliance(SimDuration::from_millis(750)),
        campaign.active_paths
    );
    // per-type damage + per-group burst cadence
    for rt in 0..10u32 {
        let t = callgraph::RequestTypeId::new(rt);
        let s2 = LatencySummary::compute(
            m,
            Traffic::Legit,
            Some(t),
            a0 + SimDuration::from_secs(20),
            a1,
        );
        print!(" rt{rt}={:.0}ms", s2.avg_ms);
    }
    println!();
    for gi in 0..3usize {
        let n = campaign.report.bursts_for_group(gi).count();
        let tmins: Vec<f64> = campaign
            .report
            .tmin_series
            .iter()
            .filter(|(_, g, _)| *g == gi)
            .map(|(_, _, v)| *v)
            .collect();
        let last = tmins.last().copied().unwrap_or(0.0);
        let paths: std::collections::HashSet<_> = campaign
            .report
            .bursts_for_group(gi)
            .map(|b| b.path.index())
            .collect();
        println!(" group{gi}: bursts={n} tmin_last={last:.0}ms paths={paths:?}");
    }
    // stealth: IDS, shield, autoscaler-style coarse view
    let ids = defense::Ids::new(defense::IdsConfig::default());
    let rep = ids.analyze(m);
    let by_kind = |k| rep.of_kind(k).count();
    println!(
        "IDS alerts: content={} proto={} interval={} (attacker hits {}) resource={}",
        by_kind(defense::AlertKind::Content),
        by_kind(defense::AlertKind::Protocol),
        by_kind(defense::AlertKind::IntervalViolation),
        rep.attacker_hits(),
        by_kind(defense::AlertKind::ResourceSaturation)
    );
    let shield = defense::RateShield::paper_default();
    println!("shield blocked IPs: {}", shield.blocked_count(m));
    let cw = telemetry::CoarseMonitor::new(m, SimDuration::from_secs(1));
    for name in [
        "memcached-post",
        "home-timeline",
        "compose-post",
        "post-storage",
        "social-graph",
        "media-service",
    ] {
        let svc = app.topology().service_by_name(name).unwrap();
        let base_u = cw.mean_utilization(svc, SimTime::from_secs(5), SimTime::from_secs(30));
        let att_u = cw.mean_utilization(svc, a0, a1);
        let peak = cw
            .series(svc)
            .iter()
            .filter(|s| s.start >= a0 && s.start < a1)
            .map(|s| s.utilization)
            .fold(0.0, f64::max);
        println!("  {name:18} base={base_u:.2} attack={att_u:.2} peak1s={peak:.2}");
    }
    let net_base: f64 = m.network_total_mb(0, 300) / 30.0;
    let a0i = (a0.as_millis() / 100) as usize;
    let a1i = ((a1.as_millis() / 100) as usize).min(m.num_windows());
    let net_att: f64 = m.network_total_mb(a0i, a1i) / ((a1i - a0i) as f64 / 10.0);
    println!("net MB/s: base={net_base:.2} attack={net_att:.2}");
    // white-box millibottlenecks during attack
    let mbs = telemetry::find_millibottlenecks(m, 0.95);
    let during: Vec<_> = mbs.iter().filter(|mb| mb.start >= a0).collect();
    let stats =
        telemetry::millibottleneck_stats(&during.iter().map(|m| **m).collect::<Vec<_>>(), None);
    println!(
        "white-box MBs during attack: {} mean={} max={}",
        stats.count, stats.mean_length, stats.max_length
    );
}
