//! Property-based tests of the attack framework's invariants: the bot
//! farm's identity discipline, the Monitor's estimator bounds and the
//! Kalman filter's stability.

use callgraph::RequestTypeId;
use grunt::{BotFarm, BurstObservation, ScalarKalman};
use microsim::Response;
use proptest::prelude::*;
use simnet::{SimDuration, SimTime};

proptest! {
    /// No bot identity is ever reused within the minimum interval, for
    /// arbitrary allocation schedules; allocations always return the
    /// requested number of distinct identities.
    #[test]
    fn botfarm_identity_discipline(
        initial in 1usize..50,
        interval_ms in 100u64..5_000,
        steps in prop::collection::vec((0u64..2_000, 1usize..40), 1..30),
    ) {
        let min = SimDuration::from_millis(interval_ms);
        let mut farm = BotFarm::new(initial, min);
        let mut now = SimTime::ZERO;
        let mut last_use: std::collections::HashMap<u32, SimTime> = Default::default();
        for (advance, n) in steps {
            now += SimDuration::from_millis(advance);
            let origins = farm.allocate(n, now);
            prop_assert_eq!(origins.len(), n);
            let distinct: std::collections::HashSet<u32> =
                origins.iter().map(|o| o.ip).collect();
            prop_assert_eq!(distinct.len(), n, "one identity per request in a burst");
            for o in origins {
                prop_assert!(o.is_attack);
                if let Some(prev) = last_use.insert(o.ip, now) {
                    prop_assert!(
                        now.saturating_since(prev) >= min,
                        "bot {} reused after {}",
                        o.ip,
                        now.saturating_since(prev)
                    );
                }
            }
        }
        prop_assert!(farm.size() >= initial);
        prop_assert!(farm.used() <= farm.size());
    }

    /// Monitor estimates: P_MB equals the spread of completion times and
    /// the average RT lies between the min and max individual RTs.
    #[test]
    fn burst_observation_estimator_bounds(
        latencies in prop::collection::vec(1u64..5_000, 2..100),
    ) {
        let n = latencies.len() as u32;
        let mut obs = BurstObservation::new(RequestTypeId::new(0), SimTime::ZERO, n);
        for t in 0..n as u64 {
            obs.track(t);
        }
        let mut ends = Vec::new();
        for (i, lat) in latencies.iter().enumerate() {
            let submitted = SimTime::from_millis(i as u64);
            let completed = submitted + SimDuration::from_millis(*lat);
            ends.push(completed);
            obs.record(&Response {
                token: i as u64,
                tag: 0,
                request_type: RequestTypeId::new(0),
                submitted_at: submitted,
                completed_at: completed,
                outcome: microsim::Outcome::Ok,
            });
        }
        prop_assert!(obs.is_complete());
        let first = ends.iter().min().expect("non-empty");
        let last = ends.iter().max().expect("non-empty");
        prop_assert_eq!(obs.pmb_estimate().expect("complete"), last.saturating_since(*first));
        let avg = obs.avg_rt_ms().expect("complete");
        let min = *latencies.iter().min().expect("non-empty") as f64;
        let max = *latencies.iter().max().expect("non-empty") as f64;
        prop_assert!(avg >= min - 1e-9 && avg <= max + 1e-9);
        prop_assert_eq!(obs.max_rt_ms(), max);
    }

    /// Kalman: the estimate always lies within the range of observed
    /// measurements, and converges toward a constant signal.
    #[test]
    fn kalman_estimate_stays_in_range(
        q in 0.1f64..1_000.0,
        r in 0.1f64..100_000.0,
        zs in prop::collection::vec(0.0f64..10_000.0, 1..100),
    ) {
        let mut k = ScalarKalman::new(q, r);
        for &z in &zs {
            k.update(z);
        }
        let est = k.estimate().expect("updated");
        let lo = zs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = zs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "estimate {est} outside [{lo}, {hi}]");
    }

    /// Kalman convergence: after enough identical measurements the
    /// estimate reaches the signal regardless of the starting point. The
    /// iteration budget is matched to the worst-case steady-state gain
    /// (K* ≈ sqrt(q/r) for q << r), since convergence is geometric in
    /// (1 - K*).
    #[test]
    fn kalman_converges_to_constant(
        q in 0.1f64..100.0,
        r in 0.1f64..10_000.0,
        start in 0.0f64..1_000.0,
        signal in 1.0f64..1_000.0,
    ) {
        let mut k = ScalarKalman::new(q, r);
        k.update(start);
        // Steady-state error covariance of the random-walk filter and the
        // corresponding gain.
        let p_star = (q + (q * q + 4.0 * q * r).sqrt()) / 2.0;
        let gain = p_star / (p_star + r);
        // Enough steps to shrink any initial error below 0.1% of range.
        let steps = ((1e-4f64.ln()) / (1.0 - gain).ln()).ceil().max(10.0) as usize;
        for _ in 0..steps.min(200_000) {
            k.update(signal);
        }
        let est = k.estimate().expect("updated");
        prop_assert!(
            (est - signal).abs() <= 0.01 * signal + 1e-3 * (start - signal).abs() + 1e-6,
            "did not converge after {steps} steps: {est} vs {signal}"
        );
    }
}
