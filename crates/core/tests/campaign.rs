//! End-to-end integration tests for the Grunt attack pipeline against the
//! SocialNetwork application: profiling accuracy, damage, and stealth.

use apps::social_network;
use defense::{AlertKind, Ids, IdsConfig, RateShield};
use grunt::{CampaignConfig, GruntCampaign};
use microsim::{SimConfig, Simulation};
use simnet::{SimDuration, SimTime};
use telemetry::{GroundTruth, LatencySummary, ProfilerScore, Traffic};
use workload::ClosedLoopUsers;

const USERS: usize = 4_000;
const ATTACK_SECS: u64 = 120;

/// Runs the complete pipeline once; several assertions share it to avoid
/// repeating the (relatively) expensive simulation.
fn run_campaign() -> (Simulation, GruntCampaign) {
    let app = social_network(USERS);
    let mut sim = Simulation::new(app.topology().clone(), SimConfig::default().seed(11));
    sim.add_agent(Box::new(ClosedLoopUsers::new(
        USERS,
        app.browsing_model(),
        77,
    )));
    sim.run_until(SimTime::from_secs(20)); // warm-up
    let campaign = GruntCampaign::run(
        &mut sim,
        CampaignConfig::default(),
        SimDuration::from_secs(ATTACK_SECS),
    );
    (sim, campaign)
}

#[test]
fn full_campaign_meets_damage_and_stealth_goals() {
    let app = social_network(USERS);
    let (sim, campaign) = run_campaign();
    let metrics = sim.metrics();

    // ---- profiling accuracy (Fig 16 at moderate load) ----
    let gt = GroundTruth::from_topology(app.topology());
    let members: Vec<_> = campaign.profile.catalog.iter().map(|(id, _)| *id).collect();
    let score = ProfilerScore::compute(&members, &gt, &campaign.profile.groups);
    assert!(
        score.f_score() > 0.85,
        "profiler F-score {:.2} (P {:.2} R {:.2})",
        score.f_score(),
        score.precision(),
        score.recall()
    );
    assert!(
        campaign.profile.groups.multi_member_groups().count() >= 3,
        "should find the three attackable groups"
    );

    // ---- damage (Table I shape) ----
    let baseline = LatencySummary::compute(
        metrics,
        Traffic::Legit,
        None,
        SimTime::from_secs(5),
        SimTime::from_secs(20),
    );
    let a0 = campaign.attack_started + SimDuration::from_secs(20);
    let a1 = campaign.attack_started + SimDuration::from_secs(ATTACK_SECS);
    let attacked = LatencySummary::compute(metrics, Traffic::Legit, None, a0, a1);
    assert!(
        baseline.avg_ms < 150.0,
        "baseline avg {:.0} ms",
        baseline.avg_ms
    );
    assert!(
        attacked.avg_ms > 5.0 * baseline.avg_ms,
        "damage factor {:.1}x (base {:.0} ms, attack {:.0} ms)",
        attacked.avg_ms / baseline.avg_ms,
        baseline.avg_ms,
        attacked.avg_ms
    );
    assert!(
        attacked.p95_ms > 10.0 * baseline.p95_ms,
        "p95 damage {:.0} -> {:.0}",
        baseline.p95_ms,
        attacked.p95_ms
    );

    // ---- stealth: rule-based IDS and rate shield ----
    let report = Ids::new(IdsConfig::default()).analyze(metrics);
    assert_eq!(report.of_kind(AlertKind::Content).count(), 0);
    assert_eq!(report.of_kind(AlertKind::Protocol).count(), 0);
    let attacker_interval_hits = report
        .of_kind(AlertKind::IntervalViolation)
        .filter(|a| a.hit_attacker)
        .count();
    assert_eq!(
        attacker_interval_hits, 0,
        "bot farm must never trip the session-interval rule"
    );
    assert_eq!(
        RateShield::paper_default().blocked_count(metrics),
        0,
        "no bot IP may exceed the per-IP budget"
    );

    // ---- stealth: millibottlenecks stay sub-second (white box) ----
    let mbs = telemetry::find_millibottlenecks(metrics, 0.95);
    let during_attack: Vec<_> = mbs
        .iter()
        .filter(|m| m.start >= campaign.attack_started)
        .copied()
        .collect();
    let stats = telemetry::millibottleneck_stats(&during_attack, None);
    assert!(stats.count > 10, "attack must create millibottlenecks");
    assert!(
        stats.mean_length < SimDuration::from_millis(600),
        "mean millibottleneck {}",
        stats.mean_length
    );

    // ---- attacker-side monitoring sanity ----
    assert!(campaign.report.bursts.len() > 50);
    let mean_pmb = campaign.report.mean_pmb().expect("bursts have estimates");
    // Measured estimates include the burst pacing length.
    assert!(
        mean_pmb < SimDuration::from_millis(800),
        "mean estimated P_MB {mean_pmb}"
    );
    assert!(campaign.bots_used > 100, "bots {}", campaign.bots_used);
    assert!(campaign.report.requests_sent > 10_000);
}

#[test]
fn attack_volume_is_low_relative_to_brute_force() {
    let (_sim, campaign) = run_campaign();
    // Attack request rate during the window vs the legitimate rate: Grunt
    // must stay well below the baseline traffic it disturbs (low-volume
    // property; brute-force needs a multiple of system capacity).
    let window_s = ATTACK_SECS as f64;
    let attack_rate = campaign.report.requests_sent as f64 / window_s;
    let legit_rate = USERS as f64 / 7.0;
    assert!(
        attack_rate < legit_rate * 2.5,
        "attack rate {attack_rate:.0}/s vs legit {legit_rate:.0}/s"
    );
}

#[test]
fn profiler_is_deterministic_given_seed() {
    let run = |seed: u64| {
        let app = social_network(1_000);
        let mut sim = Simulation::new(app.topology().clone(), SimConfig::default().seed(seed));
        sim.add_agent(Box::new(ClosedLoopUsers::new(
            1_000,
            app.browsing_model(),
            5,
        )));
        let profiler = grunt::Profiler::new(grunt::ProfilerConfig::default());
        let id = sim.add_agent(Box::new(profiler));
        loop {
            let next = sim.now() + SimDuration::from_secs(10);
            sim.run_until(next);
            if sim
                .agent_as::<grunt::Profiler>(id)
                .expect("registered")
                .is_done()
            {
                break;
            }
            assert!(sim.now() < SimTime::from_secs(3_600), "no convergence");
        }
        let outcome = sim
            .agent_as::<grunt::Profiler>(id)
            .expect("registered")
            .outcome()
            .expect("done")
            .clone();
        (outcome.v_sat.clone(), outcome.groups.groups().to_vec())
    };
    assert_eq!(run(3), run(3), "same seed, same profile");
}
