//! Validates the Monitor module's blackbox estimators against white-box
//! ground truth (the Fig 8 argument): the attacker's `P_MB` estimate —
//! last completion minus first completion within a burst — must track the
//! true millibottleneck length the burst created, conservatively.

use callgraph::{RequestTypeId, ServiceId, ServiceSpec, TopologyBuilder};
use grunt::BurstObservation;
use microsim::{Agent, Origin, Response, SimConfig, SimCtx, Simulation};
use simnet::{SimDuration, SimTime};
use telemetry::find_millibottlenecks;

/// An instant-volley burst agent that tracks its own observation.
struct VolleyBurst {
    rt: RequestTypeId,
    volume: u32,
    obs: Option<BurstObservation>,
}

impl Agent for VolleyBurst {
    fn start(&mut self, ctx: &mut SimCtx<'_>) {
        let mut obs = BurstObservation::new(self.rt, ctx.now(), self.volume);
        for i in 0..self.volume {
            let token = ctx.submit(self.rt, Origin::attack(1000 + i, u64::from(i)));
            obs.track(token);
        }
        self.obs = Some(obs);
    }

    fn on_response(&mut self, _ctx: &mut SimCtx<'_>, response: &Response) {
        if let Some(obs) = &mut self.obs {
            obs.record(response);
        }
    }
}

#[test]
fn pmb_estimate_tracks_white_box_bottleneck_length() {
    // One bottleneck service with known capacity: 1 core at 10 ms demand
    // = 100 req/s. An instant volley of V requests saturates it for
    // V * 10 ms.
    let mut b = TopologyBuilder::new();
    let gw = b.add_service(
        ServiceSpec::new("gw")
            .threads(4096)
            .cores(8)
            .blockable(false)
            .demand_cv(0.0),
    );
    let svc = b.add_service(ServiceSpec::new("svc").threads(512).cores(1).demand_cv(0.0));
    b.add_request_type(
        "r",
        vec![
            (gw, SimDuration::from_micros(100)),
            (svc, SimDuration::from_millis(10)),
        ],
    );
    let topo = b.build();

    for volume in [20u32, 35, 48] {
        let mut sim = Simulation::new(topo.clone(), SimConfig::default());
        sim.run_until(SimTime::from_secs(1));
        let id = sim.add_agent(Box::new(VolleyBurst {
            rt: RequestTypeId::new(0),
            volume,
            obs: None,
        }));
        sim.run_until(SimTime::from_secs(10));

        // White-box truth.
        let mbs = find_millibottlenecks(sim.metrics(), 0.99);
        let true_len = mbs
            .iter()
            .filter(|m| m.service == ServiceId::new(1))
            .map(|m| m.length().as_millis_f64())
            .fold(0.0, f64::max);

        // Attacker's estimate.
        let agent = sim.agent_as::<VolleyBurst>(id).expect("registered");
        let obs = agent.obs.as_ref().expect("started");
        assert!(obs.is_complete(), "volley of {volume} must complete");
        let est = obs.pmb_estimate().expect("complete").as_millis_f64();

        // The volley keeps the core busy for ~volume * 10 ms; the estimate
        // undercounts by roughly one service time (it misses the first
        // request's processing — the conservative direction the paper
        // notes) and the white-box detector quantises to 100 ms windows.
        let expected = f64::from(volume) * 10.0;
        assert!(
            (est - expected).abs() <= 15.0,
            "volume {volume}: estimate {est:.0} ms vs analytic {expected:.0} ms"
        );
        assert!(
            (true_len - expected).abs() <= 100.0,
            "volume {volume}: white-box {true_len:.0} ms vs analytic {expected:.0} ms"
        );
        assert!(
            est <= true_len + 100.0,
            "estimate must be conservative up to window quantisation"
        );
    }
}

#[test]
fn damage_estimate_matches_worst_queuing() {
    // The burst's mean RT approximates the damage a victim arriving
    // mid-bottleneck experiences: about half the drain time plus base RT.
    let mut b = TopologyBuilder::new();
    let gw = b.add_service(
        ServiceSpec::new("gw")
            .threads(4096)
            .cores(8)
            .blockable(false)
            .demand_cv(0.0),
    );
    let svc = b.add_service(ServiceSpec::new("svc").threads(512).cores(1).demand_cv(0.0));
    b.add_request_type(
        "r",
        vec![
            (gw, SimDuration::from_micros(100)),
            (svc, SimDuration::from_millis(10)),
        ],
    );
    let mut sim = Simulation::new(b.build(), SimConfig::default());
    sim.run_until(SimTime::from_secs(1));
    let id = sim.add_agent(Box::new(VolleyBurst {
        rt: RequestTypeId::new(0),
        volume: 40,
        obs: None,
    }));
    sim.run_until(SimTime::from_secs(10));
    let agent = sim.agent_as::<VolleyBurst>(id).expect("registered");
    let obs = agent.obs.as_ref().expect("started");
    let avg = obs.avg_rt_ms().expect("complete");
    // Volley of 40 at 10 ms each: request i waits ~i*10 ms, so the mean is
    // ~(39/2)*10 + 10 ms service + ~1 ms overheads ≈ 206 ms.
    assert!(
        (avg - 206.0).abs() < 12.0,
        "mean burst RT {avg:.0} ms vs analytic ~206 ms"
    );
}
