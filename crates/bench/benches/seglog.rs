//! Copy-on-write log & index microbenches: the seal path of `SegLog::push`
//! (including the spine copy a fork forces), `Csr::build`'s counting sort,
//! and the `SegSamples` k-way percentile merge against the flat
//! `SampleSet` sort it must stay bit-identical to.

// criterion_group! expands to an undocumented fn; nothing to doc by hand.
#![allow(missing_docs)]
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use microsim::seglog::SEG_CAP;
use microsim::{Csr, SegLog};
use simnet::{SampleSet, SegSamples};

/// Pushes crossing four seal boundaries plus a short tail, so the measured
/// mean covers the common in-tail push and the amortized seal (tail
/// allocation + spine push).
const PUSHES: u64 = 4 * SEG_CAP as u64 + 7;

fn seglog_push(c: &mut Criterion) {
    let mut g = c.benchmark_group("seglog_push");
    // Uniquely-owned log: seals push onto the spine in place.
    g.bench_function("unshared_4seals", |b| {
        b.iter_batched(
            || SegLog::new(SEG_CAP),
            |mut log| {
                for i in 0..PUSHES {
                    log.push(i);
                }
                log.len()
            },
            BatchSize::SmallInput,
        );
    });
    // Log whose spine is shared with a live fork: the first seal must copy
    // the spine (`Arc::make_mut`) before pushing — the COW cost a
    // checkpoint adds to the parent's write path.
    g.bench_function("forked_4seals", |b| {
        b.iter_batched(
            || {
                let mut log = SegLog::new(SEG_CAP);
                for i in 0..(4 * SEG_CAP as u64) {
                    log.push(i);
                }
                let fork = log.clone();
                (log, fork)
            },
            |(mut log, fork)| {
                for i in 0..PUSHES {
                    log.push(i);
                }
                (log.len(), fork.len())
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn csr_build(c: &mut Criterion) {
    // One segment's worth of records over a paper-scale key domain (64
    // distinct source IPs): the counting sort run at every seal.
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    let keys: Vec<u32> = (0..SEG_CAP)
        .map(|_| (bench::xorshift64(&mut x) % 64) as u32)
        .collect();
    c.bench_function("csr_build_1seg_64keys", |b| {
        b.iter(|| Csr::build(&keys, |&k| k as usize));
    });
}

fn percentile_merge(c: &mut Criterion) {
    // 16 sealed segments of presorted samples: SegSamples answers p99 by
    // k-way merging to the rank, SampleSet by sorting the flat vector.
    let n = 16 * 1024usize;
    let mut x: u64 = 0x243F_6A88_85A3_08D3;
    let vals: Vec<f64> = (0..n)
        .map(|_| bench::xorshift64(&mut x) as f64 / u64::MAX as f64)
        .collect();
    let mut seg = SegSamples::default();
    let mut flat = SampleSet::new();
    for &v in &vals {
        seg.push(v);
        flat.push(v);
    }
    let mut g = c.benchmark_group("percentile_16k");
    // iter_batched on fresh clones: both types cache sort work, so timing a
    // reused value would measure the cache hit, not the merge/sort.
    g.bench_function("seg_samples_kway", |b| {
        b.iter_batched(
            || seg.clone(),
            |mut s| s.percentile(0.99),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("sample_set_sort", |b| {
        b.iter_batched(
            || flat.clone(),
            |mut s| s.percentile(0.99),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, seglog_push, csr_build, percentile_merge);
criterion_main!(benches);
