//! Analytic-model benches: the Section III equations, candidate ranking
//! and the attacker-side estimators — the hot path of the Commander's
//! per-burst feedback.

// criterion_group! expands to an undocumented fn; nothing to doc by hand.
#![allow(missing_docs)]
use callgraph::{DependencyGroups, ExecutionPath, RequestTypeId, ServiceId};
use criterion::{criterion_group, criterion_main, Criterion};
use grunt::{BurstObservation, ScalarKalman};
use microsim::Response;
use queueing::{
    cross_tier_queue, damage_latency, millibottleneck_length, rank_candidates, BurstPlan,
    PathParams, StageParams,
};
use simnet::{SimDuration, SimTime};

fn equations(c: &mut Criterion) {
    let hub = StageParams::symmetric(32.0, 750.0, 180.0);
    let mid = StageParams::symmetric(20.0, 400.0, 90.0);
    let bn = StageParams::symmetric(20.0, 260.0, 80.0);
    let path = PathParams::new(vec![hub, mid, bn], 2, 0);
    let burst = BurstPlan::new(500.0, 0.4);
    c.bench_function("model/eq3_eq4_eq5_chain", |b| {
        b.iter(|| {
            let q = cross_tier_queue(burst, &path);
            let d = damage_latency(q.max(1.0), 260.0);
            let p = millibottleneck_length(burst, 260.0, 80.0, 260.0);
            (q, d, p)
        });
    });
}

fn ranking(c: &mut Criterion) {
    // A 12-path dependency group (App.1 scale).
    let ms = SimDuration::from_millis;
    let paths: Vec<ExecutionPath> = (0..12)
        .map(|i| {
            ExecutionPath::from_chain(
                RequestTypeId::new(i),
                vec![
                    (ServiceId::new(0), ms(1)),
                    (ServiceId::new(1 + i % 3), ms(5)),
                    (ServiceId::new(10 + i), ms(12)),
                ],
            )
        })
        .collect();
    let groups = DependencyGroups::from_ground_truth(&paths);
    let members: Vec<RequestTypeId> = paths
        .iter()
        .map(callgraph::ExecutionPath::request_type)
        .collect();
    c.bench_function("model/rank_candidates_12paths", |b| {
        b.iter(|| rank_candidates(&members, &groups, |rt| 100.0 + rt.index() as f64));
    });
}

fn estimators(c: &mut Criterion) {
    c.bench_function("model/burst_observation_400resp", |b| {
        b.iter(|| {
            let mut obs = BurstObservation::new(RequestTypeId::new(0), SimTime::ZERO, 400);
            for t in 0..400u64 {
                obs.track(t);
            }
            for t in 0..400u64 {
                obs.record(&Response {
                    token: t,
                    tag: 0,
                    request_type: RequestTypeId::new(0),
                    submitted_at: SimTime::from_millis(t),
                    completed_at: SimTime::from_millis(t + 80 + (t % 37)),
                    outcome: microsim::Outcome::Ok,
                });
            }
            (obs.pmb_estimate(), obs.avg_rt_ms())
        });
    });
    c.bench_function("model/kalman_1k_updates", |b| {
        b.iter(|| {
            let mut k = ScalarKalman::new(2_000.0, 40_000.0);
            let mut last = 0.0;
            for i in 0..1_000 {
                last = k.update(400.0 + f64::from(i % 83));
            }
            last
        });
    });
}

criterion_group!(benches, equations, ranking, estimators);
criterion_main!(benches);
