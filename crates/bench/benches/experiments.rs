//! One reduced-scale Criterion bench per reproduced table/figure.
//!
//! Each bench exercises exactly the pipeline of the corresponding `lab`
//! runner — workload generation, profiling or attacking, monitoring and
//! analysis — at a scale small enough for repeated sampling. The full
//! artifacts are regenerated with `cargo run --release -p lab --bin lab`.

// criterion_group! expands to an undocumented fn; nothing to doc by hand.
#![allow(missing_docs)]
use apps::{social_network, UBench, UBenchConfig};
use baselines::{BruteForce, TailAttack, TailAttackConfig};
use bench::BENCH_USERS;
use criterion::{criterion_group, criterion_main, Criterion};
use defense::{CorrelationDefense, Ids, IdsConfig, RateShield};
use grunt::{CampaignConfig, GruntCampaign, Profiler, ProfilerConfig};
use microsim::{AutoScalePolicy, SimConfig, Simulation};
use simnet::{SimDuration, SimTime};
use telemetry::{
    CoarseMonitor, GroundTruth, LatencySeries, LatencySummary, ProfilerScore, Traffic,
};
use workload::{ClosedLoopUsers, PoissonSource, RateTrace};

fn small_sim(seed: u64) -> (apps::SocialNetwork, Simulation) {
    let app = social_network(BENCH_USERS);
    let mut sim = Simulation::new(app.topology().clone(), SimConfig::default().seed(seed));
    sim.add_agent(Box::new(ClosedLoopUsers::new(
        BENCH_USERS,
        app.browsing_model(),
        seed,
    )));
    (app, sim)
}

fn run_profiler(sim: &mut Simulation, seed: u64) -> grunt::ProfilerOutcome {
    let id = sim.add_agent(Box::new(Profiler::new(ProfilerConfig {
        seed,
        ..ProfilerConfig::default()
    })));
    loop {
        let next = sim.now() + SimDuration::from_secs(30);
        sim.run_until(next);
        if sim.agent_as::<Profiler>(id).expect("registered").is_done() {
            break;
        }
    }
    sim.agent_as::<Profiler>(id)
        .expect("registered")
        .outcome()
        .expect("done")
        .clone()
}

/// Fig 1 / Fig 13 / Fig 14 share the attack+timeline pipeline.
fn bench_attack_timelines(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fig1_fig13_fig14_attack_and_timelines", |b| {
        b.iter(|| {
            let (_app, mut sim) = small_sim(1);
            sim.run_until(SimTime::from_secs(10));
            let campaign = GruntCampaign::run(
                &mut sim,
                CampaignConfig::default(),
                SimDuration::from_secs(40),
            );
            // Fig 1: 1 s series; Fig 13: fine series; Fig 14: coarse view.
            let m = sim.metrics();
            let coarse = CoarseMonitor::new(m, SimDuration::from_secs(1));
            let rt =
                LatencySeries::compute(m, Traffic::Legit, SimDuration::from_secs(1), sim.now());
            (
                campaign.report.bursts.len(),
                coarse.series(callgraph::ServiceId::new(1)).len(),
                rt.peak_ms(),
            )
        });
    });
    g.finish();
}

/// Tables I/III: one cloud setting end to end.
fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("table1_one_setting", |b| {
        b.iter(|| {
            let (_app, mut sim) = small_sim(2);
            sim.run_until(SimTime::from_secs(20));
            let base = LatencySummary::compute(
                sim.metrics(),
                Traffic::Legit,
                None,
                SimTime::from_secs(5),
                SimTime::from_secs(20),
            );
            let campaign = GruntCampaign::run(
                &mut sim,
                CampaignConfig::default(),
                SimDuration::from_secs(40),
            );
            let att = LatencySummary::compute(
                sim.metrics(),
                Traffic::Legit,
                None,
                campaign.attack_started + SimDuration::from_secs(10),
                sim.now(),
            );
            (base.avg_ms, att.avg_ms, campaign.bots_used)
        });
    });
    g.finish();
}

/// Fig 11 / Fig 12 / Fig 16 / Table IV share the profiling pipeline.
fn bench_profiling(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fig11_fig12_profile_social_network", |b| {
        b.iter(|| {
            let (app, mut sim) = small_sim(3);
            sim.run_until(SimTime::from_secs(5));
            let outcome = run_profiler(&mut sim, 3);
            let gt = GroundTruth::from_topology(app.topology());
            let members: Vec<_> = outcome.catalog.iter().map(|(id, _)| *id).collect();
            ProfilerScore::compute(&members, &gt, &outcome.groups).f_score()
        });
    });
    g.bench_function("fig16_table4_profile_ubench_app1", |b| {
        b.iter(|| {
            let app = UBench::generate(UBenchConfig::app1(BENCH_USERS));
            let mut sim = Simulation::new(app.topology().clone(), SimConfig::default().seed(4));
            sim.add_agent(Box::new(ClosedLoopUsers::new(
                BENCH_USERS,
                app.browsing_model(),
                4,
            )));
            sim.run_until(SimTime::from_secs(5));
            let outcome = run_profiler(&mut sim, 4);
            outcome.groups.groups().len()
        });
    });
    g.finish();
}

/// Fig 15: bursty trace with auto-scaling.
fn bench_fig15(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fig15_bursty_trace_autoscale", |b| {
        b.iter(|| {
            let app = social_network(4 * BENCH_USERS);
            let mut sim = Simulation::new(
                app.topology().clone(),
                SimConfig::default()
                    .seed(5)
                    .autoscale(AutoScalePolicy::paper_default()),
            );
            let trace = RateTrace::large_variation(
                5,
                SimDuration::from_secs(300),
                100.0,
                4.0 * BENCH_USERS as f64 / 7.0,
            );
            sim.add_agent(Box::new(PoissonSource::new(
                app.request_mix(),
                trace,
                SimTime::from_secs(60),
                5,
            )));
            sim.run_until(SimTime::from_secs(60));
            sim.metrics().scaling_actions().len()
        });
    });
    g.finish();
}

/// §VII ablations: baselines plus the detection stack.
fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("ablations_tail_and_flood_with_detection", |b| {
        b.iter(|| {
            let (app, mut sim) = small_sim(6);
            sim.run_until(SimTime::from_secs(10));
            let target = app
                .topology()
                .request_type_by_name("compose-rich-post")
                .expect("known");
            sim.add_agent(Box::new(TailAttack::new(TailAttackConfig::comparable(
                target,
                SimTime::from_secs(40),
            ))));
            sim.add_agent(Box::new(BruteForce::new(
                app.request_mix(),
                300.0,
                100,
                SimTime::from_secs(40),
                6,
            )));
            sim.run_until(SimTime::from_secs(40));
            let m = sim.metrics();
            let ids = Ids::new(IdsConfig::default()).analyze(m);
            let blocked = RateShield::paper_default().blocked_count(m);
            let corr = CorrelationDefense::default().analyze(m, sim.now());
            (ids.alerts().len(), blocked, corr.flagged_sessions().len())
        });
    });
    g.finish();
}

/// The parallel sweep executor vs the serial loop, on four independent
/// reduced-scale simulation cells (the `lab --jobs` fast path).
fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    let cells: Vec<u64> = vec![10, 11, 12, 13];
    let cell = |seed: u64| {
        let (_app, mut sim) = small_sim(seed);
        sim.run_until(SimTime::from_secs(8));
        sim.metrics().request_log().len()
    };
    g.bench_function("four_cells_serial", |b| {
        b.iter(|| lab::sweep::map_cells(1, &cells, |_, s| cell(*s)));
    });
    g.bench_function("four_cells_jobs4", |b| {
        b.iter(|| lab::sweep::map_cells(4, &cells, |_, s| cell(*s)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_attack_timelines,
    bench_table1,
    bench_profiling,
    bench_fig15,
    bench_ablations,
    bench_sweep
);
criterion_main!(benches);
