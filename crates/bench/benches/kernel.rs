//! Simulation-kernel microbenches: the event loop, RNG streams and the
//! statistics collectors everything else is built on.

// criterion_group! expands to an undocumented fn; nothing to doc by hand.
#![allow(missing_docs)]
use callgraph::{RequestTypeId, ServiceSpec, TopologyBuilder};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use microsim::agents::FixedRate;
use microsim::{SimConfig, Simulation};
use simnet::{EventQueue, HeapEventQueue, RngStream, SampleSet, SimDuration, SimTime, Welford};
use workload::{BrowsingModel, ClosedLoopUsers};

/// Bulk pattern: push 10k timestamped events, then drain.
macro_rules! push_pop_10k {
    ($queue:expr) => {{
        let mut q = $queue;
        for i in 0..10_000u64 {
            q.push(SimTime::from_micros(i * 37 % 100_000), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        sum
    }};
}

/// Hold-model pattern (the kernel's steady state): keep a paper-cell-scale
/// pending population, pop the earliest and immediately schedule a
/// successor at an offset drawn from the kernel's event mixture, then
/// drain. This is the headline wheel-vs-heap comparison.
macro_rules! hold_model {
    ($queue:expr) => {{
        let mut q = $queue;
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for i in 0..bench::HOLD_PENDING {
            let r = bench::xorshift64(&mut x);
            q.push(SimTime::from_micros(bench::kernel_offset_micros(r)), i);
        }
        let mut sum = 0u64;
        for i in 0..50_000u64 {
            let (t, v) = q.pop().expect("pending population never drains");
            sum = sum.wrapping_add(v);
            let r = bench::xorshift64(&mut x);
            q.push(
                t + SimDuration::from_micros(1 + bench::kernel_offset_micros(r)),
                i,
            );
        }
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        sum
    }};
}

fn event_queue(c: &mut Criterion) {
    // Timing wheel (the kernel's queue) vs the reference binary heap, on
    // the bulk and steady-state (hold model) access patterns.
    let mut g = c.benchmark_group("queue");
    g.bench_function("wheel_push_pop_10k", |b| {
        b.iter_batched(
            || EventQueue::<u64>::with_capacity(10_240),
            |q| push_pop_10k!(q),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("heap_push_pop_10k", |b| {
        b.iter_batched(
            || HeapEventQueue::<u64>::with_capacity(10_240),
            |q| push_pop_10k!(q),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("wheel_hold_model", |b| {
        b.iter(|| hold_model!(EventQueue::<u64>::with_capacity(1_024)));
    });
    g.bench_function("heap_hold_model", |b| {
        b.iter(|| hold_model!(HeapEventQueue::<u64>::with_capacity(1_024)));
    });
    g.finish();
}

fn rng_streams(c: &mut Criterion) {
    c.bench_function("kernel/rng_exp_draws_10k", |b| {
        let mut rng = RngStream::from_label(1, "bench");
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += rng.exp(7.0);
            }
            acc
        });
    });
}

fn stats_collectors(c: &mut Criterion) {
    c.bench_function("kernel/welford_10k", |b| {
        b.iter(|| {
            let mut w = Welford::new();
            for i in 0..10_000 {
                w.push(f64::from(i % 997));
            }
            w.mean()
        });
    });
    c.bench_function("kernel/sample_set_percentile_10k", |b| {
        b.iter_batched(
            || {
                let mut s = SampleSet::new();
                for i in 0..10_000 {
                    s.push(f64::from((i * 31) % 9973));
                }
                s
            },
            |mut s| s.percentile(0.95),
            BatchSize::SmallInput,
        );
    });
}

fn chain_topology() -> callgraph::Topology {
    let mut b = TopologyBuilder::new();
    let gw = b.add_service(ServiceSpec::new("gw").threads(256).cores(4).demand_cv(0.1));
    let api = b.add_service(ServiceSpec::new("api").threads(64).cores(2).demand_cv(0.1));
    let db = b.add_service(ServiceSpec::new("db").threads(32).cores(2).demand_cv(0.1));
    b.add_request_type(
        "r",
        vec![
            (gw, SimDuration::from_micros(300)),
            (api, SimDuration::from_millis(2)),
            (db, SimDuration::from_millis(4)),
        ],
    );
    b.build()
}

fn simulation_throughput(c: &mut Criterion) {
    // How fast the platform simulates one second of 500 req/s traffic
    // through a 3-stage chain (the core event cascade).
    c.bench_function("kernel/simulate_1s_500rps_3stage", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(chain_topology(), SimConfig::default().access_log(false));
            sim.add_agent(Box::new(FixedRate::new(
                RequestTypeId::new(0),
                SimDuration::from_micros(2_000),
                500,
            )));
            sim.run_until(SimTime::from_secs(1));
            sim.metrics().request_log().len()
        });
    });
    // Closed-loop population wake/submit/response cycle.
    c.bench_function("kernel/simulate_5s_closed_loop_200users", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(chain_topology(), SimConfig::default().access_log(false));
            let model = BrowsingModel::uniform([RequestTypeId::new(0)]);
            sim.add_agent(Box::new(
                ClosedLoopUsers::new(200, model, 3).with_think_time(0.5),
            ));
            sim.run_until(SimTime::from_secs(5));
            sim.metrics().request_log().len()
        });
    });
}

criterion_group!(
    benches,
    event_queue,
    rng_streams,
    stats_collectors,
    simulation_throughput
);
criterion_main!(benches);
