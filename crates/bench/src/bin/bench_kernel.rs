//! Machine-readable kernel benchmark: measures the fast-path event queue
//! against the reference binary heap, kernel steady-state throughput, and
//! the parallel sweep speedup, then writes `BENCH_kernel.json`.
//!
//! ```text
//! cargo run --release -p bench --bin bench_kernel [-- --out <path> --quick --check]
//! ```
//!
//! `--quick` skips the Table I slices (the slowest sections). `--check`
//! runs only the correctness smoke test — a warm-snapshot forked campaign
//! must be byte-identical to a cold one, batched RNG draws must match the
//! per-call sequence, and the indexed telemetry/defense queries must match
//! their naive full-scan ground truths — writing no JSON and exiting
//! nonzero on any mismatch (CI runs this). All timing uses `std::time::Instant`; output
//! goes to the JSON file and stdout.

use bench::{kernel_offset_micros, xorshift64, HOLD_PENDING};
use callgraph::{RequestTypeId, ServiceSpec, TopologyBuilder};
use microsim::agents::FixedRate;
use microsim::{
    BreakerPolicy, Metrics, Origin, ResilienceConfig, ResiliencePolicy, RetryPolicy, SimConfig,
    Simulation,
};
use simnet::{EventQueue, HeapEventQueue, SimDuration, SimTime};
use std::time::Instant;
use telemetry::{LatencySummary, Traffic};

/// Counting global allocator (only with `--features alloc-count`): wraps the
/// system allocator and counts `alloc`/`realloc` calls so the steady-state
/// section can report allocations per simulated request.
#[cfg(feature = "alloc-count")]
mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Total `alloc` + `realloc` calls since process start.
    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// The system allocator plus a relaxed counter bump per allocation.
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

/// Hold-model program (the kernel's steady-state access pattern): keep a
/// paper-cell-scale pending population, pop the earliest and reschedule a
/// successor at an offset drawn from the kernel's event mixture, then
/// drain. Mirrors the `queue/*_hold_model` Criterion benches.
const HOLD_OPS: u64 = 50_000;

macro_rules! hold_program {
    ($queue:expr, $pending:expr) => {{
        let mut q = $queue;
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for i in 0..$pending {
            let r = xorshift64(&mut x);
            q.push(SimTime::from_micros(kernel_offset_micros(r)), i);
        }
        let mut sum = 0u64;
        for i in 0..HOLD_OPS {
            let (t, v) = q.pop().expect("pending population never drains");
            sum = sum.wrapping_add(v);
            let r = xorshift64(&mut x);
            q.push(t + SimDuration::from_micros(1 + kernel_offset_micros(r)), i);
        }
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        sum
    }};
}

/// Pending population of the deep-wheel regime: what a 100k+ user cell
/// would park on the wheel *without* the think-timer arena (one timer per
/// sleeping user plus in-flight request events).
const DEEP_PENDING: u64 = 131_072;

/// Runs `f` repeatedly for at least `budget_ms` per round and returns the
/// best round's mean ns per call (best-of-3 damps scheduler noise on
/// shared machines).
fn time_ns<F: FnMut() -> u64>(mut f: F, budget_ms: u64) -> f64 {
    std::hint::black_box(f()); // warm up
    let budget = std::time::Duration::from_millis(budget_ms);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let started = Instant::now();
        let mut iters = 0u64;
        while started.elapsed() < budget {
            std::hint::black_box(f());
            iters += 1;
        }
        best = best.min(started.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

fn chain_topology() -> callgraph::Topology {
    let mut b = TopologyBuilder::new();
    let gw = b.add_service(ServiceSpec::new("gw").threads(256).cores(4).demand_cv(0.1));
    let api = b.add_service(ServiceSpec::new("api").threads(64).cores(2).demand_cv(0.1));
    let db = b.add_service(ServiceSpec::new("db").threads(32).cores(2).demand_cv(0.1));
    b.add_request_type(
        "r",
        vec![
            (gw, SimDuration::from_micros(300)),
            (api, SimDuration::from_millis(2)),
            (db, SimDuration::from_millis(4)),
        ],
    );
    b.build()
}

/// One simulated second of 500 req/s through a 3-stage chain; returns the
/// number of completed requests.
fn kernel_steady_state() -> u64 {
    let mut sim = Simulation::new(chain_topology(), SimConfig::default().access_log(false));
    sim.add_agent(Box::new(FixedRate::new(
        RequestTypeId::new(0),
        SimDuration::from_micros(2_000),
        500,
    )));
    sim.run_until(SimTime::from_secs(1));
    sim.metrics().request_log().len() as u64
}

/// Runs the 3-stage chain at 400 req/s (plus a 40 req/s attack source, so
/// the request log carries both origins) for `secs` simulated seconds and
/// returns the warm simulation. The rate keeps every stage below
/// saturation (db: 440 · 4 ms / 2 cores = 0.88), so the in-flight
/// population — and with it the live state a fork must copy — stays
/// bounded no matter how long the prefix runs.
fn warm_sim(secs: u64) -> Simulation {
    let mut sim = Simulation::new(chain_topology(), SimConfig::default().access_log(false));
    sim.add_agent(Box::new(FixedRate::new(
        RequestTypeId::new(0),
        SimDuration::from_micros(2_500),
        400 * secs,
    )));
    sim.add_agent(Box::new(
        FixedRate::new(
            RequestTypeId::new(0),
            SimDuration::from_micros(25_000),
            40 * secs,
        )
        .with_origin(Origin::attack(1, 1)),
    ));
    sim.run_until(SimTime::from_secs(secs));
    sim
}

/// Mostly-legit traffic mix for the defense-analytics section: 64 browsers
/// on distinct IPs/sessions pacing one request per 3.2 s (above the IDS
/// inter-request threshold, so they trip no interval rule) plus one slow
/// attack source. Access logging stays on — the IDS and shield read it.
fn defense_sim(secs: u64) -> Simulation {
    let mut sim = Simulation::new(chain_topology(), SimConfig::default());
    let legit_interval = SimDuration::from_micros(3_200_000);
    let per_agent = secs * 1_000_000 / 3_200_000;
    for i in 0..64u32 {
        sim.add_agent(Box::new(
            FixedRate::new(RequestTypeId::new(0), legit_interval, per_agent)
                .with_origin(Origin::legit(0x0A00_0000 + i, u64::from(i))),
        ));
    }
    sim.add_agent(Box::new(
        FixedRate::new(
            RequestTypeId::new(0),
            SimDuration::from_millis(500),
            2 * secs,
        )
        .with_origin(Origin::attack(0xBAD, 0xBAD)),
    ));
    sim.run_until(SimTime::from_secs(secs));
    sim
}

/// What a pre-COW `Metrics` clone had to do: copy every record of every log
/// into freshly allocated storage. The baseline for the fork-cost section.
fn deep_copy_metrics(m: &Metrics) -> u64 {
    let requests: Vec<_> = m.request_log().iter().copied().collect();
    let services: Vec<_> = m.windows().flat_map(|row| row.iter().copied()).collect();
    let network: Vec<_> = m.network_windows().copied().collect();
    (requests.len() + services.len() + network.len()) as u64
}

/// The smoke test behind `--check`: asserts the two invariants this crate's
/// numbers rely on, fast enough for CI.
fn check() {
    eprintln!("== check: batched RNG draws match the per-call sequence ==");
    let mut per_call = simnet::RngStream::from_label(7, "bench/check");
    let mut batched = simnet::RngStream::from_label(7, "bench/check");
    let mut buf = [0.0f64; 32];
    batched.fill_standard_normal(&mut buf);
    for (i, z) in buf.iter().enumerate() {
        let expected = per_call.lognormal_mean_cv(4.0, 0.3);
        let got = simnet::lognormal_mean_cv_from_z(4.0, 0.3, *z);
        assert!(
            expected == got,
            "draw {i}: per-call {expected} != batched {got}"
        );
    }

    eprintln!("== check: forked campaign is byte-identical to cold ==");
    let scenario = lab::Scenario::social_network(
        "check",
        microsim::PlatformProfile::ec2(),
        1_500,
        1_500,
        0xC4EC,
    );
    let baseline = SimDuration::from_secs(20);
    let attack = SimDuration::from_secs(60);
    let forked = lab::AttackRun::execute_opts(
        &scenario,
        grunt::CampaignConfig::default(),
        baseline,
        attack,
        true,
    );
    let cold = lab::AttackRun::execute_opts(
        &scenario,
        grunt::CampaignConfig::default(),
        baseline,
        attack,
        false,
    );
    let forked_report = comparison_report(&forked);
    let cold_report = comparison_report(&cold);
    if forked_report != cold_report {
        print_first_divergence(&forked_report, &cold_report);
        panic!(
            "forked campaign diverges from cold re-simulation (first divergent report line above)"
        );
    }

    eprintln!("== check: indexed latency summaries match the naive scan ==");
    let m = forked.sim.metrics();
    let horizon = SimTime::from_secs(120);
    for traffic in [Traffic::All, Traffic::Legit, Traffic::Attack] {
        for request_type in [
            None,
            Some(RequestTypeId::new(0)),
            Some(RequestTypeId::new(3)),
        ] {
            for (from, to) in [
                (SimTime::ZERO, horizon),
                (SimTime::from_secs(25), SimTime::from_secs(45)),
                (SimTime::from_millis(10_500), SimTime::from_millis(11_750)),
            ] {
                let fast = LatencySummary::compute(m, traffic, request_type, from, to);
                let naive = LatencySummary::compute_naive(m, traffic, request_type, from, to);
                assert!(
                    fast == naive,
                    "indexed summary diverges from naive ({traffic:?}, {request_type:?}, \
                     [{from}, {to})): {fast:?} != {naive:?}"
                );
            }
        }
    }
    eprintln!("== check: explicitly-disabled resilience is byte-identical to none ==");
    // The tentpole invariant of the resilience layer: configuring it with
    // every policy off must leave the kernel bit-identical to a config
    // that never mentions resilience — same metrics, same RNG positions,
    // same pending events. A closed-loop cell exercises the submit path
    // (where deadline arming, breaker checks, and queue bounds branch)
    // thousands of times.
    let resilience_cell = |config: SimConfig| {
        let app = apps::social_network(2_000);
        let mut sim = Simulation::new(app.topology().clone(), config.access_log(false));
        sim.add_agent(Box::new(workload::ClosedLoopUsers::new(
            2_000,
            app.browsing_model(),
            simnet::derive_seed(0xAB1E, "bench/resilience-off"),
        )));
        sim.run_until(SimTime::from_secs(5));
        sim
    };
    let plain = resilience_cell(SimConfig::default().seed(0xAB1E));
    let disabled = resilience_cell(
        SimConfig::default()
            .seed(0xAB1E)
            .resilience(ResilienceConfig::uniform(ResiliencePolicy::disabled())),
    );
    assert!(
        plain.metrics() == disabled.metrics(),
        "disabled resilience config must record byte-identical metrics"
    );
    assert!(
        plain.rng_fingerprint() == disabled.rng_fingerprint(),
        "disabled resilience config must leave every RNG stream untouched"
    );
    assert!(
        plain.pending_events() == disabled.pending_events(),
        "disabled resilience config must schedule no extra wheel events"
    );

    eprintln!("== check: indexed defense analytics match the naive scans ==");
    let ids = defense::Ids::new(defense::IdsConfig::default());
    let shield = defense::RateShield::paper_default();
    for (from, to) in [
        (SimTime::ZERO, SimTime::FAR_FUTURE),
        (SimTime::from_secs(25), SimTime::from_secs(45)),
        (SimTime::from_millis(10_500), SimTime::from_millis(11_750)),
        (SimTime::from_secs(70), SimTime::from_secs(70)),
    ] {
        assert!(
            ids.analyze_window(m, from, to) == ids.analyze_naive(m, from, to),
            "indexed IDS report diverges from naive ([{from}, {to}))"
        );
        assert!(
            shield.analyze_window(m, from, to) == shield.analyze_naive(m, from, to),
            "indexed shield verdicts diverge from naive ([{from}, {to}))"
        );
    }
    eprintln!("check OK");
}

/// Renders a run's comparable end state as a line-oriented report — one
/// metrics field per line plus the RNG fingerprint and pending-event count
/// — so a determinism failure can name the exact quantity that diverged.
fn comparison_report(run: &lab::AttackRun) -> String {
    format!(
        "{:#?}\nrng_fingerprint: {:?}\npending_events: {}\n",
        run.sim.metrics(),
        run.sim.rng_fingerprint(),
        run.sim.pending_events()
    )
}

/// Prints the first line where the forked and cold reports diverge.
fn print_first_divergence(forked: &str, cold: &str) {
    let (mut f, mut c) = (forked.lines(), cold.lines());
    let mut line = 0usize;
    loop {
        line += 1;
        match (f.next(), c.next()) {
            (Some(a), Some(b)) if a == b => {}
            (None, None) => {
                eprintln!("reports compare unequal but no line differs (encoding?)");
                return;
            }
            (a, b) => {
                eprintln!("first divergent report line ({line}):");
                eprintln!("  forked: {}", a.unwrap_or("<end of report>"));
                eprintln!("  cold:   {}", b.unwrap_or("<end of report>"));
                return;
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        check();
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernel.json".to_string());

    eprintln!("== event queue: timing wheel vs binary heap (hold model) ==");
    let wheel_ns = time_ns(
        || hold_program!(EventQueue::<u64>::with_capacity(1_024), HOLD_PENDING),
        500,
    );
    let heap_ns = time_ns(
        || hold_program!(HeapEventQueue::<u64>::with_capacity(1_024), HOLD_PENDING),
        500,
    );
    let ops = (HOLD_PENDING + HOLD_OPS) as f64;
    let queue_speedup = heap_ns / wheel_ns;
    eprintln!(
        "   wheel {:.1} ns/op, heap {:.1} ns/op, speedup {queue_speedup:.2}x",
        wheel_ns / ops,
        heap_ns / ops
    );

    eprintln!("== deep wheel: {DEEP_PENDING} pending events (un-arena'd mega-cell) ==");
    let deep_wheel_ns = time_ns(
        || hold_program!(EventQueue::<u64>::with_capacity(1_024), DEEP_PENDING),
        500,
    );
    let deep_heap_ns = time_ns(
        || hold_program!(HeapEventQueue::<u64>::with_capacity(1_024), DEEP_PENDING),
        500,
    );
    let deep_ops = (DEEP_PENDING + HOLD_OPS) as f64;
    let deep_speedup = deep_heap_ns / deep_wheel_ns;
    eprintln!(
        "   wheel {:.1} ns/op, heap {:.1} ns/op, speedup {deep_speedup:.2}x",
        deep_wheel_ns / deep_ops,
        deep_heap_ns / deep_ops
    );

    eprintln!("== kernel steady state (1 sim-second, 500 req/s, 3-stage chain) ==");
    let mut requests = 0u64;
    let kernel_ns = time_ns(
        || {
            requests = kernel_steady_state();
            requests
        },
        2_000,
    );
    let req_per_sec = requests as f64 / (kernel_ns / 1e9);
    let sim_speed = 1.0 / (kernel_ns / 1e9);
    eprintln!("   {req_per_sec:.0} requests/s simulated ({sim_speed:.0}x real time)");

    eprintln!("== service-demand RNG: per-call vs batched draws ==");
    const DRAWS: usize = 4_096;
    let per_call_ns = time_ns(
        || {
            let mut rng = simnet::RngStream::from_label(11, "bench/demand");
            let mut acc = 0.0f64;
            for _ in 0..DRAWS {
                acc += rng.lognormal_mean_cv(4.0, 0.3);
            }
            acc.to_bits()
        },
        200,
    ) / DRAWS as f64;
    let batched_ns = time_ns(
        || {
            let mut rng = simnet::RngStream::from_label(11, "bench/demand");
            let mut buf = [0.0f64; 32];
            let mut acc = 0.0f64;
            for _ in 0..DRAWS / 32 {
                rng.fill_standard_normal(&mut buf);
                for z in buf {
                    acc += simnet::lognormal_mean_cv_from_z(4.0, 0.3, z);
                }
            }
            acc.to_bits()
        },
        200,
    ) / DRAWS as f64;
    eprintln!(
        "   per-call {per_call_ns:.1} ns/draw, batched {batched_ns:.1} ns/draw, \
         speedup {:.2}x",
        per_call_ns / batched_ns
    );

    eprintln!("== Markov transitions: alias table vs weighted_choice scan ==");
    // The population's per-response transition draw. Same distribution,
    // one uniform per draw either way; the alias table is O(1) in the
    // catalogue size where the inverse-CDF scan is O(outcomes).
    const OUTCOMES: usize = 32;
    let weights: Vec<f64> = (0..OUTCOMES).map(|i| 1.0 + (i % 7) as f64).collect();
    let alias = simnet::AliasTable::new(&weights);
    let alias_ns = time_ns(
        || {
            let mut rng = simnet::RngStream::from_label(13, "bench/markov");
            let mut acc = 0usize;
            for _ in 0..DRAWS {
                acc += alias.sample_with(&mut rng);
            }
            acc as u64
        },
        200,
    ) / DRAWS as f64;
    let scan_ns = time_ns(
        || {
            let mut rng = simnet::RngStream::from_label(13, "bench/markov");
            let mut acc = 0usize;
            for _ in 0..DRAWS {
                acc += rng.weighted_choice(&weights);
            }
            acc as u64
        },
        200,
    ) / DRAWS as f64;
    let alias_speedup = scan_ns / alias_ns;
    eprintln!(
        "   alias {alias_ns:.1} ns/draw, weighted_choice {scan_ns:.1} ns/draw \
         ({OUTCOMES} outcomes), speedup {alias_speedup:.2}x"
    );

    eprintln!("== large population: 100k-user closed-loop cell, flat-arena vs naive twin ==");
    // One SocialNetwork mega-cell driven to `MEGA_SECS` sim-seconds by the
    // flat-arena engine and by its retained naive twin (token HashMap,
    // BTreeMap think buckets, per-call draws). The two runs are
    // byte-identical in every recorded metric — the twin is the
    // correctness baseline the engine's speedup is measured against.
    const MEGA_USERS: usize = 100_000;
    const MEGA_SECS: u64 = 10;
    let app = apps::social_network(MEGA_USERS);
    let build_cell = || {
        Simulation::new(
            app.topology().clone(),
            SimConfig::default().seed(0xCE11).access_log(false),
        )
    };
    let pop_seed = simnet::derive_seed(0xCE11, "bench/megacell");
    let t0 = Instant::now();
    let mut engine_sim = build_cell();
    let engine_id = engine_sim.add_agent(Box::new(workload::ClosedLoopUsers::new(
        MEGA_USERS,
        app.browsing_model(),
        pop_seed,
    )));
    engine_sim.run_until(SimTime::from_secs(MEGA_SECS));
    let engine_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let mut naive_sim = build_cell();
    naive_sim.add_agent(Box::new(workload::ClosedLoopUsersNaive::new(
        MEGA_USERS,
        app.browsing_model(),
        pop_seed,
    )));
    naive_sim.run_until(SimTime::from_secs(MEGA_SECS));
    let naive_secs = t1.elapsed().as_secs_f64();
    assert_eq!(
        engine_sim.metrics(),
        naive_sim.metrics(),
        "flat-arena engine must be byte-identical to the naive twin"
    );
    let mega_requests = engine_sim.metrics().request_log().len();
    let mega_pending = engine_sim.pending_events();
    let mega_buckets = engine_sim
        .agent_as::<workload::ClosedLoopUsers>(engine_id)
        .expect("population registered")
        .pending_think_buckets();
    assert!(
        mega_pending < 10_000,
        "mega-cell must keep pending wheel events under 10k, got {mega_pending}"
    );
    let pop_speedup = naive_secs / engine_secs;
    eprintln!(
        "   engine {engine_secs:.2}s, naive twin {naive_secs:.2}s for {MEGA_SECS} sim-s \
         ({mega_requests} requests, byte-identical), speedup {pop_speedup:.2}x; \
         {mega_pending} pending wheel events ({mega_buckets} think buckets) for {MEGA_USERS} users"
    );

    eprintln!("== metrics fork cost: COW clone vs deep copy, short vs long prefix ==");
    let short = warm_sim(5);
    let long = warm_sim(40);
    let short_requests = short.metrics().request_log().len();
    let long_requests = long.metrics().request_log().len();
    // The COW clone is what Kernel::clone does on every snapshot/fork:
    // sealed log segments are shared by Arc bump, only the bounded mutable
    // tails are copied, so the cost is independent of how long the warm
    // prefix ran.
    let fork_short_ns = time_ns(|| short.metrics().clone().request_log().len() as u64, 300);
    let fork_long_ns = time_ns(|| long.metrics().clone().request_log().len() as u64, 300);
    let deep_long_ns = time_ns(|| deep_copy_metrics(long.metrics()), 300);
    let fork_vs_deep = deep_long_ns / fork_long_ns;
    // The full fork (metrics + agent snapshots + event queue rebuild) is
    // what every warm-start experiment pays per cell. With COW sample
    // stores the cost depends only on the bounded mutable tails, so an
    // 8x-longer warm prefix must fork in (nearly) the same time.
    let snap_short = short.checkpoint().expect("FixedRate supports snapshotting");
    let snap_long = long.checkpoint().expect("FixedRate supports snapshotting");
    let sim_fork_short_ns = time_ns(
        || {
            let fork = Simulation::from_snapshot(&snap_short);
            fork.pending_events() as u64
        },
        300,
    );
    let sim_fork_long_ns = time_ns(
        || {
            let fork = Simulation::from_snapshot(&snap_long);
            fork.pending_events() as u64
        },
        300,
    );
    let fork_ratio = sim_fork_long_ns / sim_fork_short_ns;
    eprintln!(
        "   COW clone {:.1} us ({short_requests} reqs) / {:.1} us ({long_requests} reqs), \
         deep copy {:.1} us, speedup {fork_vs_deep:.1}x; full sim fork {:.1} us (short) / \
         {:.1} us (long), long/short ratio {fork_ratio:.2}",
        fork_short_ns / 1e3,
        fork_long_ns / 1e3,
        deep_long_ns / 1e3,
        sim_fork_short_ns / 1e3,
        sim_fork_long_ns / 1e3
    );

    eprintln!("== analysis window query: indexed vs naive full scan ==");
    let m = long.metrics();
    // The Monitor's shape of query: attack-only latencies over a short
    // window. The posting lists slice straight to the ~9% matching records
    // while the naive path scans and filters the whole log.
    let (q_from, q_to) = (SimTime::from_secs(20), SimTime::from_secs(25));
    assert_eq!(
        LatencySummary::compute(m, Traffic::Attack, None, q_from, q_to),
        LatencySummary::compute_naive(m, Traffic::Attack, None, q_from, q_to),
        "indexed summary must match the naive reference"
    );
    let matching = LatencySummary::compute(m, Traffic::Attack, None, q_from, q_to).count;
    let indexed_ns = time_ns(
        || LatencySummary::compute(m, Traffic::Attack, None, q_from, q_to).count as u64,
        300,
    );
    let naive_ns = time_ns(
        || LatencySummary::compute_naive(m, Traffic::Attack, None, q_from, q_to).count as u64,
        300,
    );
    let query_speedup = naive_ns / indexed_ns;
    eprintln!(
        "   indexed {:.1} us, naive {:.1} us, speedup {query_speedup:.1}x \
         ({matching} of {long_requests} records match)",
        indexed_ns / 1e3,
        naive_ns / 1e3
    );

    eprintln!("== defense window analytics: indexed postings vs naive full scan ==");
    let dsim = defense_sim(1_200);
    let dm = dsim.metrics();
    let entries = dm.access_log().len();
    // A 20 s audit window out of a 20-minute run: <2% selectivity. The
    // indexed paths collate from per-segment IP/session posting lists; the
    // naive ground truths scan and filter every access-log entry.
    let (w_from, w_to) = (SimTime::from_secs(600), SimTime::from_secs(620));
    let w_matching = dm.access_log().count_in(w_from, w_to);
    let ids = defense::Ids::new(defense::IdsConfig::default());
    let shield = defense::RateShield::paper_default();
    assert_eq!(
        ids.analyze_window(dm, w_from, w_to),
        ids.analyze_naive(dm, w_from, w_to),
        "indexed IDS window report must match the naive reference"
    );
    assert_eq!(
        shield.analyze_window(dm, w_from, w_to),
        shield.analyze_naive(dm, w_from, w_to),
        "indexed shield window verdicts must match the naive reference"
    );
    let ids_indexed_ns = time_ns(
        || ids.analyze_window(dm, w_from, w_to).alerts().len() as u64,
        300,
    );
    let ids_naive_ns = time_ns(
        || ids.analyze_naive(dm, w_from, w_to).alerts().len() as u64,
        300,
    );
    let ids_speedup = ids_naive_ns / ids_indexed_ns;
    let shield_indexed_ns = time_ns(|| shield.analyze_window(dm, w_from, w_to).len() as u64, 300);
    let shield_naive_ns = time_ns(|| shield.analyze_naive(dm, w_from, w_to).len() as u64, 300);
    let shield_speedup = shield_naive_ns / shield_indexed_ns;
    eprintln!(
        "   IDS indexed {:.1} us, naive {:.1} us, speedup {ids_speedup:.1}x; \
         shield indexed {:.1} us, naive {:.1} us, speedup {shield_speedup:.1}x \
         ({w_matching} of {entries} entries in window)",
        ids_indexed_ns / 1e3,
        ids_naive_ns / 1e3,
        shield_indexed_ns / 1e3,
        shield_naive_ns / 1e3
    );

    eprintln!("== resilience ablation: overloaded chain, policies off vs on ==");
    // The 3-stage chain driven 60% past the db stage's capacity (800 req/s
    // against 500 req/s of db throughput). With resilience off the wait
    // queues absorb the whole overload; with a 200 ms per-attempt
    // deadline, 3 jittered-backoff attempts, and a 64-entry queue bound,
    // the layer sheds and times out the excess instead. The counters are
    // the machine-readable summary of what the layer did — amplification
    // > 1 shows platform retries adding load, shed_rate the fraction of
    // attempts dropped at full queues.
    const RES_SECS: u64 = 10;
    let overloaded_chain = |config: SimConfig| {
        let mut sim = Simulation::new(chain_topology(), config.access_log(false));
        sim.add_agent(Box::new(FixedRate::new(
            RequestTypeId::new(0),
            SimDuration::from_micros(1_250),
            800 * RES_SECS,
        )));
        sim.run_until(SimTime::from_secs(RES_SECS));
        sim
    };
    let t0 = Instant::now();
    let res_off = overloaded_chain(SimConfig::default());
    let res_off_secs = t0.elapsed().as_secs_f64();
    let active_policy = ResiliencePolicy {
        deadline: Some(SimDuration::from_millis(200)),
        retry: RetryPolicy {
            max_attempts: 3,
            backoff_base: SimDuration::from_millis(20),
            jitter: 0.1,
        },
        breaker: BreakerPolicy::disabled(),
        queue_bound: Some(64),
    };
    let t1 = Instant::now();
    let res_on =
        overloaded_chain(SimConfig::default().resilience(ResilienceConfig::uniform(active_policy)));
    let res_on_secs = t1.elapsed().as_secs_f64();
    let res_counters = *res_on.metrics().resilience();
    let res_resolved = res_on.metrics().request_log().len() as u64;
    let res_first = res_resolved.saturating_sub(res_counters.retries);
    let res_amplification = res_counters.retry_amplification(res_first);
    let res_attempts = res_first + res_counters.retries;
    let shed_rate = res_counters.shed as f64 / res_attempts.max(1) as f64;
    let res_off_resolved = res_off.metrics().request_log().len();
    eprintln!(
        "   off {res_off_secs:.2}s ({res_off_resolved} resolved), \
         on {res_on_secs:.2}s ({res_resolved} resolved attempts); \
         amplification {res_amplification:.3}, shed rate {shed_rate:.3} \
         ({} timed out, {} shed, {} retries)",
        res_counters.timed_out, res_counters.shed, res_counters.retries
    );

    #[cfg(feature = "alloc-count")]
    let allocs = {
        use std::sync::atomic::Ordering;
        eprintln!("== allocations per request (counting global allocator) ==");
        std::hint::black_box(kernel_steady_state()); // warm up
        let before = alloc_count::ALLOCS.load(Ordering::Relaxed);
        let counted_requests = kernel_steady_state();
        let after = alloc_count::ALLOCS.load(Ordering::Relaxed);
        let per_request = (after - before) as f64 / counted_requests as f64;
        eprintln!(
            "   {} allocations / {counted_requests} requests = {per_request:.1} per request",
            after - before
        );
        (after - before, counted_requests, per_request)
    };

    let snapshot_fork = if quick {
        eprintln!("== skipping snapshot fork slice (--quick) ==");
        None
    } else {
        eprintln!("== Table I param sweep (4 damage-goal cells): cold vs forked ==");
        let opts = lab::RunOpts::new(lab::Fidelity::Fast);
        let t0 = Instant::now();
        let cold = lab::experiments::table1::param_sweep_report(opts.snapshots(false));
        let cold_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let forked = lab::experiments::table1::param_sweep_report(opts);
        let forked_secs = t1.elapsed().as_secs_f64();
        assert_eq!(
            cold.to_markdown(),
            forked.to_markdown(),
            "forked param sweep must be byte-identical to cold"
        );
        eprintln!(
            "   cold {cold_secs:.1}s, forked {forked_secs:.1}s, speedup {:.2}x (byte-identical; \
             the shared warm-up + baseline + profiling prefix is simulated once instead of {} times)",
            cold_secs / forked_secs,
            lab::experiments::table1::PARAM_SWEEP_GOALS.len()
        );
        Some((cold_secs, forked_secs))
    };

    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let table1 = if quick {
        eprintln!("== skipping Table I slice (--quick) ==");
        None
    } else {
        eprintln!("== Table I two-cell slice: serial vs --jobs 2 ==");
        let settings: Vec<lab::experiments::table1::Setting> = lab::experiments::table1::settings()
            .into_iter()
            .take(2)
            .collect();
        let t0 = Instant::now();
        let serial = lab::experiments::table1::report_for(&settings, lab::Fidelity::Fast, 1);
        let serial_secs = t0.elapsed().as_secs_f64();
        // On a single-CPU host the jobs=2 run would just time-slice the
        // same core and report a meaningless "slowdown", so measure it only
        // when a second CPU exists and publish `null` otherwise.
        let parallel_secs = if cpus >= 2 {
            let t1 = Instant::now();
            let parallel = lab::experiments::table1::report_for(&settings, lab::Fidelity::Fast, 2);
            let secs = t1.elapsed().as_secs_f64();
            assert_eq!(
                serial.to_markdown(),
                parallel.to_markdown(),
                "parallel sweep must be byte-identical to serial"
            );
            eprintln!(
                "   serial {serial_secs:.1}s, jobs=2 {secs:.1}s, speedup {:.2}x (byte-identical)",
                serial_secs / secs
            );
            Some(secs)
        } else {
            eprintln!(
                "   serial {serial_secs:.1}s; single CPU — skipping the jobs=2 measurement \
                 (speedup: null)"
            );
            None
        };
        Some((serial_secs, parallel_secs))
    };

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cpus\": {cpus},\n"));
    json.push_str(&format!(
        "  \"queue_hold_model\": {{\n    \"pending\": {HOLD_PENDING},\n    \"ops\": {HOLD_OPS},\n    \"wheel_ns_per_op\": {:.2},\n    \"heap_ns_per_op\": {:.2},\n    \"speedup\": {:.3}\n  }},\n",
        wheel_ns / ops,
        heap_ns / ops,
        queue_speedup
    ));
    json.push_str(&format!(
        "  \"deep_wheel\": {{\n    \"pending\": {DEEP_PENDING},\n    \"ops\": {HOLD_OPS},\n    \"wheel_ns_per_op\": {:.2},\n    \"heap_ns_per_op\": {:.2},\n    \"speedup\": {:.3}\n  }},\n",
        deep_wheel_ns / deep_ops,
        deep_heap_ns / deep_ops,
        deep_speedup
    ));
    json.push_str(&format!(
        "  \"kernel_steady_state\": {{\n    \"requests_per_wall_second\": {req_per_sec:.0},\n    \"sim_seconds_per_wall_second\": {sim_speed:.1}\n  }},\n"
    ));
    json.push_str(&format!(
        "  \"demand_rng_batching\": {{\n    \"per_call_ns_per_draw\": {:.2},\n    \"batched_ns_per_draw\": {:.2},\n    \"speedup\": {:.3}\n  }},\n",
        per_call_ns,
        batched_ns,
        per_call_ns / batched_ns
    ));
    json.push_str(&format!(
        "  \"markov_transition\": {{\n    \"outcomes\": {OUTCOMES},\n    \"alias_ns_per_draw\": {alias_ns:.2},\n    \"weighted_choice_ns_per_draw\": {scan_ns:.2},\n    \"speedup\": {alias_speedup:.3}\n  }},\n"
    ));
    json.push_str(&format!(
        "  \"large_population\": {{\n    \"users\": {MEGA_USERS},\n    \"sim_secs\": {MEGA_SECS},\n    \"requests\": {mega_requests},\n    \"req_per_wall_second\": {:.0},\n    \"engine_secs\": {engine_secs:.2},\n    \"naive_secs\": {naive_secs:.2},\n    \"pending_wheel_events\": {mega_pending},\n    \"think_buckets\": {mega_buckets},\n    \"byte_identical_to_naive\": true,\n    \"speedup\": {pop_speedup:.3}\n  }},\n",
        mega_requests as f64 / engine_secs
    ));
    json.push_str(&format!(
        "  \"fork_cost\": {{\n    \"short_prefix_requests\": {short_requests},\n    \"long_prefix_requests\": {long_requests},\n    \"metrics_fork_short_us\": {:.2},\n    \"metrics_fork_long_us\": {:.2},\n    \"metrics_deep_copy_long_us\": {:.2},\n    \"metrics_fork_vs_deep_copy_speedup\": {:.3},\n    \"sim_fork_short_us\": {:.2},\n    \"sim_fork_long_us\": {:.2},\n    \"long_vs_short_fork_ratio\": {:.3}\n  }},\n",
        fork_short_ns / 1e3,
        fork_long_ns / 1e3,
        deep_long_ns / 1e3,
        fork_vs_deep,
        sim_fork_short_ns / 1e3,
        sim_fork_long_ns / 1e3,
        fork_ratio
    ));
    json.push_str(&format!(
        "  \"analysis_window_query\": {{\n    \"records\": {long_requests},\n    \"matching\": {matching},\n    \"indexed_us\": {:.2},\n    \"naive_us\": {:.2},\n    \"speedup\": {:.3}\n  }},\n",
        indexed_ns / 1e3,
        naive_ns / 1e3,
        query_speedup
    ));
    json.push_str(&format!(
        "  \"ids_window_query\": {{\n    \"entries\": {entries},\n    \"matching\": {w_matching},\n    \"ids_indexed_us\": {:.2},\n    \"ids_naive_us\": {:.2},\n    \"shield_indexed_us\": {:.2},\n    \"shield_naive_us\": {:.2},\n    \"shield_speedup\": {:.3},\n    \"speedup\": {:.3}\n  }}",
        ids_indexed_ns / 1e3,
        ids_naive_ns / 1e3,
        shield_indexed_ns / 1e3,
        shield_naive_ns / 1e3,
        shield_speedup,
        ids_speedup
    ));
    json.push_str(&format!(
        ",\n  \"resilience_ablation\": {{\n    \"sim_secs\": {RES_SECS},\n    \"off_resolved\": {res_off_resolved},\n    \"off_secs\": {res_off_secs:.2},\n    \"on_resolved_attempts\": {res_resolved},\n    \"on_secs\": {res_on_secs:.2},\n    \"retries\": {},\n    \"timed_out\": {},\n    \"shed\": {},\n    \"retry_amplification\": {res_amplification:.3},\n    \"shed_rate\": {shed_rate:.3}\n  }}",
        res_counters.retries, res_counters.timed_out, res_counters.shed
    ));
    #[cfg(feature = "alloc-count")]
    {
        let (count, counted_requests, per_request) = allocs;
        json.push_str(&format!(
            ",\n  \"allocs_per_request\": {{\n    \"allocations\": {count},\n    \"requests\": {counted_requests},\n    \"per_request\": {per_request:.2}\n  }}"
        ));
    }
    if let Some((cold_secs, forked_secs)) = snapshot_fork {
        json.push_str(&format!(
            ",\n  \"table1_param_sweep_fork\": {{\n    \"cells\": {},\n    \"cold_secs\": {:.2},\n    \"forked_secs\": {:.2},\n    \"speedup\": {:.3}\n  }}",
            lab::experiments::table1::PARAM_SWEEP_GOALS.len(),
            cold_secs,
            forked_secs,
            cold_secs / forked_secs
        ));
    }
    if let Some((serial_secs, parallel_secs)) = table1 {
        // An honest null: on a 1-CPU host the jobs=2 run is skipped rather
        // than reported as a time-sliced "slowdown", and the skip reason is
        // machine-readable.
        let (jobs2_json, speedup_json) = match parallel_secs {
            Some(secs) => (format!("{secs:.2}"), format!("{:.3}", serial_secs / secs)),
            None => ("null".to_string(), "null".to_string()),
        };
        json.push_str(&format!(
            ",\n  \"table1_two_cell_slice\": {{\n    \"serial_secs\": {serial_secs:.2},\n    \"jobs2_secs\": {jobs2_json},\n    \"jobs2_skipped_1cpu\": {},\n    \"speedup\": {speedup_json}\n  }}",
            parallel_secs.is_none()
        ));
    }
    json.push_str("\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    print!("{json}");
    eprintln!("wrote {out_path}");
}
