//! Machine-readable kernel benchmark: measures the fast-path event queue
//! against the reference binary heap, kernel steady-state throughput, and
//! the parallel sweep speedup, then writes `BENCH_kernel.json`.
//!
//! ```text
//! cargo run --release -p bench --bin bench_kernel [-- --out <path> --quick --check]
//! ```
//!
//! `--quick` skips the Table I slices (the slowest sections). `--check`
//! runs only the correctness smoke test — a warm-snapshot forked campaign
//! must be byte-identical to a cold one, and batched RNG draws must match
//! the per-call sequence — writing no JSON and exiting nonzero on any
//! mismatch (CI runs this). All timing uses `std::time::Instant`; output
//! goes to the JSON file and stdout.

use bench::{kernel_offset_micros, xorshift64, HOLD_PENDING};
use callgraph::{RequestTypeId, ServiceSpec, TopologyBuilder};
use microsim::agents::FixedRate;
use microsim::{SimConfig, Simulation};
use simnet::{EventQueue, HeapEventQueue, SimDuration, SimTime};
use std::time::Instant;

/// Hold-model program (the kernel's steady-state access pattern): keep a
/// paper-cell-scale pending population, pop the earliest and reschedule a
/// successor at an offset drawn from the kernel's event mixture, then
/// drain. Mirrors the `queue/*_hold_model` Criterion benches.
const HOLD_OPS: u64 = 50_000;

macro_rules! hold_program {
    ($queue:expr) => {{
        let mut q = $queue;
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for i in 0..HOLD_PENDING {
            let r = xorshift64(&mut x);
            q.push(SimTime::from_micros(kernel_offset_micros(r)), i);
        }
        let mut sum = 0u64;
        for i in 0..HOLD_OPS {
            let (t, v) = q.pop().expect("pending population never drains");
            sum = sum.wrapping_add(v);
            let r = xorshift64(&mut x);
            q.push(t + SimDuration::from_micros(1 + kernel_offset_micros(r)), i);
        }
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        sum
    }};
}

/// Runs `f` repeatedly for at least `budget_ms` per round and returns the
/// best round's mean ns per call (best-of-3 damps scheduler noise on
/// shared machines).
fn time_ns<F: FnMut() -> u64>(mut f: F, budget_ms: u64) -> f64 {
    std::hint::black_box(f()); // warm up
    let budget = std::time::Duration::from_millis(budget_ms);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let started = Instant::now();
        let mut iters = 0u64;
        while started.elapsed() < budget {
            std::hint::black_box(f());
            iters += 1;
        }
        best = best.min(started.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

fn chain_topology() -> callgraph::Topology {
    let mut b = TopologyBuilder::new();
    let gw = b.add_service(ServiceSpec::new("gw").threads(256).cores(4).demand_cv(0.1));
    let api = b.add_service(ServiceSpec::new("api").threads(64).cores(2).demand_cv(0.1));
    let db = b.add_service(ServiceSpec::new("db").threads(32).cores(2).demand_cv(0.1));
    b.add_request_type(
        "r",
        vec![
            (gw, SimDuration::from_micros(300)),
            (api, SimDuration::from_millis(2)),
            (db, SimDuration::from_millis(4)),
        ],
    );
    b.build()
}

/// One simulated second of 500 req/s through a 3-stage chain; returns the
/// number of completed requests.
fn kernel_steady_state() -> u64 {
    let mut sim = Simulation::new(chain_topology(), SimConfig::default().access_log(false));
    sim.add_agent(Box::new(FixedRate::new(
        RequestTypeId::new(0),
        SimDuration::from_micros(2_000),
        500,
    )));
    sim.run_until(SimTime::from_secs(1));
    sim.metrics().request_log().len() as u64
}

/// The smoke test behind `--check`: asserts the two invariants this crate's
/// numbers rely on, fast enough for CI.
fn check() {
    eprintln!("== check: batched RNG draws match the per-call sequence ==");
    let mut per_call = simnet::RngStream::from_label(7, "bench/check");
    let mut batched = simnet::RngStream::from_label(7, "bench/check");
    let mut buf = [0.0f64; 32];
    batched.fill_standard_normal(&mut buf);
    for (i, z) in buf.iter().enumerate() {
        let expected = per_call.lognormal_mean_cv(4.0, 0.3);
        let got = simnet::lognormal_mean_cv_from_z(4.0, 0.3, *z);
        assert!(
            expected == got,
            "draw {i}: per-call {expected} != batched {got}"
        );
    }

    eprintln!("== check: forked campaign is byte-identical to cold ==");
    let scenario = lab::Scenario::social_network(
        "check",
        microsim::PlatformProfile::ec2(),
        1_500,
        1_500,
        0xC4EC,
    );
    let baseline = SimDuration::from_secs(20);
    let attack = SimDuration::from_secs(60);
    let forked = lab::AttackRun::execute_opts(
        &scenario,
        grunt::CampaignConfig::default(),
        baseline,
        attack,
        true,
    );
    let cold = lab::AttackRun::execute_opts(
        &scenario,
        grunt::CampaignConfig::default(),
        baseline,
        attack,
        false,
    );
    let forked_report = comparison_report(&forked);
    let cold_report = comparison_report(&cold);
    if forked_report != cold_report {
        print_first_divergence(&forked_report, &cold_report);
        panic!(
            "forked campaign diverges from cold re-simulation (first divergent report line above)"
        );
    }
    eprintln!("check OK");
}

/// Renders a run's comparable end state as a line-oriented report — one
/// metrics field per line plus the RNG fingerprint and pending-event count
/// — so a determinism failure can name the exact quantity that diverged.
fn comparison_report(run: &lab::AttackRun) -> String {
    format!(
        "{:#?}\nrng_fingerprint: {:?}\npending_events: {}\n",
        run.sim.metrics(),
        run.sim.rng_fingerprint(),
        run.sim.pending_events()
    )
}

/// Prints the first line where the forked and cold reports diverge.
fn print_first_divergence(forked: &str, cold: &str) {
    let (mut f, mut c) = (forked.lines(), cold.lines());
    let mut line = 0usize;
    loop {
        line += 1;
        match (f.next(), c.next()) {
            (Some(a), Some(b)) if a == b => {}
            (None, None) => {
                eprintln!("reports compare unequal but no line differs (encoding?)");
                return;
            }
            (a, b) => {
                eprintln!("first divergent report line ({line}):");
                eprintln!("  forked: {}", a.unwrap_or("<end of report>"));
                eprintln!("  cold:   {}", b.unwrap_or("<end of report>"));
                return;
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        check();
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernel.json".to_string());

    eprintln!("== event queue: timing wheel vs binary heap (hold model) ==");
    let wheel_ns = time_ns(
        || hold_program!(EventQueue::<u64>::with_capacity(1_024)),
        500,
    );
    let heap_ns = time_ns(
        || hold_program!(HeapEventQueue::<u64>::with_capacity(1_024)),
        500,
    );
    let ops = (HOLD_PENDING + HOLD_OPS) as f64;
    let queue_speedup = heap_ns / wheel_ns;
    eprintln!(
        "   wheel {:.1} ns/op, heap {:.1} ns/op, speedup {queue_speedup:.2}x",
        wheel_ns / ops,
        heap_ns / ops
    );

    eprintln!("== kernel steady state (1 sim-second, 500 req/s, 3-stage chain) ==");
    let mut requests = 0u64;
    let kernel_ns = time_ns(
        || {
            requests = kernel_steady_state();
            requests
        },
        2_000,
    );
    let req_per_sec = requests as f64 / (kernel_ns / 1e9);
    let sim_speed = 1.0 / (kernel_ns / 1e9);
    eprintln!("   {req_per_sec:.0} requests/s simulated ({sim_speed:.0}x real time)");

    eprintln!("== service-demand RNG: per-call vs batched draws ==");
    const DRAWS: usize = 4_096;
    let per_call_ns = time_ns(
        || {
            let mut rng = simnet::RngStream::from_label(11, "bench/demand");
            let mut acc = 0.0f64;
            for _ in 0..DRAWS {
                acc += rng.lognormal_mean_cv(4.0, 0.3);
            }
            acc.to_bits()
        },
        200,
    ) / DRAWS as f64;
    let batched_ns = time_ns(
        || {
            let mut rng = simnet::RngStream::from_label(11, "bench/demand");
            let mut buf = [0.0f64; 32];
            let mut acc = 0.0f64;
            for _ in 0..DRAWS / 32 {
                rng.fill_standard_normal(&mut buf);
                for z in buf {
                    acc += simnet::lognormal_mean_cv_from_z(4.0, 0.3, z);
                }
            }
            acc.to_bits()
        },
        200,
    ) / DRAWS as f64;
    eprintln!(
        "   per-call {per_call_ns:.1} ns/draw, batched {batched_ns:.1} ns/draw, \
         speedup {:.2}x",
        per_call_ns / batched_ns
    );

    let snapshot_fork = if quick {
        eprintln!("== skipping snapshot fork slice (--quick) ==");
        None
    } else {
        eprintln!("== Table I param sweep (4 damage-goal cells): cold vs forked ==");
        let opts = lab::RunOpts::new(lab::Fidelity::Fast);
        let t0 = Instant::now();
        let cold = lab::experiments::table1::param_sweep_report(opts.snapshots(false));
        let cold_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let forked = lab::experiments::table1::param_sweep_report(opts);
        let forked_secs = t1.elapsed().as_secs_f64();
        assert_eq!(
            cold.to_markdown(),
            forked.to_markdown(),
            "forked param sweep must be byte-identical to cold"
        );
        eprintln!(
            "   cold {cold_secs:.1}s, forked {forked_secs:.1}s, speedup {:.2}x (byte-identical; \
             the shared warm-up + baseline + profiling prefix is simulated once instead of {} times)",
            cold_secs / forked_secs,
            lab::experiments::table1::PARAM_SWEEP_GOALS.len()
        );
        Some((cold_secs, forked_secs))
    };

    let table1 = if quick {
        eprintln!("== skipping Table I slice (--quick) ==");
        None
    } else {
        eprintln!("== Table I two-cell slice: serial vs --jobs 2 ==");
        let settings: Vec<lab::experiments::table1::Setting> = lab::experiments::table1::settings()
            .into_iter()
            .take(2)
            .collect();
        let t0 = Instant::now();
        let serial = lab::experiments::table1::report_for(&settings, lab::Fidelity::Fast, 1);
        let serial_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let parallel = lab::experiments::table1::report_for(&settings, lab::Fidelity::Fast, 2);
        let parallel_secs = t1.elapsed().as_secs_f64();
        assert_eq!(
            serial.to_markdown(),
            parallel.to_markdown(),
            "parallel sweep must be byte-identical to serial"
        );
        eprintln!(
            "   serial {serial_secs:.1}s, jobs=2 {parallel_secs:.1}s, speedup {:.2}x (byte-identical; \
             needs >= 2 CPUs to show a wall-clock win)",
            serial_secs / parallel_secs
        );
        Some((serial_secs, parallel_secs))
    };
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cpus\": {cpus},\n"));
    json.push_str(&format!(
        "  \"queue_hold_model\": {{\n    \"pending\": {HOLD_PENDING},\n    \"ops\": {HOLD_OPS},\n    \"wheel_ns_per_op\": {:.2},\n    \"heap_ns_per_op\": {:.2},\n    \"speedup\": {:.3}\n  }},\n",
        wheel_ns / ops,
        heap_ns / ops,
        queue_speedup
    ));
    json.push_str(&format!(
        "  \"kernel_steady_state\": {{\n    \"requests_per_wall_second\": {req_per_sec:.0},\n    \"sim_seconds_per_wall_second\": {sim_speed:.1}\n  }},\n"
    ));
    json.push_str(&format!(
        "  \"demand_rng_batching\": {{\n    \"per_call_ns_per_draw\": {:.2},\n    \"batched_ns_per_draw\": {:.2},\n    \"speedup\": {:.3}\n  }}",
        per_call_ns,
        batched_ns,
        per_call_ns / batched_ns
    ));
    if let Some((cold_secs, forked_secs)) = snapshot_fork {
        json.push_str(&format!(
            ",\n  \"table1_param_sweep_fork\": {{\n    \"cells\": {},\n    \"cold_secs\": {:.2},\n    \"forked_secs\": {:.2},\n    \"speedup\": {:.3}\n  }}",
            lab::experiments::table1::PARAM_SWEEP_GOALS.len(),
            cold_secs,
            forked_secs,
            cold_secs / forked_secs
        ));
    }
    if let Some((serial_secs, parallel_secs)) = table1 {
        json.push_str(&format!(
            ",\n  \"table1_two_cell_slice\": {{\n    \"serial_secs\": {:.2},\n    \"jobs2_secs\": {:.2},\n    \"speedup\": {:.3}\n  }}",
            serial_secs,
            parallel_secs,
            serial_secs / parallel_secs
        ));
    }
    json.push_str("\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    print!("{json}");
    eprintln!("wrote {out_path}");
}
