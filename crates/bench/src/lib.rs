//! Benchmark support crate.
//!
//! The actual Criterion benches live under `benches/`:
//!
//! * `kernel` — simulation-kernel microbenches (event throughput, RNG,
//!   statistics collectors).
//! * `model` — the analytic queueing equations and candidate ranking.
//! * `experiments` — one reduced-scale bench per reproduced table/figure,
//!   exercising exactly the code path of the corresponding `lab` runner
//!   (`cargo run -p lab --bin lab -- <name>` regenerates the full
//!   artifact; the bench tracks its cost).

/// Standard reduced scale used by the per-artifact benches: small enough
/// for Criterion's repeated sampling, large enough to exercise every
/// subsystem.
pub const BENCH_USERS: usize = 1_000;

/// Pending-event population for the event-queue hold-model benches: the
/// scale of a paper cell (7-12K closed-loop user timers plus in-flight
/// request events).
pub const HOLD_PENDING: u64 = 32_768;

/// Scheduling-offset mixture (µs) mirroring the kernel's event
/// population: network hops, service demands, metric sampling and
/// think-time timers. `r` is a uniform random word.
#[inline]
pub fn kernel_offset_micros(r: u64) -> u64 {
    match r % 100 {
        0..=44 => 250,                // network hop
        45..=84 => 1_000 + r % 9_000, // service demand, 1-10 ms
        85..=94 => 100_000,           // metrics sampling window
        _ => 500_000 + r % 4_500_000, // think time, 0.5-5 s
    }
}

/// A deterministic xorshift64 step, for seeding bench programs without an
/// RNG dependency.
#[inline]
pub fn xorshift64(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}
