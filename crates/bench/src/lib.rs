//! Benchmark support crate.
//!
//! The actual Criterion benches live under `benches/`:
//!
//! * `kernel` — simulation-kernel microbenches (event throughput, RNG,
//!   statistics collectors).
//! * `model` — the analytic queueing equations and candidate ranking.
//! * `experiments` — one reduced-scale bench per reproduced table/figure,
//!   exercising exactly the code path of the corresponding `lab` runner
//!   (`cargo run -p lab --bin lab -- <name>` regenerates the full
//!   artifact; the bench tracks its cost).

/// Standard reduced scale used by the per-artifact benches: small enough
/// for Criterion's repeated sampling, large enough to exercise every
/// subsystem.
pub const BENCH_USERS: usize = 1_000;
