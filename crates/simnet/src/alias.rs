//! Walker/Vose alias tables: O(1) draws from a fixed discrete distribution.
//!
//! [`RngStream::weighted_choice`](crate::RngStream::weighted_choice) walks
//! the weight slice linearly on every draw — fine for one-off choices, an
//! O(n) tax per transition once a 100k-user population samples a Markov row
//! on every completed request. An [`AliasTable`] front-loads that cost:
//! O(n) construction, then every draw is one uniform, one multiply and at
//! most two array reads.
//!
//! Determinism: the table is a pure function of the weights, and
//! [`AliasTable::sample`] is a pure function of the table and one uniform
//! draw in `[0, 1)`. A batched consumer that prefetches uniforms and maps
//! them through `sample` therefore sees exactly the same outcomes as a
//! per-call consumer of the same stream — the property the closed-loop
//! population's differential tests pin.
//!
//! Note the *mapping* from a uniform to an outcome differs from
//! `weighted_choice`'s inverse-CDF scan (both are exact samplers of the
//! same distribution, but for one concrete `u` they may pick different
//! indices), so switching a component from `weighted_choice` to an alias
//! table is a documented RNG-stream layout change, not a drop-in.

use crate::rng::RngStream;

/// A precomputed alias table over `n` weighted outcomes.
///
/// # Example
///
/// ```
/// use simnet::{AliasTable, RngStream};
///
/// let table = AliasTable::new(&[1.0, 2.0, 1.0]);
/// let mut rng = RngStream::from_label(7, "demo");
/// let k = table.sample_with(&mut rng);
/// assert!(k < 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// Acceptance probability of bucket `i` (draw stays at `i`).
    prob: Vec<f64>,
    /// Fallback outcome of bucket `i` (draw moves to `alias[i]`).
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (Vose's stable variant).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one outcome");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "alias weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "alias weights must sum to a positive value");

        // Scale every weight so the average bucket holds probability 1.
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();

        // Vose's two-worklist construction. Indices are processed in
        // ascending order within each list, so the table is a deterministic
        // function of the weights.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, p) in prob.iter().enumerate() {
            if *p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        // Pop from the back; the lists were filled in ascending index
        // order, so this pairing is reproducible across platforms.
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // Donate the slack of bucket `s` from bucket `l`.
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Float residue: whatever is left saturates to probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` when the table has no outcomes (never: `new` rejects that).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Maps one uniform draw `u` in `[0, 1)` to an outcome index.
    ///
    /// Pure: equal `u` always yields the same outcome, so batched and
    /// per-call consumers of the same uniform stream agree bit-for-bit.
    #[inline]
    pub fn sample(&self, u: f64) -> usize {
        let n = self.prob.len();
        let v = u * n as f64;
        // `u < 1.0` keeps `k < n` except for float round-up at the edge.
        let k = (v as usize).min(n - 1);
        let frac = v - k as f64;
        if frac < self.prob[k] {
            k
        } else {
            self.alias[k] as usize
        }
    }

    /// Draws an outcome using one uniform from `rng`.
    ///
    /// Consumes exactly one `unit()` draw, in the same position a
    /// `weighted_choice` call would have consumed it.
    #[inline]
    pub fn sample_with(&self, rng: &mut RngStream) -> usize {
        self.sample(rng.unit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_is_deterministic() {
        let a = AliasTable::new(&[0.5, 3.0, 1.5, 0.0, 2.0]);
        let b = AliasTable::new(&[0.5, 3.0, 1.5, 0.0, 2.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn single_outcome_always_wins() {
        let t = AliasTable::new(&[4.2]);
        for u in [0.0, 0.25, 0.5, 0.999_999] {
            assert_eq!(t.sample(u), 0);
        }
    }

    #[test]
    fn zero_weight_outcomes_are_never_drawn() {
        let t = AliasTable::new(&[1.0, 0.0, 2.0, 0.0]);
        let mut rng = RngStream::from_label(3, "alias/zero");
        for _ in 0..20_000 {
            let k = t.sample_with(&mut rng);
            assert!(k == 0 || k == 2, "drew zero-weight outcome {k}");
        }
    }

    #[test]
    fn sampled_frequencies_match_weights() {
        let weights = [1.0, 2.0, 4.0, 1.0];
        let t = AliasTable::new(&weights);
        let mut rng = RngStream::from_label(5, "alias/freq");
        let mut counts = [0u32; 4];
        let n = 80_000;
        for _ in 0..n {
            counts[t.sample_with(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, w) in weights.iter().enumerate() {
            let expect = w / total;
            let got = f64::from(counts[i]) / f64::from(n);
            assert!(
                (got - expect).abs() < 0.01,
                "outcome {i}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn agrees_with_weighted_choice_distribution() {
        // Not the same u -> index mapping, but the same distribution: the
        // two samplers' empirical frequencies must converge on each other.
        let weights = [0.3, 0.0, 5.0, 1.7, 2.0];
        let t = AliasTable::new(&weights);
        let mut ra = RngStream::from_label(9, "alias/vs");
        let mut rw = RngStream::from_label(9, "alias/vs");
        let n = 60_000;
        let mut ca = [0i64; 5];
        let mut cw = [0i64; 5];
        for _ in 0..n {
            ca[t.sample_with(&mut ra)] += 1;
            cw[rw.weighted_choice(&weights)] += 1;
        }
        for i in 0..weights.len() {
            let diff = (ca[i] - cw[i]).abs() as f64 / f64::from(n);
            assert!(diff < 0.01, "outcome {i} diverged by {diff}");
        }
    }

    #[test]
    fn edge_uniforms_stay_in_range() {
        let t = AliasTable::new(&[1.0, 1.0, 1.0]);
        assert!(t.sample(0.0) < 3);
        // f64 just below 1.0.
        assert!(t.sample(1.0 - f64::EPSILON) < 3);
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn empty_weights_rejected() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "sum to a positive value")]
    fn all_zero_weights_rejected() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weights_rejected() {
        AliasTable::new(&[1.0, -0.5]);
    }
}
