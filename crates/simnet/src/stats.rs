//! Online statistics used throughout the workspace.
//!
//! Three collectors cover the needs of monitors, the analytic model and the
//! experiment harness:
//!
//! * [`Welford`] — numerically stable streaming mean/variance, O(1) memory.
//! * [`SampleSet`] — keeps every sample for exact percentiles; used for
//!   response-time distributions where exactness matters (the paper reports
//!   p95 latencies).
//! * [`Histogram`] — fixed-bin counts for memory-bounded percentile
//!   estimates over very long runs.

/// Streaming mean / variance via Welford's algorithm.
///
/// # Example
///
/// ```
/// let mut w = simnet::Welford::new();
/// for x in [1.0, 2.0, 3.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 2.0);
/// assert_eq!(w.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; `0.0` with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation; `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentile collector: retains every sample.
///
/// # Example
///
/// ```
/// let mut s = simnet::SampleSet::new();
/// for x in 1..=100 {
///     s.push(x as f64);
/// }
/// assert_eq!(s.percentile(0.95), 95.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SampleSet {
    samples: Vec<f64>,
    sorted: bool,
}

impl SampleSet {
    /// Creates an empty collector.
    pub fn new() -> Self {
        SampleSet {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Creates an empty collector with room for `n` samples — callers that
    /// know the match count up front (e.g. indexed telemetry queries)
    /// avoid growth reallocations entirely.
    pub fn with_capacity(n: usize) -> Self {
        SampleSet {
            samples: Vec::with_capacity(n),
            sorted: true,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Appends all of `other`'s samples, preserving `other`'s current
    /// order. Percentiles over the merged set are exact: they re-sort over
    /// the union, so merging is order-insensitive for every statistic
    /// except the (insertion-ordered) `mean` accumulation.
    pub fn merge(&mut self, other: &SampleSet) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// The `q`-quantile (nearest-rank), `q` in `[0, 1]`; `0.0` when empty.
    ///
    /// Sorting is done lazily and cached, so repeated percentile queries are
    /// cheap.
    pub fn percentile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.samples.len() as f64 * q).ceil() as usize).max(1) - 1;
        self.samples[rank.min(self.samples.len() - 1)]
    }

    /// Largest sample; `0.0` when empty.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0)
    }

    /// Read-only view of the raw samples (in insertion or sorted order,
    /// whichever is current).
    pub fn as_slice(&self) -> &[f64] {
        &self.samples
    }

    /// Removes all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sorted = true;
    }
}

impl Extend<f64> for SampleSet {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.samples.extend(iter);
        self.sorted = false;
    }
}

impl FromIterator<f64> for SampleSet {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = SampleSet::new();
        s.extend(iter);
        s
    }
}

/// Fixed-bin histogram over `[0, upper)` with overflow bin.
///
/// Percentiles are linear-interpolated inside the matched bin; good enough
/// for dashboards over multi-hour simulated runs where [`SampleSet`] would
/// hold hundreds of millions of points.
///
/// # Example
///
/// ```
/// let mut h = simnet::Histogram::new(100.0, 100);
/// for x in 0..100 {
///     h.record(x as f64);
/// }
/// let p50 = h.percentile(0.5);
/// assert!((p50 - 50.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    upper: f64,
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram covering `[0, upper)` with `bins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `upper <= 0` or `bins == 0`.
    pub fn new(upper: f64, bins: usize) -> Self {
        assert!(upper > 0.0, "histogram upper bound must be positive");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            upper,
            bins: vec![0; bins],
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one value. Values `>= upper` land in the overflow bin;
    /// negative values clamp to bin zero.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if x >= self.upper {
            self.overflow += 1;
            return;
        }
        let idx = ((x.max(0.0) / self.upper) * self.bins.len() as f64) as usize;
        let idx = idx.min(self.bins.len() - 1);
        self.bins[idx] += 1;
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of recorded values; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile. Returns `upper` when the quantile falls in
    /// the overflow bin, `0.0` when the histogram is empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        let bin_width = self.upper / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            if seen + c >= target {
                let into = (target - seen) as f64 / c.max(1) as f64;
                return (i as f64 + into) * bin_width;
            }
            seen += c;
        }
        self.upper
    }

    /// Fraction of samples at or above `upper` (the overflow bin).
    pub fn overflow_fraction(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.overflow as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_mean_and_variance() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert_eq!(w.std_dev(), 2.0);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_empty_is_zeroed() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), 0.0);
        assert_eq!(w.max(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_with_empty_sides() {
        let mut a = Welford::new();
        a.push(3.0);
        let empty = Welford::new();
        let mut b = a;
        b.merge(&empty);
        assert_eq!(b, a);
        let mut c = Welford::new();
        c.merge(&a);
        assert_eq!(c.mean(), 3.0);
    }

    #[test]
    fn sample_set_percentiles_are_exact() {
        let mut s: SampleSet = (1..=1000).map(|i| i as f64).collect();
        assert_eq!(s.percentile(0.5), 500.0);
        assert_eq!(s.percentile(0.95), 950.0);
        assert_eq!(s.percentile(1.0), 1000.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn sample_set_empty_behaviour() {
        let mut s = SampleSet::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(0.5), 0.0);
    }

    #[test]
    fn sample_set_push_after_percentile() {
        let mut s = SampleSet::new();
        s.push(10.0);
        assert_eq!(s.percentile(0.5), 10.0);
        s.push(1.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    fn sample_set_with_capacity_behaves_like_new() {
        let mut s = SampleSet::with_capacity(100);
        assert!(s.is_empty());
        for x in [3.0, 1.0, 2.0] {
            s.push(x);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.percentile(1.0), 3.0);
    }

    #[test]
    fn sample_set_merge_matches_sequential_pushes() {
        let mut a: SampleSet = [5.0, 1.0, 4.0].into_iter().collect();
        let b: SampleSet = [2.0, 3.0].into_iter().collect();
        let mut all: SampleSet = [5.0, 1.0, 4.0, 2.0, 3.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.mean(), all.mean());
        assert_eq!(a.percentile(0.5), all.percentile(0.5));
        assert_eq!(a.max(), all.max());
        // Merging an empty set is a no-op.
        a.merge(&SampleSet::new());
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn histogram_percentiles_approximate() {
        let mut h = Histogram::new(1000.0, 1000);
        for i in 0..10_000 {
            h.record((i % 1000) as f64);
        }
        assert!((h.percentile(0.5) - 500.0).abs() < 5.0);
        assert!((h.percentile(0.95) - 950.0).abs() < 5.0);
        assert_eq!(h.count(), 10_000);
    }

    #[test]
    fn histogram_overflow_and_clamp() {
        let mut h = Histogram::new(10.0, 10);
        h.record(-5.0);
        h.record(50.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.overflow_fraction(), 0.5);
        assert_eq!(h.percentile(1.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "upper bound must be positive")]
    fn histogram_rejects_bad_upper() {
        Histogram::new(0.0, 4);
    }
}
