//! Online statistics used throughout the workspace.
//!
//! Three collectors cover the needs of monitors, the analytic model and the
//! experiment harness:
//!
//! * [`Welford`] — numerically stable streaming mean/variance, O(1) memory.
//! * [`SampleSet`] — keeps every sample for exact percentiles; used for
//!   response-time distributions where exactness matters (the paper reports
//!   p95 latencies).
//! * [`SegSamples`] — copy-on-write [`SampleSet`]: sealed `Arc`-shared
//!   segments plus a bounded mutable tail, so snapshot/fork cost is
//!   O(tail) while means and exact percentiles stay bit-identical.
//! * [`SegStore`] — the same copy-on-write layout for arbitrary
//!   append-only records (agent sample journals).
//! * [`Histogram`] — fixed-bin counts for memory-bounded percentile
//!   estimates over very long runs.

/// Streaming mean / variance via Welford's algorithm.
///
/// # Example
///
/// ```
/// let mut w = simnet::Welford::new();
/// for x in [1.0, 2.0, 3.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 2.0);
/// assert_eq!(w.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; `0.0` with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation; `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentile collector: retains every sample.
///
/// # Example
///
/// ```
/// let mut s = simnet::SampleSet::new();
/// for x in 1..=100 {
///     s.push(x as f64);
/// }
/// assert_eq!(s.percentile(0.95), 95.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SampleSet {
    samples: Vec<f64>,
    sorted: bool,
}

impl SampleSet {
    /// Creates an empty collector.
    pub fn new() -> Self {
        SampleSet {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Creates an empty collector with room for `n` samples — callers that
    /// know the match count up front (e.g. indexed telemetry queries)
    /// avoid growth reallocations entirely.
    pub fn with_capacity(n: usize) -> Self {
        SampleSet {
            samples: Vec::with_capacity(n),
            sorted: true,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Appends all of `other`'s samples, preserving `other`'s current
    /// order. Percentiles over the merged set are exact: they re-sort over
    /// the union, so merging is order-insensitive for every statistic
    /// except the (insertion-ordered) `mean` accumulation.
    pub fn merge(&mut self, other: &SampleSet) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// The `q`-quantile (nearest-rank), `q` in `[0, 1]`; `0.0` when empty.
    ///
    /// Sorting is done lazily and cached, so repeated percentile queries are
    /// cheap.
    pub fn percentile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.samples.len() as f64 * q).ceil() as usize).max(1) - 1;
        self.samples[rank.min(self.samples.len() - 1)]
    }

    /// Largest sample; `0.0` when empty.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0)
    }

    /// Read-only view of the raw samples (in insertion or sorted order,
    /// whichever is current).
    pub fn as_slice(&self) -> &[f64] {
        &self.samples
    }

    /// Removes all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sorted = true;
    }
}

impl Extend<f64> for SampleSet {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.samples.extend(iter);
        self.sorted = false;
    }
}

impl FromIterator<f64> for SampleSet {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = SampleSet::new();
        s.extend(iter);
        s
    }
}

/// Default segment capacity for [`SegSamples`] and [`SegStore`].
///
/// Smaller than `microsim::seglog::SEG_CAP` because sample stores are
/// cloned on every fork: the mutable tail (the only part that is deep
/// copied) stays under 8 KiB of `f64`s.
pub const SAMPLE_SEG_CAP: usize = 1024;

/// One sealed, immutable segment of a [`SegSamples`] store.
///
/// Holds the samples both in insertion order (for order-sensitive mean
/// accumulation) and sorted (computed once at seal time, for percentile
/// merges). Sealed segments are shared by `Arc`, so cloning the store
/// never copies them.
#[derive(Debug)]
struct SampleSeg {
    /// Samples in insertion order.
    data: Vec<f64>,
    /// The same samples sorted ascending (stable sort, so ties keep
    /// insertion order — exactly what `SampleSet`'s lazy full sort does).
    sorted: Vec<f64>,
}

/// Copy-on-write exact percentile collector.
///
/// Drop-in replacement for [`SampleSet`] in long-lived agents: samples are
/// stored in immutable `Arc`-shared sealed segments of [`SAMPLE_SEG_CAP`]
/// entries plus one bounded mutable tail, so cloning the store (the
/// dominant agent cost of `Simulation::checkpoint`/fork) is O(tail)
/// regardless of how many samples the warm prefix accumulated.
///
/// Statistics are bit-identical to `SampleSet` over the same insertion
/// sequence: `mean` folds in insertion order, `max` replicates the
/// `fold(NEG_INFINITY, f64::max).max(0.0)` quirk, and `percentile` /
/// [`SegSamples::nth_smallest`] select by a k-way merge of the per-segment
/// stable sorts, which reproduces the lazy full stable sort's order
/// (including ties). The one intentional difference: `SampleSet::mean`
/// reflects *sorted* order after a `percentile` call has sorted it in
/// place; `SegSamples::mean` always folds in insertion order.
///
/// # Example
///
/// ```
/// let mut s = simnet::SegSamples::new();
/// for x in 1..=100 {
///     s.push(x as f64);
/// }
/// assert_eq!(s.percentile(0.95), 95.0);
/// let fork = s.clone(); // O(tail): sealed segments are Arc-shared
/// assert_eq!(fork.len(), 100);
/// ```
#[derive(Debug)]
pub struct SegSamples {
    /// Sealed immutable segments, shared between clones. The spine `Arc`
    /// makes a clone a single refcount bump regardless of segment count;
    /// sealing while forks share the spine copies only the spine
    /// (`Arc::make_mut`), never the samples.
    sealed: std::sync::Arc<Vec<std::sync::Arc<SampleSeg>>>,
    /// Mutable tail, strictly shorter than `seg_cap`; deep-copied on clone.
    tail: Vec<f64>,
    /// Cached stable sort of `tail`; valid when `!tail_dirty`.
    tail_sorted: Vec<f64>,
    /// Set by `push`, cleared when `tail_sorted` is rebuilt.
    tail_dirty: bool,
    /// Segment capacity (constant per store).
    seg_cap: usize,
}

// Manual per-field impl (not derived) so simlint's snapshot-complete rule
// can verify every field is carried across a fork.
impl Clone for SegSamples {
    fn clone(&self) -> Self {
        SegSamples {
            sealed: self.sealed.clone(),
            tail: self.tail.clone(),
            tail_sorted: self.tail_sorted.clone(),
            tail_dirty: self.tail_dirty,
            seg_cap: self.seg_cap,
        }
    }
}

impl Default for SegSamples {
    fn default() -> Self {
        SegSamples::new()
    }
}

impl PartialEq for SegSamples {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

/// Cursor into one sorted run during the k-way percentile merge.
///
/// Ordering is by value, tie-broken by `(list, pos)` — i.e. by global
/// insertion order, since runs are stable-sorted and listed oldest first —
/// so the merge reproduces the order of one stable sort over everything.
struct MergeCursor {
    val: f64,
    list: u32,
    pos: u32,
}

impl PartialEq for MergeCursor {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for MergeCursor {}

impl PartialOrd for MergeCursor {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MergeCursor {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.val
            .partial_cmp(&other.val)
            .expect("NaN sample")
            .then(self.list.cmp(&other.list))
            .then(self.pos.cmp(&other.pos))
    }
}

impl SegSamples {
    /// Creates an empty store with the default segment capacity.
    pub fn new() -> Self {
        SegSamples::with_seg_cap(SAMPLE_SEG_CAP)
    }

    /// Creates an empty store sealing segments at `seg_cap` samples.
    ///
    /// # Panics
    ///
    /// Panics if `seg_cap` is zero.
    pub fn with_seg_cap(seg_cap: usize) -> Self {
        assert!(seg_cap > 0, "segment capacity must be positive");
        SegSamples {
            sealed: std::sync::Arc::new(Vec::new()),
            tail: Vec::new(),
            tail_sorted: Vec::new(),
            tail_dirty: false,
            seg_cap,
        }
    }

    /// Adds one sample, sealing the tail into an immutable segment when it
    /// reaches the segment capacity. Segmentation is a pure function of the
    /// sample count, so forked and cold stores are structurally identical.
    pub fn push(&mut self, x: f64) {
        self.tail.push(x);
        self.tail_dirty = true;
        if self.tail.len() == self.seg_cap {
            self.seal_tail();
        }
    }

    fn seal_tail(&mut self) {
        let data = std::mem::replace(&mut self.tail, Vec::with_capacity(self.seg_cap)); // simlint: allow(hot-path-alloc) — amortized: one seal per seg_cap pushes
        let mut sorted = data.clone(); // simlint: allow(hot-path-alloc) — amortized: one sort copy per seal
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let seg = std::sync::Arc::new(SampleSeg { data, sorted }); // simlint: allow(hot-path-alloc) — amortized: one seal per seg_cap pushes
        std::sync::Arc::make_mut(&mut self.sealed).push(seg);
        self.tail_sorted.clear();
        self.tail_dirty = false;
    }

    /// Appends all of `other`'s samples in `other`'s insertion order.
    pub fn merge(&mut self, other: &SegSamples) {
        self.extend(other.iter());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sealed.len() * self.seg_cap + self.tail.len()
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty() && self.tail.is_empty()
    }

    /// All samples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.sealed
            .iter()
            .flat_map(|seg| seg.data.iter().copied())
            .chain(self.tail.iter().copied())
    }

    /// Arithmetic mean, folded in insertion order; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.iter().sum::<f64>() / self.len() as f64
    }

    /// The `q`-quantile (nearest-rank), `q` in `[0, 1]`; `0.0` when empty.
    ///
    /// Matches `SampleSet::percentile` exactly: same rank formula, same
    /// stable ordering of ties.
    pub fn percentile(&mut self, q: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.len() as f64 * q).ceil() as usize).max(1) - 1;
        self.nth_smallest(rank.min(self.len() - 1))
    }

    /// The sample at `rank` (0-based) of the stable ascending sort —
    /// `nth_smallest(len / 2)` is the upper-median `Profiler` uses.
    ///
    /// Runs a k-way merge over the per-segment seal-time sorts plus the
    /// (lazily sorted, cached) tail: O(min(rank, len - rank) · log
    /// segments), never a full re-sort.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= len()` or any sample is NaN.
    pub fn nth_smallest(&mut self, rank: usize) -> f64 {
        let n = self.len();
        assert!(rank < n, "rank {rank} out of range for {n} samples");
        if self.tail_dirty {
            self.tail_sorted.clear();
            self.tail_sorted.extend_from_slice(&self.tail);
            self.tail_sorted
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.tail_dirty = false;
        }
        let runs: Vec<&[f64]> = self
            .sealed
            .iter()
            .map(|seg| seg.sorted.as_slice())
            .chain(std::iter::once(self.tail_sorted.as_slice()))
            .collect();
        if rank <= (n - 1) / 2 {
            Self::select_from_bottom(&runs, rank)
        } else {
            Self::select_from_top(&runs, n - 1 - rank)
        }
    }

    /// Pops the merge `rank + 1` times from the ascending side.
    fn select_from_bottom(runs: &[&[f64]], rank: usize) -> f64 {
        use std::cmp::Reverse;
        let mut heap: std::collections::BinaryHeap<Reverse<MergeCursor>> = runs
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_empty())
            .map(|(i, r)| {
                Reverse(MergeCursor {
                    val: r[0],
                    list: i as u32,
                    pos: 0,
                })
            })
            .collect();
        let mut remaining = rank;
        loop {
            let Reverse(cur) = heap.pop().expect("rank within bounds");
            if remaining == 0 {
                return cur.val;
            }
            remaining -= 1;
            let run = runs[cur.list as usize];
            let next = cur.pos as usize + 1;
            if next < run.len() {
                heap.push(Reverse(MergeCursor {
                    val: run[next],
                    list: cur.list,
                    pos: next as u32,
                }));
            }
        }
    }

    /// Pops the merge `back_rank + 1` times from the descending side.
    /// Ties pop highest `(list, pos)` first — the exact reverse of the
    /// stable ascending order, so both directions agree on every rank.
    fn select_from_top(runs: &[&[f64]], back_rank: usize) -> f64 {
        let mut heap: std::collections::BinaryHeap<MergeCursor> = runs
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_empty())
            .map(|(i, r)| MergeCursor {
                val: *r.last().expect("nonempty run"),
                list: i as u32,
                pos: (r.len() - 1) as u32,
            })
            .collect();
        let mut remaining = back_rank;
        loop {
            let cur = heap.pop().expect("rank within bounds");
            if remaining == 0 {
                return cur.val;
            }
            remaining -= 1;
            if cur.pos > 0 {
                let run = runs[cur.list as usize];
                heap.push(MergeCursor {
                    val: run[cur.pos as usize - 1],
                    list: cur.list,
                    pos: cur.pos - 1,
                });
            }
        }
    }

    /// Largest sample; `0.0` when empty (replicates `SampleSet::max`,
    /// including its fold order and the clamp to zero).
    pub fn max(&self) -> f64 {
        self.iter().fold(f64::NEG_INFINITY, f64::max).max(0.0)
    }

    /// Removes all samples.
    pub fn clear(&mut self) {
        // Fresh spine rather than `make_mut` + clear: forks sharing the old
        // spine keep it untouched.
        self.sealed = std::sync::Arc::new(Vec::new()); // simlint: allow(hot-path-alloc) — reset path, not the per-sample path
        self.tail.clear();
        self.tail_sorted.clear();
        self.tail_dirty = false;
    }
}

impl Extend<f64> for SegSamples {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for SegSamples {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = SegSamples::new();
        s.extend(iter);
        s
    }
}

/// Generic copy-on-write append-only store.
///
/// The non-statistical sibling of [`SegSamples`]: immutable `Arc`-shared
/// sealed segments plus one bounded mutable tail, so cloning is O(tail).
/// Used for per-agent sample journals (e.g. `ClosedLoopUsers`' timestamped
/// latency pairs) that previously deep-copied a `Vec` on every fork.
#[derive(Debug)]
pub struct SegStore<T> {
    /// Sealed immutable segments, shared between clones. Spine behind one
    /// `Arc` so a clone is O(1) in the segment count (see [`SegSamples`]).
    sealed: std::sync::Arc<Vec<std::sync::Arc<Vec<T>>>>,
    /// Mutable tail, strictly shorter than `seg_cap`; deep-copied on clone.
    tail: Vec<T>,
    /// Segment capacity (constant per store).
    seg_cap: usize,
}

// Manual per-field impl (not derived) so simlint's snapshot-complete rule
// can verify every field is carried across a fork.
impl<T: Clone> Clone for SegStore<T> {
    fn clone(&self) -> Self {
        SegStore {
            sealed: self.sealed.clone(),
            tail: self.tail.clone(),
            seg_cap: self.seg_cap,
        }
    }
}

impl<T> Default for SegStore<T> {
    fn default() -> Self {
        SegStore::new()
    }
}

impl<T: PartialEq> PartialEq for SegStore<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T> SegStore<T> {
    /// Creates an empty store with the default segment capacity.
    pub fn new() -> Self {
        SegStore::with_seg_cap(SAMPLE_SEG_CAP)
    }

    /// Creates an empty store sealing segments at `seg_cap` items.
    ///
    /// # Panics
    ///
    /// Panics if `seg_cap` is zero.
    pub fn with_seg_cap(seg_cap: usize) -> Self {
        assert!(seg_cap > 0, "segment capacity must be positive");
        SegStore {
            sealed: std::sync::Arc::new(Vec::new()),
            tail: Vec::new(),
            seg_cap,
        }
    }

    /// Appends one item, sealing the tail when it reaches capacity.
    /// Segmentation depends only on the item count, so forked and cold
    /// stores are structurally identical.
    pub fn push(&mut self, item: T) {
        self.tail.push(item);
        if self.tail.len() == self.seg_cap {
            let seg = std::mem::replace(&mut self.tail, Vec::with_capacity(self.seg_cap)); // simlint: allow(hot-path-alloc) — amortized: one seal per seg_cap pushes
            std::sync::Arc::make_mut(&mut self.sealed).push(std::sync::Arc::new(seg));
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.sealed.len() * self.seg_cap + self.tail.len()
    }

    /// `true` when no items were stored.
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty() && self.tail.is_empty()
    }

    /// All items in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.sealed
            .iter()
            .flat_map(|seg| seg.iter())
            .chain(self.tail.iter())
    }

    /// The most recently pushed item.
    pub fn last(&self) -> Option<&T> {
        self.tail
            .last()
            .or_else(|| self.sealed.last().and_then(|seg| seg.last()))
    }

    /// Removes all items.
    pub fn clear(&mut self) {
        // Fresh spine rather than `make_mut` + clear: forks sharing the old
        // spine keep it untouched.
        self.sealed = std::sync::Arc::new(Vec::new()); // simlint: allow(hot-path-alloc) — reset path, not the per-item path
        self.tail.clear();
    }
}

impl<'a, T> IntoIterator for &'a SegStore<T> {
    type Item = &'a T;
    type IntoIter = Box<dyn Iterator<Item = &'a T> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl<T> Extend<T> for SegStore<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<T> FromIterator<T> for SegStore<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut s = SegStore::new();
        s.extend(iter);
        s
    }
}

/// Fixed-bin histogram over `[0, upper)` with overflow bin.
///
/// Percentiles are linear-interpolated inside the matched bin; good enough
/// for dashboards over multi-hour simulated runs where [`SampleSet`] would
/// hold hundreds of millions of points.
///
/// # Example
///
/// ```
/// let mut h = simnet::Histogram::new(100.0, 100);
/// for x in 0..100 {
///     h.record(x as f64);
/// }
/// let p50 = h.percentile(0.5);
/// assert!((p50 - 50.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    upper: f64,
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram covering `[0, upper)` with `bins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `upper <= 0` or `bins == 0`.
    pub fn new(upper: f64, bins: usize) -> Self {
        assert!(upper > 0.0, "histogram upper bound must be positive");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            upper,
            bins: vec![0; bins],
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one value. Values `>= upper` land in the overflow bin;
    /// negative values clamp to bin zero.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if x >= self.upper {
            self.overflow += 1;
            return;
        }
        let idx = ((x.max(0.0) / self.upper) * self.bins.len() as f64) as usize;
        let idx = idx.min(self.bins.len() - 1);
        self.bins[idx] += 1;
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of recorded values; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile. Returns `upper` when the quantile falls in
    /// the overflow bin, `0.0` when the histogram is empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        let bin_width = self.upper / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            if seen + c >= target {
                let into = (target - seen) as f64 / c.max(1) as f64;
                return (i as f64 + into) * bin_width;
            }
            seen += c;
        }
        self.upper
    }

    /// Fraction of samples at or above `upper` (the overflow bin).
    pub fn overflow_fraction(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.overflow as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_mean_and_variance() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert_eq!(w.std_dev(), 2.0);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_empty_is_zeroed() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), 0.0);
        assert_eq!(w.max(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_with_empty_sides() {
        let mut a = Welford::new();
        a.push(3.0);
        let empty = Welford::new();
        let mut b = a;
        b.merge(&empty);
        assert_eq!(b, a);
        let mut c = Welford::new();
        c.merge(&a);
        assert_eq!(c.mean(), 3.0);
    }

    #[test]
    fn sample_set_percentiles_are_exact() {
        let mut s: SampleSet = (1..=1000).map(|i| i as f64).collect();
        assert_eq!(s.percentile(0.5), 500.0);
        assert_eq!(s.percentile(0.95), 950.0);
        assert_eq!(s.percentile(1.0), 1000.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn sample_set_empty_behaviour() {
        let mut s = SampleSet::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(0.5), 0.0);
    }

    #[test]
    fn sample_set_push_after_percentile() {
        let mut s = SampleSet::new();
        s.push(10.0);
        assert_eq!(s.percentile(0.5), 10.0);
        s.push(1.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    fn sample_set_with_capacity_behaves_like_new() {
        let mut s = SampleSet::with_capacity(100);
        assert!(s.is_empty());
        for x in [3.0, 1.0, 2.0] {
            s.push(x);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.percentile(1.0), 3.0);
    }

    #[test]
    fn sample_set_merge_matches_sequential_pushes() {
        let mut a: SampleSet = [5.0, 1.0, 4.0].into_iter().collect();
        let b: SampleSet = [2.0, 3.0].into_iter().collect();
        let mut all: SampleSet = [5.0, 1.0, 4.0, 2.0, 3.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.mean(), all.mean());
        assert_eq!(a.percentile(0.5), all.percentile(0.5));
        assert_eq!(a.max(), all.max());
        // Merging an empty set is a no-op.
        a.merge(&SampleSet::new());
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn histogram_percentiles_approximate() {
        let mut h = Histogram::new(1000.0, 1000);
        for i in 0..10_000 {
            h.record((i % 1000) as f64);
        }
        assert!((h.percentile(0.5) - 500.0).abs() < 5.0);
        assert!((h.percentile(0.95) - 950.0).abs() < 5.0);
        assert_eq!(h.count(), 10_000);
    }

    #[test]
    fn histogram_overflow_and_clamp() {
        let mut h = Histogram::new(10.0, 10);
        h.record(-5.0);
        h.record(50.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.overflow_fraction(), 0.5);
        assert_eq!(h.percentile(1.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "upper bound must be positive")]
    fn histogram_rejects_bad_upper() {
        Histogram::new(0.0, 4);
    }

    #[test]
    fn seg_samples_matches_sample_set_statistics() {
        let xs: Vec<f64> = (0..2500).map(|i| ((i * 37) % 1000) as f64 / 7.0).collect();
        let mut seg = SegSamples::new();
        let mut set = SampleSet::new();
        for &x in &xs {
            seg.push(x);
            set.push(x);
        }
        assert_eq!(seg.len(), set.len());
        assert_eq!(seg.mean(), set.mean());
        assert_eq!(seg.max(), set.max());
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(seg.percentile(q), set.percentile(q), "q={q}");
        }
    }

    #[test]
    fn seg_samples_nth_smallest_is_full_sort_rank() {
        let xs: Vec<f64> = (0..300).map(|i| ((i * 53) % 97) as f64).collect();
        let mut seg = SegSamples::with_seg_cap(64);
        let mut sorted = xs.clone();
        for &x in &xs {
            seg.push(x);
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
        for (rank, &expect) in sorted.iter().enumerate() {
            assert_eq!(seg.nth_smallest(rank), expect, "rank={rank}");
        }
    }

    #[test]
    fn seg_samples_empty_behaviour() {
        let mut s = SegSamples::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(0.5), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn seg_samples_clone_shares_sealed_segments() {
        let mut s = SegSamples::with_seg_cap(8);
        for i in 0..20 {
            s.push(i as f64);
        }
        let fork = s.clone();
        assert_eq!(fork, s);
        assert_eq!(s.sealed.len(), 2);
        for (a, b) in s.sealed.iter().zip(fork.sealed.iter()) {
            assert!(std::sync::Arc::ptr_eq(a, b));
        }
    }

    #[test]
    fn seg_samples_interleaved_push_and_percentile() {
        let mut seg = SegSamples::with_seg_cap(4);
        let mut set = SampleSet::new();
        for i in 0..50 {
            let x = ((i * 29) % 13) as f64;
            seg.push(x);
            set.push(x);
            assert_eq!(seg.percentile(0.5), set.percentile(0.5), "after {i}");
        }
    }

    #[test]
    fn seg_samples_merge_matches_sample_set_merge() {
        let a_items: Vec<f64> = (0..700).map(|i| (i % 31) as f64).collect();
        let b_items: Vec<f64> = (0..900).map(|i| (i % 17) as f64 * 2.0).collect();
        let mut seg: SegSamples = a_items.iter().copied().collect();
        let seg_b: SegSamples = b_items.iter().copied().collect();
        let mut set: SampleSet = a_items.iter().copied().collect();
        let set_b: SampleSet = b_items.iter().copied().collect();
        seg.merge(&seg_b);
        set.merge(&set_b);
        assert_eq!(seg.len(), set.len());
        assert_eq!(seg.mean(), set.mean());
        for q in [0.1, 0.5, 0.95] {
            assert_eq!(seg.percentile(q), set.percentile(q));
        }
        seg.clear();
        assert!(seg.is_empty());
        assert_eq!(seg.percentile(0.5), 0.0);
    }

    #[test]
    fn seg_store_keeps_insertion_order_and_shares_segments() {
        let mut s = SegStore::with_seg_cap(4);
        for i in 0..11 {
            s.push((i, i * 2));
        }
        assert_eq!(s.len(), 11);
        assert_eq!(s.last(), Some(&(10, 20)));
        let items: Vec<(i32, i32)> = s.iter().copied().collect();
        assert_eq!(items, (0..11).map(|i| (i, i * 2)).collect::<Vec<_>>());
        let fork = s.clone();
        assert_eq!(fork, s);
        for (a, b) in s.sealed.iter().zip(fork.sealed.iter()) {
            assert!(std::sync::Arc::ptr_eq(a, b));
        }
        let mut t: SegStore<(i32, i32)> = SegStore::new();
        assert!(t.is_empty());
        assert_eq!(t.last(), None);
        t.extend(s.iter().copied());
        assert_eq!(t, s);
        t.clear();
        assert!(t.is_empty());
    }
}
