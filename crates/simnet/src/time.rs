//! Integer simulation time.
//!
//! All simulated clocks in the workspace count microseconds from the start
//! of the simulation. Using integers keeps event ordering total (no float
//! ties) and makes runs bit-for-bit reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulated clock, in microseconds since simulation start.
///
/// `SimTime` is an absolute point in time; the corresponding span type is
/// [`SimDuration`]. The arithmetic mirrors `std::time::Instant` /
/// `std::time::Duration`: instants differ by durations, durations add to
/// instants.
///
/// # Example
///
/// ```
/// use simnet::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_micros(), 2_000_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_secs(2));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Example
///
/// ```
/// use simnet::SimDuration;
///
/// let d = SimDuration::from_millis(500);
/// assert_eq!(d.as_secs_f64(), 0.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// A time far beyond any realistic experiment horizon, usable as a
    /// sentinel for "never".
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX / 4);

    /// Creates a time from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time in milliseconds, truncating.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed duration since `earlier`.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is actually later, making
    /// the subtraction total (useful for defensive monitor code).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in milliseconds, truncating.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// `true` when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a non-negative factor, rounding to the
    /// nearest microsecond. Negative and non-finite factors clamp to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if !factor.is_finite() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrips_units() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(3).as_micros(), 3);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn duration_roundtrips_units() {
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_millis(250).as_secs_f64(), 0.25);
        assert_eq!(SimDuration::from_secs_f64(0.0005).as_micros(), 500);
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_is_consistent() {
        let t0 = SimTime::from_millis(100);
        let d = SimDuration::from_millis(40);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
        assert_eq!(d * 3, SimDuration::from_millis(120));
        assert_eq!(d / 2, SimDuration::from_millis(20));
    }

    #[test]
    fn saturating_since_is_total() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(9);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(8));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds_and_clamps() {
        let d = SimDuration::from_micros(1_000);
        assert_eq!(d.mul_f64(1.5).as_micros(), 1_500);
        assert_eq!(d.mul_f64(-2.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_readable_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimTime::from_secs(1).to_string(), "1.000s");
    }

    #[test]
    fn min_max_order_correctly() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let ta = SimTime::from_millis(1);
        let tb = SimTime::from_millis(2);
        assert_eq!(ta.max(tb), tb);
        assert_eq!(ta.min(tb), ta);
    }
}
