//! The event calendar.
//!
//! A discrete-event simulation advances by repeatedly popping the earliest
//! scheduled event. [`EventQueue`] is a min-heap keyed on
//! ([`SimTime`], insertion sequence), so events scheduled for the same
//! instant are delivered in the order they were pushed. That FIFO tie-break
//! is what makes whole-system runs reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A deterministic future-event list.
///
/// The payload type `E` is opaque to the kernel; the simulation driver (see
/// the `microsim` crate) defines its own event enum and interprets popped
/// events.
///
/// # Example
///
/// ```
/// use simnet::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(2), "later");
/// q.push(SimTime::from_millis(1), "sooner");
/// q.push(SimTime::from_millis(1), "sooner-second");
///
/// assert_eq!(q.pop().unwrap().1, "sooner");
/// assert_eq!(q.pop().unwrap().1, "sooner-second");
/// assert_eq!(q.pop().unwrap().1, "later");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    ///
    /// Events pushed for the same instant pop in push order.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), 3);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_the_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(30), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }
}
