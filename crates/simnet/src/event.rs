//! The event calendar.
//!
//! A discrete-event simulation advances by repeatedly popping the earliest
//! scheduled event. [`EventQueue`] is a hierarchical hashed timing wheel
//! keyed on ([`SimTime`], insertion sequence): push and pop are O(1)
//! amortized instead of the O(log n) of a binary heap, and events scheduled
//! for the same instant are still delivered in the order they were pushed.
//! That FIFO tie-break is what makes whole-system runs reproducible.
//!
//! [`HeapEventQueue`] keeps the original `BinaryHeap` implementation as a
//! differential-test oracle and benchmark baseline; both queues produce
//! bit-identical pop sequences for any program of pushes and pops.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::mem;

use crate::time::SimTime;

/// Bits per wheel level; each level has `2^SLOT_BITS` slots.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Level `L` buckets events by bits `[6L, 6L+6)` of their
/// microsecond timestamp, so the wheel directly addresses `2^36` µs
/// (~19 hours) ahead of the cursor; anything further waits in an overflow
/// list.
const LEVELS: usize = 6;

/// A deterministic future-event list.
///
/// The payload type `E` is opaque to the kernel; the simulation driver (see
/// the `microsim` crate) defines its own event enum and interprets popped
/// events.
///
/// # Example
///
/// ```
/// use simnet::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(2), "later");
/// q.push(SimTime::from_millis(1), "sooner");
/// q.push(SimTime::from_millis(1), "sooner-second");
///
/// assert_eq!(q.pop().unwrap().1, "sooner");
/// assert_eq!(q.pop().unwrap().1, "sooner-second");
/// assert_eq!(q.pop().unwrap().1, "later");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// `LEVELS * SLOTS` buckets, flattened; bucket `level * SLOTS + slot`
    /// holds events whose level-`level` time digit is `slot`.
    slots: Vec<Vec<Entry<E>>>,
    /// Per-level occupancy bitmask: bit `s` set iff bucket `s` is non-empty.
    occupied: [u64; LEVELS],
    /// Events at or before the cursor, sorted by (time, seq); popped from
    /// the front.
    ready: VecDeque<Entry<E>>,
    /// Events more than the wheel span (~19 h) ahead of the cursor.
    overflow: Vec<Entry<E>>,
    /// Microsecond timestamp the wheel is positioned at: the time of the
    /// most recently drained bucket. All buckets hold events strictly after
    /// it (relative placement is re-derived as the cursor advances).
    cursor: u64,
    /// Reused buffer for redistributing a drained bucket.
    scratch: Vec<Entry<E>>,
    next_seq: u64,
    len: usize,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

/// The queue's snapshot path: every field cloned explicitly, one line per
/// field. A clone is an exact fork — it preserves the `(time, seq)` FIFO
/// counter and the wheel cursor, so the original and the copy pop identical
/// sequences. `simlint`'s `snapshot-complete` rule cross-checks this impl
/// against the struct's field list, making a silently-missing field a CI
/// failure instead of a stale fork.
impl<E: Clone> Clone for EventQueue<E> {
    fn clone(&self) -> Self {
        EventQueue {
            slots: self.slots.clone(),
            occupied: self.occupied,
            ready: self.ready.clone(),
            overflow: self.overflow.clone(),
            cursor: self.cursor,
            scratch: self.scratch.clone(),
            next_seq: self.next_seq,
            len: self.len,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with room for `capacity` soon-to-fire events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            ready: VecDeque::with_capacity(capacity),
            overflow: Vec::new(),
            cursor: 0,
            scratch: Vec::new(),
            next_seq: 0,
            len: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    ///
    /// Events pushed for the same instant pop in push order.
    #[inline]
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        self.insert(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.ready.is_empty() && !self.refill_ready() {
            return None;
        }
        self.len -= 1;
        self.ready.pop_front().map(|e| (e.time, e.payload))
    }

    /// The timestamp of the earliest pending event, if any.
    ///
    /// Takes `&mut self` because peeking may advance the wheel cursor to the
    /// next occupied bucket; the set of pending events is unchanged.
    #[inline]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.ready.is_empty() && !self.refill_ready() {
            return None;
        }
        self.ready.front().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.clear();
        }
        self.occupied = [0; LEVELS];
        self.ready.clear();
        self.overflow.clear();
        self.cursor = 0;
        self.len = 0;
    }

    /// Files `entry` into the ready list, a wheel bucket, or the overflow
    /// list, according to its distance from the cursor.
    #[inline]
    fn insert(&mut self, entry: Entry<E>) {
        let t = entry.time.as_micros();
        let diff = t ^ self.cursor;
        if t <= self.cursor {
            // At or before the cursor (same-instant push, or an event
            // scheduled in the cursor's past): ordered insert keyed on
            // (time, seq). Same-time events always arrive here in ascending
            // seq order, so the partition point lands after them.
            let pos = self
                .ready
                .partition_point(|e| (e.time, e.seq) < (entry.time, entry.seq));
            self.ready.insert(pos, entry);
            return;
        }
        let level = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
        if level >= LEVELS {
            self.overflow.push(entry);
            return;
        }
        let slot = ((t >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + slot].push(entry);
        self.occupied[level] |= 1 << slot;
    }

    /// Ensures `ready` holds the earliest pending events, advancing the
    /// cursor and cascading buckets as needed. Returns `false` when the
    /// queue is empty.
    fn refill_ready(&mut self) -> bool {
        'scan: loop {
            if !self.ready.is_empty() {
                return true;
            }
            for level in 0..LEVELS {
                let shift = SLOT_BITS * level as u32;
                let cursor_slot = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as u32;
                // Buckets at or above the cursor's digit. Lower levels are
                // scanned first, so a non-empty bucket here holds the
                // globally earliest pending events.
                let mask = self.occupied[level] & (u64::MAX << cursor_slot);
                if mask == 0 {
                    continue;
                }
                let slot = mask.trailing_zeros() as usize;
                if level == 0 {
                    // Drain the whole remaining level-0 window in one pass:
                    // slot order is time order, each bucket is one tick wide
                    // with entries already in push order. Batching amortises
                    // the level scan over every event left in the window.
                    let mut rest = mask;
                    while rest != 0 {
                        let s = rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        self.ready.extend(self.slots[s].drain(..));
                    }
                    self.occupied[0] &= !mask;
                    // Advance to the window's last tick; later pushes into
                    // the drained range take the ordered `ready` path.
                    self.cursor |= (SLOTS as u64) - 1;
                    return true;
                }
                self.occupied[level] &= !(1u64 << slot);
                // Cascade: advance to the bucket's start (nothing pends
                // before it) and re-file its entries, which now land at
                // lower levels or directly in `ready`.
                let above = shift + SLOT_BITS;
                self.cursor = ((self.cursor >> above) << above) | ((slot as u64) << shift);
                let mut scratch = mem::take(&mut self.scratch);
                scratch.append(&mut self.slots[level * SLOTS + slot]);
                for entry in scratch.drain(..) {
                    self.insert(entry);
                }
                self.scratch = scratch;
                continue 'scan;
            }
            // Wheel empty: re-seed from the overflow list, if any.
            if self.overflow.is_empty() {
                return false;
            }
            let min_t = self
                .overflow
                .iter()
                .map(|e| e.time.as_micros())
                .min()
                .expect("overflow non-empty");
            self.cursor = min_t;
            let overflow = mem::take(&mut self.overflow);
            for entry in overflow {
                self.insert(entry);
            }
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// The original `BinaryHeap`-backed event queue.
///
/// Kept as the reference implementation: the property tests in
/// `tests/properties.rs` drive it and [`EventQueue`] with identical
/// push/pop programs and assert bit-identical pop sequences, and the
/// benches in `crates/bench` use it as the before/after baseline.
#[derive(Debug, Clone)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        HeapEventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { time, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        HeapEventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), 3);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_the_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(30), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn far_future_events_survive_overflow() {
        let mut q = EventQueue::new();
        // Beyond the wheel span (~19 h) and at the FAR_FUTURE sentinel.
        q.push(SimTime::FAR_FUTURE, "sentinel");
        q.push(SimTime::from_secs(100_000), "distant");
        q.push(SimTime::from_millis(1), "soon");
        assert_eq!(q.pop().unwrap(), (SimTime::from_millis(1), "soon"));
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(100_000), "distant"));
        assert_eq!(q.pop().unwrap(), (SimTime::FAR_FUTURE, "sentinel"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn pushes_before_the_cursor_pop_first() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(50), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        // The cursor now sits at 50 ms; schedule into its past.
        q.push(SimTime::from_millis(10), "past");
        q.push(SimTime::from_millis(60), "future");
        q.push(SimTime::from_millis(10), "past-second");
        assert_eq!(q.pop().unwrap().1, "past");
        assert_eq!(q.pop().unwrap().1, "past-second");
        assert_eq!(q.pop().unwrap().1, "future");
    }

    #[test]
    fn cloned_queue_replays_identically() {
        let mut q = EventQueue::new();
        let mut t = 3u64;
        for i in 0..500u64 {
            t = t.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(i) % 90_000_000;
            q.push(SimTime::from_micros(t), i);
        }
        for _ in 0..120 {
            q.pop();
        }
        // A clone taken mid-stream must drain identically to the original,
        // including the seq counter for subsequent same-time pushes.
        let mut fork = q.clone();
        q.push(SimTime::from_micros(50), 9_999);
        fork.push(SimTime::from_micros(50), 9_999);
        loop {
            let (a, b) = (q.pop(), fork.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn matches_heap_reference_on_dense_interleaving() {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        // Deterministic scatter of pushes across all wheel levels, with
        // interleaved pops.
        let mut t = 1u64;
        for i in 0..2_000u64 {
            t = t.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i) % 300_000_000;
            wheel.push(SimTime::from_micros(t), i);
            heap.push(SimTime::from_micros(t), i);
            if i % 3 == 0 {
                assert_eq!(wheel.pop(), heap.pop());
            }
        }
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
    }
}
