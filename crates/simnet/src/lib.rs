//! Discrete-event simulation kernel for the Grunt Attack reproduction.
//!
//! This crate provides the time base, event calendar, deterministic random
//! number streams and online statistics that every other crate in the
//! workspace builds on. It is intentionally free of any domain knowledge:
//! the microservice platform, workloads and the attack itself are layered on
//! top (see the `microsim`, `workload` and `grunt` crates).
//!
//! # Design
//!
//! * **Time** is measured in integer microseconds ([`SimTime`],
//!   [`SimDuration`]). Integer time makes event ordering total and
//!   reproducible across machines.
//! * **Events** are opaque payloads scheduled on an [`EventQueue`]; ties at
//!   the same timestamp are broken by insertion order (FIFO), which keeps
//!   simulations deterministic.
//! * **Randomness** is organised as named [`RngStream`]s derived from a
//!   single master seed, so adding a new random component never perturbs the
//!   draws of existing ones.
//!
//! # Example
//!
//! ```
//! use simnet::{EventQueue, SimDuration, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::ZERO + SimDuration::from_millis(5), "b");
//! queue.push(SimTime::ZERO, "a");
//! let (t, ev) = queue.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::ZERO, "a"));
//! ```

pub mod alias;
pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use alias::AliasTable;
pub use event::{EventQueue, HeapEventQueue};
pub use rng::{derive_seed, exp_from_unit, lognormal_mean_cv_from_z, RngStream};
pub use stats::{Histogram, SampleSet, SegSamples, SegStore, Welford, SAMPLE_SEG_CAP};
pub use time::{SimDuration, SimTime};
