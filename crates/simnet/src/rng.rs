//! Deterministic, component-scoped randomness.
//!
//! Every random component of a simulation (each user population, each
//! service's demand jitter, the attacker's bot farm, ...) draws from its own
//! [`RngStream`], derived from the experiment's master seed and a stable
//! label. Adding or removing one component therefore never perturbs the
//! draws seen by another, which keeps regression baselines stable.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Derives a child seed from a master seed and a stable textual label.
///
/// Implemented as FNV-1a over the label mixed with SplitMix64 finalisation,
/// so labels that differ in one byte produce unrelated seeds.
///
/// # Example
///
/// ```
/// let a = simnet::derive_seed(42, "users");
/// let b = simnet::derive_seed(42, "attacker");
/// assert_ne!(a, b);
/// assert_eq!(a, simnet::derive_seed(42, "users"));
/// ```
pub fn derive_seed(master: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ master;
    for byte in label.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(h)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A named deterministic random stream.
///
/// Thin wrapper over [`SmallRng`] that adds the distributions the
/// simulations need (exponential inter-arrival times, uniform jitter,
/// weighted choice) without pulling in a distributions crate.
///
/// # Example
///
/// ```
/// use simnet::RngStream;
///
/// let mut rng = RngStream::from_label(7, "demo");
/// let x = rng.exp(1.0);
/// assert!(x >= 0.0);
/// let k = rng.weighted_choice(&[1.0, 0.0]);
/// assert_eq!(k, 0);
/// ```
#[derive(Debug, Clone)]
pub struct RngStream {
    inner: SmallRng,
}

impl RngStream {
    /// Creates a stream directly from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        RngStream {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Creates a stream for component `label` of the experiment seeded by
    /// `master`. See [`derive_seed`].
    pub fn from_label(master: u64, label: &str) -> Self {
        Self::from_seed(derive_seed(master, label))
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Fills `buf` with uniform draws in `[0, 1)`.
    ///
    /// Draws exactly `buf.len()` uniforms in the same order as `buf.len()`
    /// calls to [`unit`](Self::unit), so batched and per-call consumers of
    /// the same stream see bit-identical sequences (the closed-loop user
    /// population prefetches its think/transition uniforms this way).
    pub fn fill_unit(&mut self, buf: &mut [f64]) {
        for u in buf.iter_mut() {
            *u = self.inner.gen::<f64>();
        }
    }

    /// A uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform range must be non-empty");
        lo + (hi - lo) * self.unit()
    }

    /// A uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.gen_range(0..n)
    }

    /// An exponential draw with the given `mean` (not rate).
    ///
    /// A `mean` of zero or less returns `0.0`, which conveniently encodes
    /// "no think time" / "back-to-back arrivals".
    pub fn exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        exp_from_unit(mean, self.unit())
    }

    /// A draw from a (location-scale) lognormal specified by the mean and
    /// coefficient-of-variation of the *resulting* distribution.
    ///
    /// Used for service-demand jitter: microservice compute times are
    /// right-skewed but bounded away from zero.
    pub fn lognormal_mean_cv(&mut self, mean: f64, cv: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        if cv <= 0.0 {
            return mean;
        }
        let z = self.standard_normal();
        lognormal_mean_cv_from_z(mean, cv, z)
    }

    /// A standard normal draw (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.unit().max(1e-12);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fills `buf` with standard normal draws.
    ///
    /// Draws exactly `2 * buf.len()` uniforms in the same order as
    /// `buf.len()` calls to [`standard_normal`](Self::standard_normal), so
    /// batched and per-call consumers of the same stream see bit-identical
    /// sequences.
    pub fn fill_standard_normal(&mut self, buf: &mut [f64]) {
        for z in buf.iter_mut() {
            *z = self.standard_normal();
        }
    }

    /// Draws an index with probability proportional to `weights[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero or less.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        self.weighted_choice_by(weights.iter().copied())
    }

    /// Like [`weighted_choice`](Self::weighted_choice), but over any
    /// re-iterable weight sequence — same draw, same scan, no temporary
    /// buffer. Callers whose weights live inside wider records (e.g. a
    /// `(type, weight)` mix) sample without collecting a `Vec` first.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or the weights do not sum to a
    /// positive value.
    pub fn weighted_choice_by(&mut self, weights: impl Iterator<Item = f64> + Clone) -> usize {
        let mut n = 0usize;
        let mut total = 0.0;
        // simlint: allow(hot-path-alloc) — iterator-handle clone, not data
        for w in weights.clone() {
            total += w;
            n += 1;
        }
        assert!(n > 0, "weighted_choice needs weights");
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.unit() * total;
        for (i, w) in weights.enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        n - 1
    }

    /// A Bernoulli draw that is `true` with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Returns the next raw 64 random bits (for deriving further seeds).
    pub fn next_seed(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A fingerprint of the stream's current position, without advancing it.
    ///
    /// Two streams with equal fingerprints will produce identical draw
    /// sequences; used by the snapshot tests to compare RNG state.
    pub fn fingerprint(&self) -> u64 {
        self.inner.clone().next_u64()
    }
}

/// Maps a uniform draw `u` in `[0, 1)` onto the exponential with the given
/// `mean` (not rate); non-positive means collapse to `0.0`.
///
/// This is the deterministic tail of [`RngStream::exp`]; it is exposed so
/// hot paths can batch the uniform draws (see [`RngStream::fill_unit`]) and
/// apply them later — the batched and per-call paths are bit-identical.
pub fn exp_from_unit(mean: f64, u: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    // Inverse-transform sampling; clamp the uniform away from 0 so ln is
    // finite.
    -mean * u.max(1e-12).ln()
}

/// Maps a standard normal draw `z` onto the lognormal with the given `mean`
/// and coefficient of variation.
///
/// This is the deterministic tail of [`RngStream::lognormal_mean_cv`]; it is
/// exposed so hot paths can batch the normal draws (see
/// [`RngStream::fill_standard_normal`]) and apply the per-call parameters
/// later.
pub fn lognormal_mean_cv_from_z(mean: f64, cv: f64, z: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    if cv <= 0.0 {
        return mean;
    }
    let sigma2 = (1.0 + cv * cv).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    (mu + sigma2.sqrt() * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_stable_and_label_sensitive() {
        assert_eq!(derive_seed(1, "a"), derive_seed(1, "a"));
        assert_ne!(derive_seed(1, "a"), derive_seed(1, "b"));
        assert_ne!(derive_seed(1, "a"), derive_seed(2, "a"));
    }

    #[test]
    fn streams_are_reproducible() {
        let mut a = RngStream::from_label(9, "x");
        let mut b = RngStream::from_label(9, "x");
        for _ in 0..32 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn exp_mean_is_roughly_right() {
        let mut rng = RngStream::from_label(3, "exp");
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exp(7.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 7.0).abs() < 0.3, "mean was {mean}");
    }

    #[test]
    fn exp_of_nonpositive_mean_is_zero() {
        let mut rng = RngStream::from_label(3, "exp0");
        assert_eq!(rng.exp(0.0), 0.0);
        assert_eq!(rng.exp(-1.0), 0.0);
    }

    #[test]
    fn lognormal_matches_requested_mean() {
        let mut rng = RngStream::from_label(4, "ln");
        let n = 40_000;
        let total: f64 = (0..n).map(|_| rng.lognormal_mean_cv(10.0, 0.5)).sum();
        let mean = total / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean was {mean}");
    }

    #[test]
    fn lognormal_zero_cv_is_constant() {
        let mut rng = RngStream::from_label(4, "lncv0");
        assert_eq!(rng.lognormal_mean_cv(5.0, 0.0), 5.0);
    }

    #[test]
    fn batched_normals_match_per_call_sequence() {
        let mut a = RngStream::from_label(11, "batch");
        let mut b = RngStream::from_label(11, "batch");
        let mut buf = [0.0f64; 16];
        a.fill_standard_normal(&mut buf);
        for z in buf {
            assert_eq!(z.to_bits(), b.standard_normal().to_bits());
        }
        // The lognormal split must also reproduce the fused draw exactly.
        let (mean, cv) = (3.25, 0.4);
        let direct = a.lognormal_mean_cv(mean, cv);
        let via_z = lognormal_mean_cv_from_z(mean, cv, b.standard_normal());
        assert_eq!(direct.to_bits(), via_z.to_bits());
    }

    #[test]
    fn batched_units_match_per_call_sequence() {
        let mut a = RngStream::from_label(13, "ubatch");
        let mut b = RngStream::from_label(13, "ubatch");
        let mut buf = [0.0f64; 32];
        a.fill_unit(&mut buf);
        for u in buf {
            assert_eq!(u.to_bits(), b.unit().to_bits());
        }
        // The exponential split must reproduce the fused draw exactly.
        let direct = a.exp(7.0);
        let via_u = exp_from_unit(7.0, b.unit());
        assert_eq!(direct.to_bits(), via_u.to_bits());
    }

    #[test]
    fn exp_from_unit_nonpositive_mean_is_zero() {
        assert_eq!(exp_from_unit(0.0, 0.5), 0.0);
        assert_eq!(exp_from_unit(-3.0, 0.5), 0.0);
    }

    #[test]
    fn fingerprint_tracks_stream_position() {
        let mut a = RngStream::from_label(12, "fp");
        let b = RngStream::from_label(12, "fp");
        assert_eq!(a.fingerprint(), b.fingerprint());
        let before = a.fingerprint();
        a.unit();
        assert_ne!(a.fingerprint(), before);
        // Fingerprinting itself must not advance the stream.
        let c = RngStream::from_label(12, "fp");
        let _ = c.fingerprint();
        assert_eq!(b.clone().fingerprint(), c.fingerprint());
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = RngStream::from_label(5, "w");
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.weighted_choice(&[1.0, 2.0, 1.0])] += 1;
        }
        let mid = counts[1] as f64 / 30_000.0;
        assert!((mid - 0.5).abs() < 0.02, "mid fraction was {mid}");
    }

    #[test]
    #[should_panic(expected = "weights must sum")]
    fn weighted_choice_rejects_zero_weights() {
        RngStream::from_label(5, "w0").weighted_choice(&[0.0, 0.0]);
    }

    #[test]
    fn chance_clamps_probability() {
        let mut rng = RngStream::from_label(6, "p");
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = RngStream::from_label(8, "sh");
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = RngStream::from_label(10, "b");
        for _ in 0..100 {
            assert!(rng.below(7) < 7);
        }
    }
}
