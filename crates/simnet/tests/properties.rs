//! Property-based tests of the simulation kernel's invariants.

use proptest::prelude::*;
use simnet::{
    derive_seed, EventQueue, HeapEventQueue, RngStream, SampleSet, SegSamples, SimDuration,
    SimTime, Welford,
};

proptest! {
    /// Differential test: the timing-wheel queue and the reference
    /// binary-heap queue pop bit-identical (time, payload) sequences — and
    /// therefore identical FIFO sequence numbers — for arbitrary
    /// interleaved push/pop programs, including same-instant bursts,
    /// pushes into the cursor's past, and times beyond the wheel span.
    #[test]
    fn event_queue_matches_heap_reference(
        ops in prop::collection::vec((0u8..8, any::<u64>()), 1..300),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        for (i, &(kind, raw)) in ops.iter().enumerate() {
            if kind == 0 {
                prop_assert_eq!(wheel.pop(), heap.pop());
                prop_assert_eq!(wheel.len(), heap.len());
                continue;
            }
            // Spread pushes across all wheel levels: same-instant bursts
            // (coarse granularity), sub-second, sub-hour, and beyond the
            // ~19 h wheel span (overflow path). Popping interleaved with
            // small times also exercises pushes behind the wheel cursor.
            let t = match kind % 4 {
                1 => raw % 64,
                2 => raw % 1_000_000,
                3 => raw % 100_000_000_000,
                _ => raw % 3_600_000_000,
            };
            wheel.push(SimTime::from_micros(t), i);
            heap.push(SimTime::from_micros(t), i);
            prop_assert_eq!(wheel.len(), heap.len());
        }
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(&w, &h);
            if w.is_none() {
                break;
            }
        }
    }

    /// Events always pop in non-decreasing time order, and equal times pop
    /// in push order (FIFO).
    #[test]
    fn event_queue_is_stable_priority_order(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(*t), (*t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((at, (t, seq))) = q.pop() {
            prop_assert_eq!(at.as_micros(), t);
            if let Some((lt, lseq)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(seq > lseq, "FIFO violated for equal timestamps");
                }
            }
            last = Some((t, seq));
        }
    }

    /// Popping returns exactly the pushed multiset.
    #[test]
    fn event_queue_conserves_events(times in prop::collection::vec(0u64..100, 0..100)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.push(SimTime::from_micros(t), t);
        }
        let mut popped: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        let mut expected = times.clone();
        popped.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
    }

    /// Time arithmetic: (t + d) - d == t and (t + d) - t == d.
    #[test]
    fn time_arithmetic_roundtrips(t in 0u64..1u64 << 40, d in 0u64..1u64 << 40) {
        let t0 = SimTime::from_micros(t);
        let dur = SimDuration::from_micros(d);
        prop_assert_eq!((t0 + dur) - dur, t0);
        prop_assert_eq!((t0 + dur) - t0, dur);
        prop_assert_eq!((t0 + dur).saturating_since(t0), dur);
        prop_assert_eq!(t0.saturating_since(t0 + dur), SimDuration::ZERO);
    }

    /// Welford merge is equivalent to sequential accumulation, for any
    /// split point.
    #[test]
    fn welford_merge_matches_sequential(
        xs in prop::collection::vec(-1e6f64..1e6, 1..200),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((xs.len() as f64) * split_frac) as usize;
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..split] {
            left.push(x);
        }
        for &x in &xs[split..] {
            right.push(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (left.variance() - whole.variance()).abs()
                <= 1e-5 * (1.0 + whole.variance().abs())
        );
    }

    /// Percentiles are monotone in the quantile and bounded by min/max.
    #[test]
    fn percentiles_are_monotone(xs in prop::collection::vec(-1e9f64..1e9, 1..300)) {
        let mut s: SampleSet = xs.iter().copied().collect();
        let lo = s.percentile(0.0);
        let p50 = s.percentile(0.5);
        let p95 = s.percentile(0.95);
        let hi = s.percentile(1.0);
        prop_assert!(lo <= p50 && p50 <= p95 && p95 <= hi);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(lo, min);
        prop_assert_eq!(hi, max);
    }

    /// Differential test: the segmented COW store and the flat reference
    /// collector return bit-identical statistics for arbitrary push/merge
    /// programs, segment capacities, and quantiles.
    #[test]
    fn seg_samples_matches_sample_set(
        chunks in prop::collection::vec(prop::collection::vec(-1e9f64..1e9, 0..40), 1..12),
        seg_cap in 1usize..9,
        qs in prop::collection::vec(0.0f64..1.0, 1..6),
    ) {
        let mut seg = SegSamples::with_seg_cap(seg_cap);
        let mut flat = SampleSet::new();
        for chunk in &chunks {
            // Build each chunk as its own store and merge it in, so the
            // program exercises merge across arbitrary seal phases, not
            // just straight-line pushes.
            let mut sc = SegSamples::with_seg_cap(seg_cap);
            let mut fc = SampleSet::new();
            for &x in chunk {
                sc.push(x);
                fc.push(x);
            }
            seg.merge(&sc);
            flat.merge(&fc);
        }
        prop_assert_eq!(seg.len(), flat.len());
        // Order-sensitive statistics must be compared before any percentile
        // call: `SampleSet::percentile` sorts its samples in place, changing
        // the f64 accumulation order of its mean, while `SegSamples::mean`
        // always folds insertion order.
        prop_assert_eq!(seg.mean(), flat.mean());
        prop_assert_eq!(seg.max(), flat.max());
        for &q in &qs {
            prop_assert_eq!(seg.percentile(q), flat.percentile(q));
        }
        prop_assert_eq!(seg.percentile(0.0), flat.percentile(0.0));
        prop_assert_eq!(seg.percentile(1.0), flat.percentile(1.0));
    }

    /// A forked (cloned) store is fully isolated: pushes to the parent
    /// after the fork never leak into the fork, sealing in the parent
    /// leaves the shared spine of the fork untouched, and both sides keep
    /// matching independent flat references.
    #[test]
    fn seg_samples_fork_is_isolated(
        before in prop::collection::vec(-1e6f64..1e6, 0..60),
        after in prop::collection::vec(-1e6f64..1e6, 1..60),
        seg_cap in 1usize..9,
    ) {
        let mut parent = SegSamples::with_seg_cap(seg_cap);
        let mut flat_before = SampleSet::new();
        for &x in &before {
            parent.push(x);
            flat_before.push(x);
        }
        let mut fork = parent.clone();
        let mut flat_after = flat_before.clone();
        for &x in &after {
            parent.push(x);
            flat_after.push(x);
        }
        prop_assert_eq!(fork.len(), flat_before.len());
        prop_assert_eq!(parent.len(), flat_after.len());
        prop_assert_eq!(fork.mean(), flat_before.mean());
        prop_assert_eq!(parent.mean(), flat_after.mean());
        prop_assert_eq!(fork.percentile(0.5), flat_before.percentile(0.5));
        prop_assert_eq!(parent.percentile(0.5), flat_after.percentile(0.5));
        prop_assert_eq!(fork.percentile(1.0), flat_before.percentile(1.0));
        prop_assert_eq!(parent.percentile(1.0), flat_after.percentile(1.0));
    }

    /// RNG streams derived from the same (seed, label) are identical;
    /// different labels diverge quickly.
    #[test]
    fn rng_streams_deterministic_and_label_scoped(seed in any::<u64>()) {
        let mut a = RngStream::from_label(seed, "x");
        let mut b = RngStream::from_label(seed, "x");
        let mut c = RngStream::from_label(seed, "y");
        let va: Vec<u64> = (0..8).map(|_| a.next_seed()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_seed()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_seed()).collect();
        prop_assert_eq!(&va, &vb);
        prop_assert_ne!(&va, &vc);
        prop_assert_ne!(derive_seed(seed, "x"), derive_seed(seed, "y"));
    }

    /// Exponential and lognormal draws are non-negative and finite.
    #[test]
    fn distributions_stay_sane(seed in any::<u64>(), mean in 0.001f64..100.0, cv in 0.0f64..2.0) {
        let mut rng = RngStream::from_seed(seed);
        for _ in 0..50 {
            let e = rng.exp(mean);
            prop_assert!(e.is_finite() && e >= 0.0);
            let l = rng.lognormal_mean_cv(mean, cv);
            prop_assert!(l.is_finite() && l >= 0.0);
        }
    }

    /// Weighted choice only returns indices with positive weight.
    #[test]
    fn weighted_choice_respects_support(
        seed in any::<u64>(),
        weights in prop::collection::vec(0.0f64..10.0, 1..20),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut rng = RngStream::from_seed(seed);
        for _ in 0..50 {
            let i = rng.weighted_choice(&weights);
            prop_assert!(weights[i] > 0.0, "picked zero-weight index {i}");
        }
    }
}
