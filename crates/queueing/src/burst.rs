//! Burst plans: the attacking unit of the model.

use serde::{Deserialize, Serialize};
use simnet::SimDuration;

/// One attacking burst: requests sent at `rate` req/s for `length_s`
/// seconds (the paper's `B` and `L`; the product is the burst volume
/// `V = B * L` in requests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstPlan {
    /// Burst rate `B`, req/s.
    pub rate: f64,
    /// Burst length `L`, seconds.
    pub length_s: f64,
}

impl BurstPlan {
    /// Creates a plan.
    ///
    /// # Panics
    ///
    /// Panics if the rate or length is negative or non-finite.
    pub fn new(rate: f64, length_s: f64) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "rate must be finite, >= 0");
        assert!(
            length_s.is_finite() && length_s >= 0.0,
            "length must be finite, >= 0"
        );
        BurstPlan { rate, length_s }
    }

    /// The burst volume `V = B * L` in requests.
    pub fn volume(&self) -> f64 {
        self.rate * self.length_s
    }

    /// Number of whole requests in the burst (what a bot farm actually
    /// sends).
    pub fn request_count(&self) -> u64 {
        self.volume().round() as u64
    }

    /// Gap between consecutive requests within the burst.
    ///
    /// Returns the whole length for single-request bursts.
    pub fn inter_request_gap(&self) -> SimDuration {
        let n = self.request_count();
        if n <= 1 {
            SimDuration::from_secs_f64(self.length_s)
        } else {
            SimDuration::from_secs_f64(self.length_s / n as f64)
        }
    }

    /// The burst length as a [`SimDuration`].
    pub fn length(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.length_s)
    }

    /// Scales the length by `factor`, keeping the rate (the Commander's
    /// adaptation knob — `t_damage` and `P_MB` are linear in `L`).
    pub fn scale_length(&self, factor: f64) -> BurstPlan {
        BurstPlan::new(self.rate, (self.length_s * factor).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_is_rate_times_length() {
        let b = BurstPlan::new(200.0, 0.5);
        assert_eq!(b.volume(), 100.0);
        assert_eq!(b.request_count(), 100);
    }

    #[test]
    fn gap_divides_length() {
        let b = BurstPlan::new(100.0, 1.0);
        assert_eq!(b.inter_request_gap(), SimDuration::from_millis(10));
        let single = BurstPlan::new(1.0, 0.5);
        assert_eq!(single.inter_request_gap(), SimDuration::from_millis(500));
    }

    #[test]
    fn scale_length_keeps_rate() {
        let b = BurstPlan::new(100.0, 0.4).scale_length(0.5);
        assert_eq!(b.rate, 100.0);
        assert!((b.length_s - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rate must be finite")]
    fn negative_rate_rejected() {
        BurstPlan::new(-1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "length must be finite")]
    fn nan_length_rejected() {
        BurstPlan::new(1.0, f64::NAN);
    }
}
