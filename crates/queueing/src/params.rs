//! Model parameters (the paper's Table II) for one critical path.

use serde::{Deserialize, Serialize};

/// Per-service parameters along a critical path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageParams {
    /// Queue size `Q_i` — worker-thread slots (a queued request holds one
    /// slot in every upstream service).
    pub queue_size: f64,
    /// Capacity serving attack requests `C_{i,A}` (req/s).
    pub capacity_attack: f64,
    /// Capacity serving legitimate requests `C_{i,L}` (req/s).
    pub capacity_legit: f64,
    /// Legitimate request rate `λ_i` reaching this service (req/s).
    pub lambda: f64,
}

impl StageParams {
    /// Convenience constructor for a stage whose attack and legitimate
    /// capacities coincide (attack requests mimic legitimate ones, so this
    /// is the common case).
    pub fn symmetric(queue_size: f64, capacity: f64, lambda: f64) -> Self {
        StageParams {
            queue_size,
            capacity_attack: capacity,
            capacity_legit: capacity,
            lambda,
        }
    }

    /// Capacity from platform facts: `cores * replicas / demand_seconds`.
    ///
    /// # Panics
    ///
    /// Panics if `demand_seconds` is not positive.
    pub fn capacity_from_demand(cores: u32, replicas: u32, demand_seconds: f64) -> f64 {
        assert!(demand_seconds > 0.0, "demand must be positive");
        f64::from(cores) * f64::from(replicas) / demand_seconds
    }
}

/// Parameters of one critical path: the chain of stages from the entry
/// service (index 0) downward, plus the bottleneck index `n` and the index
/// `s` of the shared upstream microservice relevant to the blocking effect
/// under study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathParams {
    /// Stage parameters, entry service first.
    pub stages: Vec<StageParams>,
    /// Index of the bottleneck microservice (`n` in the equations).
    pub bottleneck: usize,
    /// Index of the shared upstream microservice (`s`), i.e. where queued
    /// requests block other critical paths.
    pub shared_upstream: usize,
}

impl PathParams {
    /// Creates path parameters.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty, or the indices are out of range, or
    /// `shared_upstream > bottleneck` (the shared service must be upstream
    /// of, or equal to, the bottleneck).
    pub fn new(stages: Vec<StageParams>, bottleneck: usize, shared_upstream: usize) -> Self {
        assert!(!stages.is_empty(), "path needs at least one stage");
        assert!(bottleneck < stages.len(), "bottleneck index out of range");
        assert!(
            shared_upstream <= bottleneck,
            "shared upstream must not be below the bottleneck"
        );
        PathParams {
            stages,
            bottleneck,
            shared_upstream,
        }
    }

    /// The bottleneck stage (`n`).
    pub fn bottleneck_stage(&self) -> &StageParams {
        &self.stages[self.bottleneck]
    }

    /// The shared upstream stage (`s`).
    pub fn shared_stage(&self) -> &StageParams {
        &self.stages[self.shared_upstream]
    }

    /// Stages strictly between the shared upstream service and the
    /// bottleneck, plus the bottleneck itself — the downstream queues that
    /// must fill before cross-tier overflow reaches the shared service.
    pub fn downstream_stages(&self) -> &[StageParams] {
        &self.stages[self.shared_upstream + 1..=self.bottleneck]
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` when the path has no stages (construction forbids this).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

impl PathParams {
    /// Extracts Table II parameters for one request type from a deployed
    /// topology: capacities from `cores * replicas / demand`, queue sizes
    /// from the worker pools, and per-stage legitimate rates from
    /// `offered` (pairs of request type and offered req/s — every type
    /// whose chain visits a stage contributes its rate there).
    ///
    /// The bottleneck index is the lowest-capacity *blockable* stage; the
    /// shared-upstream index is the first blockable stage (where
    /// cross-tier overflow accumulates).
    ///
    /// Returns `None` when the chain contains no blockable stage.
    ///
    /// # Example
    ///
    /// ```
    /// use callgraph::{ServiceSpec, TopologyBuilder};
    /// use queueing::PathParams;
    /// use simnet::SimDuration;
    ///
    /// let mut b = TopologyBuilder::new();
    /// let gw = b.add_service(ServiceSpec::new("gw").cores(4).threads(64));
    /// let db = b.add_service(ServiceSpec::new("db").cores(1).threads(16));
    /// let rt = b.add_request_type(
    ///     "r",
    ///     vec![
    ///         (gw, SimDuration::from_millis(2)),
    ///         (db, SimDuration::from_millis(10)),
    ///     ],
    /// );
    /// let topo = b.build();
    /// let params = PathParams::from_topology(&topo, rt, &[(rt, 50.0)]).unwrap();
    /// assert_eq!(params.bottleneck, 1); // db: 100 req/s < gw: 2000 req/s
    /// assert_eq!(params.bottleneck_stage().capacity_attack, 100.0);
    /// assert_eq!(params.bottleneck_stage().lambda, 50.0);
    /// ```
    pub fn from_topology(
        topology: &callgraph::Topology,
        request_type: callgraph::RequestTypeId,
        offered: &[(callgraph::RequestTypeId, f64)],
    ) -> Option<PathParams> {
        let path = topology.path(request_type);
        let mut stages = Vec::with_capacity(path.len());
        for step in path.steps() {
            let spec = topology.service(step.service);
            let demand = step.demand.as_secs_f64();
            let capacity = if demand > 0.0 {
                StageParams::capacity_from_demand(spec.cores, spec.replicas, demand)
            } else {
                f64::INFINITY
            };
            // Legitimate rate at this stage: every offered type whose
            // chain visits the service.
            let lambda: f64 = offered
                .iter()
                .filter(|(rt, _)| topology.path(*rt).visits(step.service))
                .map(|(_, rate)| *rate)
                .sum();
            stages.push(StageParams {
                queue_size: f64::from(spec.threads) * f64::from(spec.replicas),
                capacity_attack: capacity,
                capacity_legit: capacity,
                lambda,
            });
        }
        let blockable: Vec<usize> = (0..path.len())
            .filter(|&i| topology.service(path.steps()[i].service).blockable)
            .collect();
        let first = *blockable.first()?;
        let bottleneck = blockable
            .iter()
            .copied()
            .min_by(|&a, &b| {
                stages[a]
                    .capacity_attack
                    .partial_cmp(&stages[b].capacity_attack)
                    .expect("capacity not NaN")
            })
            .expect("non-empty blockable set");
        Some(PathParams::new(stages, bottleneck, first.min(bottleneck)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use callgraph::{ServiceSpec, TopologyBuilder};
    use simnet::SimDuration;

    #[test]
    fn capacity_from_demand_is_rate() {
        // 1 core, 1 replica, 10 ms demand -> 100 req/s.
        assert_eq!(StageParams::capacity_from_demand(1, 1, 0.01), 100.0);
        assert_eq!(StageParams::capacity_from_demand(2, 3, 0.01), 600.0);
    }

    #[test]
    fn from_topology_extracts_table_ii() {
        let mut b = TopologyBuilder::new();
        let nginx = b.add_service(
            ServiceSpec::new("nginx")
                .cores(8)
                .threads(4096)
                .blockable(false),
        );
        let hub = b.add_service(ServiceSpec::new("hub").cores(4).threads(32));
        let db = b.add_service(ServiceSpec::new("db").cores(1).threads(16));
        let ra = b.add_request_type(
            "a",
            vec![
                (nginx, SimDuration::from_micros(300)),
                (hub, SimDuration::from_millis(4)),
                (db, SimDuration::from_millis(10)),
            ],
        );
        let rb = b.add_request_type(
            "b",
            vec![
                (nginx, SimDuration::from_micros(300)),
                (hub, SimDuration::from_millis(4)),
            ],
        );
        let topo = b.build();
        let params =
            PathParams::from_topology(&topo, ra, &[(ra, 40.0), (rb, 60.0)]).expect("blockable");
        // Bottleneck: db (100 req/s); shared upstream: hub (the first
        // blockable stage), not the unblockable nginx frontend.
        assert_eq!(params.bottleneck, 2);
        assert_eq!(params.shared_upstream, 1);
        assert_eq!(params.bottleneck_stage().capacity_attack, 100.0);
        assert_eq!(params.bottleneck_stage().queue_size, 16.0);
        // Lambda at the hub: both types; at the db: only `a`.
        assert_eq!(params.stages[1].lambda, 100.0);
        assert_eq!(params.stages[2].lambda, 40.0);
    }

    #[test]
    fn from_topology_none_without_blockable_stage() {
        let mut b = TopologyBuilder::new();
        let cdn = b.add_service(ServiceSpec::new("cdn").cores(8).blockable(false));
        let rt = b.add_request_type("s", vec![(cdn, SimDuration::from_millis(1))]);
        let topo = b.build();
        assert!(PathParams::from_topology(&topo, rt, &[(rt, 10.0)]).is_none());
    }

    #[test]
    #[should_panic(expected = "demand must be positive")]
    fn zero_demand_rejected() {
        StageParams::capacity_from_demand(1, 1, 0.0);
    }

    #[test]
    fn downstream_stages_span_shared_to_bottleneck() {
        let s = StageParams::symmetric(32.0, 100.0, 10.0);
        let p = PathParams::new(vec![s; 4], 3, 1);
        assert_eq!(p.downstream_stages().len(), 2);
        let p2 = PathParams::new(vec![s; 4], 1, 1);
        assert!(p2.downstream_stages().is_empty());
    }

    #[test]
    #[should_panic(expected = "not be below the bottleneck")]
    fn shared_below_bottleneck_rejected() {
        let s = StageParams::symmetric(32.0, 100.0, 10.0);
        PathParams::new(vec![s; 3], 1, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bottleneck_out_of_range_rejected() {
        let s = StageParams::symmetric(32.0, 100.0, 10.0);
        PathParams::new(vec![s; 2], 5, 0);
    }
}
