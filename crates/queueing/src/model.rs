//! Equations (1)–(9): burst impact and persistent blocking.

use crate::burst::BurstPlan;
use crate::params::PathParams;

/// Equation (1): total queue created by a burst when an *execution
/// blocking* effect is triggered (the millibottleneck sits on the shared
/// upstream microservice `s`).
///
/// `Q_B = L * (λ_s + B - C_{s,A})` — burst length times the queue build-up
/// rate. Returns zero when the burst does not exceed the service rate.
pub fn execution_queue(burst: BurstPlan, lambda_s: f64, capacity_s_attack: f64) -> f64 {
    (burst.length_s * (lambda_s + burst.rate - capacity_s_attack)).max(0.0)
}

/// Equation (2): time `l_n` to fill up the queue of a downstream
/// microservice during a burst.
///
/// `l_n = Q_n / (λ_n + B - C_{n,A})`. Returns `f64::INFINITY` when the
/// burst cannot overload the stage (fill-up never happens).
pub fn fill_time(queue_size: f64, lambda: f64, burst_rate: f64, capacity_attack: f64) -> f64 {
    let rate = lambda + burst_rate - capacity_attack;
    if rate <= 0.0 {
        f64::INFINITY
    } else {
        queue_size / rate
    }
}

/// Equation (3): total queue created by a burst when a *cross-tier queue
/// blocking* effect is triggered: the burst must first fill every
/// downstream queue between the shared upstream service and the bottleneck
/// before queue build-up reaches the shared service.
///
/// `Q_B = (L - Σ l_i) * (Σ λ_i + B - C_{n,A})` for `i` in `s..=n`.
/// Returns zero when the burst is too short to overflow the downstream
/// queues.
pub fn cross_tier_queue(burst: BurstPlan, path: &PathParams) -> f64 {
    let n = path.bottleneck_stage();
    // Σ l_i over the stages strictly below the shared upstream service.
    let fill: f64 = path
        .downstream_stages()
        .iter()
        .map(|st| fill_time(st.queue_size, st.lambda, burst.rate, st.capacity_attack))
        .sum();
    if !fill.is_finite() || fill >= burst.length_s {
        return 0.0;
    }
    let lambda_sum: f64 = path.stages[path.shared_upstream..=path.bottleneck]
        .iter()
        .map(|st| st.lambda)
        .sum();
    ((burst.length_s - fill) * (lambda_sum + burst.rate - n.capacity_attack)).max(0.0)
}

/// Equation (4): damage latency of a burst — the time to drain the queue
/// it built at the bottleneck's service rate.
///
/// `t_damage = Q_B / C_{n,A}`.
///
/// # Panics
///
/// Panics if `capacity_attack` is not positive.
pub fn damage_latency(queue: f64, capacity_attack: f64) -> f64 {
    assert!(capacity_attack > 0.0, "capacity must be positive");
    (queue / capacity_attack).max(0.0)
}

/// Equation (5): millibottleneck length created by a burst (adapted from
/// Tail Attack).
///
/// `P_MB = B*L / C_{n,A} * 1 / (1 - λ_n / C_{n,L})`.
///
/// Returns `f64::INFINITY` when the legitimate load alone saturates the
/// bottleneck (`λ_n >= C_{n,L}`).
///
/// # Panics
///
/// Panics if either capacity is not positive.
pub fn millibottleneck_length(
    burst: BurstPlan,
    capacity_attack: f64,
    lambda: f64,
    capacity_legit: f64,
) -> f64 {
    assert!(capacity_attack > 0.0, "attack capacity must be positive");
    assert!(capacity_legit > 0.0, "legit capacity must be positive");
    let headroom = 1.0 - lambda / capacity_legit;
    if headroom <= 0.0 {
        return f64::INFINITY;
    }
    burst.volume() / capacity_attack / headroom
}

/// Inverse of Equation (5): the burst length `L` that produces a target
/// millibottleneck length at a fixed burst rate `B`.
///
/// Returns `None` when the legitimate load alone saturates the bottleneck
/// or the rate is not positive.
pub fn solve_length_for_pmb(
    pmb_target_s: f64,
    rate: f64,
    capacity_attack: f64,
    lambda: f64,
    capacity_legit: f64,
) -> Option<f64> {
    if rate <= 0.0 {
        return None;
    }
    let headroom = 1.0 - lambda / capacity_legit;
    if headroom <= 0.0 {
        return None;
    }
    Some(pmb_target_s * capacity_attack * headroom / rate)
}

/// The smallest burst rate that overloads a stage: `B > C_A - λ` (queue
/// build-up rate just positive). `margin` adds headroom, e.g. `1.1` for
/// 10 % above the threshold.
pub fn min_saturating_rate(capacity_attack: f64, lambda: f64, margin: f64) -> f64 {
    ((capacity_attack - lambda).max(0.0) * margin).max(1.0)
}

/// Equation (6): total damage latency of the opening mixed burst over `m`
/// critical paths — the sum of the per-path damage latencies.
pub fn group_total_damage(per_path_damage: &[f64]) -> f64 {
    per_path_damage.iter().sum()
}

/// Equation (7): remaining damage latency after the first interval `I_0`:
/// `t_min = t_D - I_0` (clamped at zero — the blocking effect cannot go
/// negative).
pub fn group_min_damage(total_damage: f64, first_interval: f64) -> f64 {
    (total_damage - first_interval).max(0.0)
}

/// Equation (9): the interval that keeps `t_min` constant across
/// maintenance bursts — each burst must arrive exactly when its own damage
/// has drained: `I_i = t_damage,i` (follows from the fixed point of
/// Equation (8), `t_min = t_min + t_damage,i - I_i`).
pub fn maintenance_interval(damage_latency_i: f64) -> f64 {
    damage_latency_i.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::StageParams;

    fn burst(rate: f64, length_s: f64) -> BurstPlan {
        BurstPlan { rate, length_s }
    }

    #[test]
    fn execution_queue_matches_hand_calc() {
        // λ=20, B=180, C=100: build-up 100/s for 0.5 s -> 50 queued.
        let q = execution_queue(burst(180.0, 0.5), 20.0, 100.0);
        assert!((q - 50.0).abs() < 1e-9);
    }

    #[test]
    fn execution_queue_clamps_at_zero() {
        assert_eq!(execution_queue(burst(10.0, 1.0), 0.0, 100.0), 0.0);
    }

    #[test]
    fn fill_time_matches_hand_calc() {
        // Q=32, overload rate 100/s -> 0.32 s.
        assert!((fill_time(32.0, 20.0, 180.0, 100.0) - 0.32).abs() < 1e-9);
    }

    #[test]
    fn fill_time_infinite_without_overload() {
        assert_eq!(fill_time(32.0, 10.0, 50.0, 100.0), f64::INFINITY);
    }

    #[test]
    fn cross_tier_queue_subtracts_fill_time() {
        // Two stages: shared upstream (idx 0) and bottleneck (idx 1).
        let shared = StageParams::symmetric(64.0, 1000.0, 50.0);
        let bn = StageParams::symmetric(20.0, 100.0, 20.0);
        let path = PathParams::new(vec![shared, bn], 1, 0);
        // B=120: bottleneck overload rate = 20+120-100 = 40/s; fill 20
        // slots in 0.5 s. Burst of 1 s leaves 0.5 s of build-up at rate
        // (50+20+120-100) = 90/s -> 45 queued.
        let q = cross_tier_queue(burst(120.0, 1.0), &path);
        assert!((q - 45.0).abs() < 1e-9, "q = {q}");
    }

    #[test]
    fn cross_tier_queue_zero_when_burst_too_short() {
        let shared = StageParams::symmetric(64.0, 1000.0, 50.0);
        let bn = StageParams::symmetric(20.0, 100.0, 20.0);
        let path = PathParams::new(vec![shared, bn], 1, 0);
        // Fill takes 0.5 s; a 0.3 s burst never overflows.
        assert_eq!(cross_tier_queue(burst(120.0, 0.3), &path), 0.0);
    }

    #[test]
    fn cross_tier_queue_zero_without_overload() {
        let shared = StageParams::symmetric(64.0, 1000.0, 50.0);
        let bn = StageParams::symmetric(20.0, 100.0, 20.0);
        let path = PathParams::new(vec![shared, bn], 1, 0);
        assert_eq!(cross_tier_queue(burst(50.0, 10.0), &path), 0.0);
    }

    #[test]
    fn damage_latency_is_drain_time() {
        assert!((damage_latency(50.0, 100.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pmb_scales_linearly_with_volume() {
        // No legit load: P_MB = B*L/C.
        let p1 = millibottleneck_length(burst(100.0, 0.25), 100.0, 0.0, 100.0);
        let p2 = millibottleneck_length(burst(100.0, 0.5), 100.0, 0.0, 100.0);
        assert!((p1 - 0.25).abs() < 1e-12);
        assert!((p2 / p1 - 2.0).abs() < 1e-12, "linear in L");
    }

    #[test]
    fn pmb_amplified_by_background_load() {
        // 50% legit utilisation doubles the bottleneck length.
        let base = millibottleneck_length(burst(100.0, 0.25), 100.0, 0.0, 100.0);
        let loaded = millibottleneck_length(burst(100.0, 0.25), 100.0, 50.0, 100.0);
        assert!((loaded / base - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pmb_infinite_when_already_saturated() {
        assert_eq!(
            millibottleneck_length(burst(1.0, 1.0), 100.0, 120.0, 100.0),
            f64::INFINITY
        );
    }

    #[test]
    fn solve_length_inverts_pmb() {
        let rate = 150.0;
        let l = solve_length_for_pmb(0.5, rate, 100.0, 40.0, 100.0).unwrap();
        let pmb = millibottleneck_length(burst(rate, l), 100.0, 40.0, 100.0);
        assert!((pmb - 0.5).abs() < 1e-9);
    }

    #[test]
    fn solve_length_none_when_saturated() {
        assert_eq!(solve_length_for_pmb(0.5, 100.0, 100.0, 150.0, 100.0), None);
        assert_eq!(solve_length_for_pmb(0.5, 0.0, 100.0, 10.0, 100.0), None);
    }

    #[test]
    fn min_saturating_rate_has_floor() {
        assert_eq!(min_saturating_rate(100.0, 40.0, 1.0), 60.0);
        assert_eq!(min_saturating_rate(100.0, 40.0, 1.5), 90.0);
        // Already saturated by legit load: any positive rate works.
        assert_eq!(min_saturating_rate(100.0, 200.0, 1.0), 1.0);
    }

    #[test]
    fn group_equations_6_7_9() {
        let damages = [0.4, 0.3, 0.5];
        let t_d = group_total_damage(&damages);
        assert!((t_d - 1.2).abs() < 1e-12);
        let t_min = group_min_damage(t_d, 0.2);
        assert!((t_min - 1.0).abs() < 1e-12);
        assert_eq!(group_min_damage(0.5, 2.0), 0.0);
        // Equation (8) fixed point: interval equal to per-burst damage
        // keeps t_min constant.
        let i1 = maintenance_interval(damages[0]);
        assert_eq!(i1, 0.4);
        let t_after = t_min + damages[0] - i1;
        assert!((t_after - t_min).abs() < 1e-12);
    }
}
