//! Attack planning: the Commander's initialisation (Section IV-D) as pure
//! functions over the analytic model.
//!
//! Given a path's parameters and the attacker's goals, derive the burst
//! rate, the longest stealthy burst length, the per-burst impact and the
//! maintenance interval — the three initialisation steps the paper
//! describes, computable offline once the parameters are known (or
//! estimated by probing).

use serde::{Deserialize, Serialize};

use crate::burst::BurstPlan;
use crate::model::{
    cross_tier_queue, damage_latency, execution_queue, millibottleneck_length, min_saturating_rate,
    solve_length_for_pmb,
};
use crate::params::PathParams;

/// The attacker's goals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackGoals {
    /// Stealth: maximum millibottleneck length, seconds (paper: 0.5).
    pub pmb_limit_s: f64,
    /// Damage: minimum persistent latency, seconds (paper: 1.0).
    pub damage_goal_s: f64,
    /// Headroom multiplier applied to the minimum saturating rate.
    pub rate_margin: f64,
}

impl Default for AttackGoals {
    fn default() -> Self {
        AttackGoals {
            pmb_limit_s: 0.5,
            damage_goal_s: 1.0,
            rate_margin: 1.3,
        }
    }
}

/// A per-path plan derived from the model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathPlan {
    /// The burst to fire.
    pub burst: BurstPlan,
    /// Predicted queue build-up (requests).
    pub queue: f64,
    /// Predicted damage latency per burst, seconds (Equation 4).
    pub damage_s: f64,
    /// Predicted millibottleneck length, seconds (Equation 5).
    pub pmb_s: f64,
    /// Maintenance interval `I_i = t_damage_i`, seconds (Equation 9).
    pub interval_s: f64,
}

/// Errors from [`plan_path`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// The bottleneck is already saturated by legitimate load: any burst
    /// creates an unbounded millibottleneck, so no *stealthy* plan exists.
    AlreadySaturated,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::AlreadySaturated => {
                write!(f, "bottleneck saturated by legitimate load alone")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Derives the stealthiest effective burst plan for one path: the minimum
/// saturating rate (step 1), the longest length within the stealth limit
/// (step 2), and the resulting impact and maintenance interval.
///
/// # Errors
///
/// Returns [`PlanError::AlreadySaturated`] when the legitimate load alone
/// saturates the bottleneck (no stealthy attack is possible — or needed).
///
/// # Example
///
/// ```
/// use queueing::{plan_path, AttackGoals, PathParams, StageParams};
///
/// let hub = StageParams::symmetric(32.0, 800.0, 200.0);
/// let bn = StageParams::symmetric(20.0, 250.0, 70.0);
/// let path = PathParams::new(vec![hub, bn], 1, 0);
/// let plan = plan_path(&path, AttackGoals::default())?;
/// assert!(plan.pmb_s <= 0.5 + 1e-9);
/// assert!(plan.burst.volume() > 0.0);
/// # Ok::<(), queueing::PlanError>(())
/// ```
pub fn plan_path(path: &PathParams, goals: AttackGoals) -> Result<PathPlan, PlanError> {
    let bn = path.bottleneck_stage();
    let rate = min_saturating_rate(bn.capacity_attack, bn.lambda, goals.rate_margin);
    let length = solve_length_for_pmb(
        goals.pmb_limit_s,
        rate,
        bn.capacity_attack,
        bn.lambda,
        bn.capacity_legit,
    )
    .ok_or(PlanError::AlreadySaturated)?;
    let burst = BurstPlan::new(rate, length);
    // The effective queue is whichever blocking mechanism applies: direct
    // execution blocking at the bottleneck, or the cross-tier cascade.
    let queue =
        execution_queue(burst, bn.lambda, bn.capacity_attack).max(cross_tier_queue(burst, path));
    let damage_s = damage_latency(queue, bn.capacity_attack);
    let pmb_s = millibottleneck_length(burst, bn.capacity_attack, bn.lambda, bn.capacity_legit);
    Ok(PathPlan {
        burst,
        queue,
        damage_s,
        pmb_s,
        interval_s: damage_s,
    })
}

/// Step 3: the smallest number of paths whose summed per-burst damages
/// reach the goal (Equation 6) — assuming the plans are fired as an
/// opening mixed burst and then maintained per Equation 9.
///
/// Returns `None` when even all paths together fall short.
pub fn min_paths_for_goal(plans: &[PathPlan], goals: AttackGoals) -> Option<usize> {
    let mut damages: Vec<f64> = plans.iter().map(|p| p.damage_s).collect();
    damages.sort_by(|a, b| b.partial_cmp(a).expect("damage not NaN"));
    let mut total = 0.0;
    for (i, d) in damages.iter().enumerate() {
        total += d;
        if total >= goals.damage_goal_s {
            return Some(i + 1);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::StageParams;

    fn path(capacity: f64, lambda: f64) -> PathParams {
        let hub = StageParams::symmetric(32.0, capacity * 3.0, lambda * 2.0);
        let bn = StageParams::symmetric(20.0, capacity, lambda);
        PathParams::new(vec![hub, bn], 1, 0)
    }

    #[test]
    fn plan_respects_stealth_limit() {
        let plan = plan_path(&path(300.0, 90.0), AttackGoals::default()).expect("plannable");
        assert!(plan.pmb_s <= 0.5 + 1e-9, "P_MB {}", plan.pmb_s);
        assert!(plan.burst.rate > 0.0 && plan.burst.length_s > 0.0);
        assert_eq!(plan.interval_s, plan.damage_s);
    }

    #[test]
    fn saturated_bottleneck_is_unplannable() {
        assert_eq!(
            plan_path(&path(100.0, 120.0), AttackGoals::default()),
            Err(PlanError::AlreadySaturated)
        );
    }

    #[test]
    fn higher_background_load_means_less_volume() {
        // The classic low-volume property: the busier the target, the
        // cheaper the attack.
        let quiet = plan_path(&path(300.0, 30.0), AttackGoals::default()).expect("plannable");
        let busy = plan_path(&path(300.0, 150.0), AttackGoals::default()).expect("plannable");
        assert!(
            busy.burst.volume() < quiet.burst.volume(),
            "busy {} vs quiet {}",
            busy.burst.volume(),
            quiet.burst.volume()
        );
    }

    #[test]
    fn min_paths_accumulates_damage() {
        let goals = AttackGoals::default();
        let plans: Vec<PathPlan> = [0.45, 0.40, 0.30]
            .iter()
            .map(|&damage_s| PathPlan {
                burst: BurstPlan::new(100.0, 0.4),
                queue: 40.0,
                damage_s,
                pmb_s: 0.45,
                interval_s: damage_s,
            })
            .collect();
        // 0.45 + 0.40 < 1.0; adding 0.30 crosses it.
        assert_eq!(min_paths_for_goal(&plans, goals), Some(3));
        assert_eq!(min_paths_for_goal(&plans[..1], goals), None);
        assert_eq!(min_paths_for_goal(&[], goals), None);
    }

    #[test]
    fn error_is_a_real_error_type() {
        let err = PlanError::AlreadySaturated;
        assert!(!err.to_string().is_empty());
        let _: &dyn std::error::Error = &err;
    }
}
