//! Candidate-path ranking within a dependency group (Section III-C).
//!
//! Priority rules from the paper:
//!
//! 1. Paths whose bottleneck can trigger an *execution blocking* effect —
//!    "upstream" paths of a sequential dependency (their bottleneck is a
//!    shared upstream microservice of another path) — come first: they
//!    block other paths directly, without filling downstream queues.
//! 2. All remaining paths trigger cross-tier queue blocking and are ranked
//!    by the volume `V = B * L` needed to create the reference
//!    millibottleneck (`P_MB = 500 ms`): lower volume means stealthier,
//!    so it ranks higher.

use callgraph::{DependencyGroups, PairwiseDependency, RequestTypeId};
use serde::{Deserialize, Serialize};

/// How a path blocks the rest of its group when attacked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockingKind {
    /// The path's bottleneck is an upstream microservice shared with (the
    /// bottleneck path of) at least one other group member: a
    /// millibottleneck there blocks others directly.
    Execution,
    /// The path must overflow downstream queues into a shared upstream
    /// service to block others.
    CrossTier,
}

/// One ranked candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankedPath {
    /// The request type / critical path.
    pub request_type: RequestTypeId,
    /// How it blocks the group.
    pub kind: BlockingKind,
    /// Volume (requests) needed for the reference millibottleneck.
    pub reference_volume: f64,
}

/// Determines each group member's [`BlockingKind`] from the pairwise
/// classification: a member is `Execution` if it is the upstream side of
/// any sequential dependency, or shares its bottleneck with another member
/// (either path's millibottleneck blocks the other directly).
pub fn blocking_kind(
    member: RequestTypeId,
    group: &[RequestTypeId],
    deps: &DependencyGroups,
) -> BlockingKind {
    for other in group {
        if *other == member {
            continue;
        }
        match deps.pairwise(member, *other) {
            PairwiseDependency::Sequential { upstream } if upstream == member => {
                return BlockingKind::Execution;
            }
            PairwiseDependency::SharedBottleneck => return BlockingKind::Execution,
            _ => {}
        }
    }
    BlockingKind::CrossTier
}

/// Ranks the members of one dependency group for attacking.
///
/// `reference_volume(rt)` supplies, per path, the burst volume needed to
/// trigger the reference millibottleneck (from the model or from probing).
///
/// Execution-blocking paths come first (ordered by volume, then id);
/// cross-tier paths follow, also by ascending volume.
pub fn rank_candidates(
    group: &[RequestTypeId],
    deps: &DependencyGroups,
    mut reference_volume: impl FnMut(RequestTypeId) -> f64,
) -> Vec<RankedPath> {
    let mut ranked: Vec<RankedPath> = group
        .iter()
        .map(|&rt| RankedPath {
            request_type: rt,
            kind: blocking_kind(rt, group, deps),
            reference_volume: reference_volume(rt),
        })
        .collect();
    ranked.sort_by(|a, b| {
        let class = |k: BlockingKind| match k {
            BlockingKind::Execution => 0,
            BlockingKind::CrossTier => 1,
        };
        class(a.kind)
            .cmp(&class(b.kind))
            .then(
                a.reference_volume
                    .partial_cmp(&b.reference_volume)
                    .expect("volumes must not be NaN"),
            )
            .then(a.request_type.cmp(&b.request_type))
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use callgraph::{ExecutionPath, ServiceId};
    use simnet::SimDuration;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn chain(rt: u32, steps: &[(u32, u64)]) -> ExecutionPath {
        ExecutionPath::from_chain(
            RequestTypeId::new(rt),
            steps
                .iter()
                .map(|&(s, d)| (ServiceId::new(s), ms(d)))
                .collect(),
        )
    }

    /// Group: path 0 bottlenecks on svc1 which is upstream on path 1's
    /// chain (sequential, 0 upstream); path 2 shares only the gateway with
    /// both (parallel).
    fn demo() -> (Vec<RequestTypeId>, DependencyGroups) {
        let paths = vec![
            chain(0, &[(0, 1), (1, 9)]),
            chain(1, &[(0, 1), (1, 2), (2, 9)]),
            chain(2, &[(0, 1), (3, 9)]),
        ];
        let deps = DependencyGroups::from_ground_truth(&paths);
        (
            vec![0, 1, 2].into_iter().map(RequestTypeId::new).collect(),
            deps,
        )
    }

    #[test]
    fn upstream_sequential_is_execution_kind() {
        let (group, deps) = demo();
        assert_eq!(
            blocking_kind(RequestTypeId::new(0), &group, &deps),
            BlockingKind::Execution
        );
        assert_eq!(
            blocking_kind(RequestTypeId::new(1), &group, &deps),
            BlockingKind::CrossTier
        );
        assert_eq!(
            blocking_kind(RequestTypeId::new(2), &group, &deps),
            BlockingKind::CrossTier
        );
    }

    #[test]
    fn shared_bottleneck_is_execution_kind() {
        let paths = vec![chain(0, &[(0, 1), (1, 9)]), chain(1, &[(2, 1), (1, 9)])];
        let deps = DependencyGroups::from_ground_truth(&paths);
        let group = vec![RequestTypeId::new(0), RequestTypeId::new(1)];
        assert_eq!(
            blocking_kind(RequestTypeId::new(0), &group, &deps),
            BlockingKind::Execution
        );
        assert_eq!(
            blocking_kind(RequestTypeId::new(1), &group, &deps),
            BlockingKind::Execution
        );
    }

    #[test]
    fn ranking_puts_execution_first_then_by_volume() {
        let (group, deps) = demo();
        // Path 2 needs less volume than path 1.
        let ranked = rank_candidates(&group, &deps, |rt| match rt.index() {
            0 => 100.0,
            1 => 80.0,
            _ => 40.0,
        });
        let order: Vec<usize> = ranked.iter().map(|r| r.request_type.index()).collect();
        assert_eq!(order, vec![0, 2, 1]);
        assert_eq!(ranked[0].kind, BlockingKind::Execution);
        assert_eq!(ranked[0].reference_volume, 100.0);
    }

    #[test]
    fn equal_volume_breaks_ties_by_id() {
        let (group, deps) = demo();
        let ranked = rank_candidates(&group, &deps, |_| 50.0);
        let order: Vec<usize> = ranked.iter().map(|r| r.request_type.index()).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }
}
