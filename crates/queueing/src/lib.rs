//! The analytic queueing-network model of Grunt attack (Section III).
//!
//! This crate implements, as pure functions over explicit parameter
//! structs, the paper's model of how an attacking burst translates into
//! queue build-up, damage latency and millibottleneck length — Equations
//! (1) through (9) with the notation of Table II — plus the candidate-path
//! ranking of Section III-C.
//!
//! The model serves three roles in the reproduction:
//!
//! 1. It predicts the impact of a burst, which the experiment harness
//!    compares against simulator measurements (model-validation tests).
//! 2. Its linear relationship between burst length `L` and both
//!    `t_damage` and `P_MB` underpins the Kalman-filter feedback control
//!    of the Commander (`grunt` crate).
//! 3. The ranking tells the attacker which critical paths inside a
//!    dependency group achieve the damage goal with minimum volume.
//!
//! # Units
//!
//! Rates and capacities are requests/second (`f64`), times are seconds
//! (`f64`). Conversions to the simulator's integer [`simnet::SimDuration`]
//! happen at the edges.

pub mod burst;
pub mod model;
pub mod params;
pub mod plan;
pub mod ranking;

pub use burst::BurstPlan;
pub use model::{
    cross_tier_queue, damage_latency, execution_queue, fill_time, group_min_damage,
    group_total_damage, maintenance_interval, millibottleneck_length, min_saturating_rate,
    solve_length_for_pmb,
};
pub use params::{PathParams, StageParams};
pub use plan::{min_paths_for_goal, plan_path, AttackGoals, PathPlan, PlanError};
pub use ranking::{rank_candidates, BlockingKind, RankedPath};
