//! Property-based tests of the analytic model's invariants.

use proptest::prelude::*;
use queueing::{
    cross_tier_queue, damage_latency, execution_queue, fill_time, group_min_damage,
    group_total_damage, maintenance_interval, millibottleneck_length, min_saturating_rate,
    solve_length_for_pmb, BurstPlan, PathParams, StageParams,
};

fn stage_strategy() -> impl Strategy<Value = StageParams> {
    (1.0f64..100.0, 50.0f64..2_000.0, 0.0f64..500.0)
        .prop_map(|(q, c, l)| StageParams::symmetric(q, c, l.min(c * 0.95)))
}

proptest! {
    /// Equation (1): the queue is non-negative and monotone in both burst
    /// rate and length.
    #[test]
    fn execution_queue_monotone(
        lambda in 0.0f64..500.0,
        capacity in 50.0f64..2_000.0,
        rate in 0.0f64..3_000.0,
        len in 0.0f64..2.0,
    ) {
        let q = execution_queue(BurstPlan::new(rate, len), lambda, capacity);
        prop_assert!(q >= 0.0);
        let q_faster = execution_queue(BurstPlan::new(rate + 100.0, len), lambda, capacity);
        let q_longer = execution_queue(BurstPlan::new(rate, len + 0.5), lambda, capacity);
        prop_assert!(q_faster >= q);
        prop_assert!(q_longer >= q);
    }

    /// Equation (2): fill time is positive, and shrinks (or stays) as the
    /// burst rate grows; sub-saturating rates never fill.
    #[test]
    fn fill_time_behaviour(
        q in 1.0f64..100.0,
        lambda in 0.0f64..500.0,
        capacity in 50.0f64..2_000.0,
        rate in 0.0f64..3_000.0,
    ) {
        let t = fill_time(q, lambda, rate, capacity);
        prop_assert!(t > 0.0);
        if lambda + rate <= capacity {
            prop_assert!(t.is_infinite());
        } else {
            let t2 = fill_time(q, lambda, rate + 100.0, capacity);
            prop_assert!(t2 <= t);
        }
    }

    /// Equation (3): cross-tier queue never exceeds the execution-blocking
    /// queue at the bottleneck (filling downstream pools only costs
    /// volume) and is zero for sub-saturating bursts.
    #[test]
    fn cross_tier_queue_bounds(
        stages in prop::collection::vec(stage_strategy(), 2..5),
        rate in 0.0f64..3_000.0,
        len in 0.01f64..2.0,
    ) {
        let bottleneck = stages.len() - 1;
        let path = PathParams::new(stages.clone(), bottleneck, 0);
        let burst = BurstPlan::new(rate, len);
        let q = cross_tier_queue(burst, &path);
        prop_assert!(q >= 0.0);
        let bn = path.bottleneck_stage();
        if rate + bn.lambda <= bn.capacity_attack {
            prop_assert_eq!(q, 0.0, "no overload, no queue");
        }
    }

    /// Equations (4)/(5): non-negative; P_MB scales linearly in L (the
    /// relationship the Kalman feedback exploits).
    #[test]
    fn pmb_linear_in_length(
        rate in 1.0f64..2_000.0,
        len in 0.01f64..1.0,
        capacity in 50.0f64..2_000.0,
        util in 0.0f64..0.95,
    ) {
        let lambda = capacity * util;
        let p1 = millibottleneck_length(BurstPlan::new(rate, len), capacity, lambda, capacity);
        let p2 = millibottleneck_length(
            BurstPlan::new(rate, len * 2.0),
            capacity,
            lambda,
            capacity,
        );
        prop_assert!(p1 >= 0.0);
        prop_assert!((p2 / p1 - 2.0).abs() < 1e-9, "P_MB must be linear in L");
        prop_assert!(damage_latency(rate * len, capacity) >= 0.0);
    }

    /// `solve_length_for_pmb` inverts Equation (5) exactly.
    #[test]
    fn pmb_solver_inverts(
        rate in 1.0f64..2_000.0,
        target in 0.05f64..1.0,
        capacity in 50.0f64..2_000.0,
        util in 0.0f64..0.9,
    ) {
        let lambda = capacity * util;
        let l = solve_length_for_pmb(target, rate, capacity, lambda, capacity)
            .expect("unsaturated system is solvable");
        let measured = millibottleneck_length(BurstPlan::new(rate, l), capacity, lambda, capacity);
        prop_assert!((measured - target).abs() < 1e-9);
    }

    /// The minimum saturating rate actually saturates (queue build-up is
    /// positive at any margin above 1).
    #[test]
    fn min_rate_saturates(
        capacity in 50.0f64..2_000.0,
        util in 0.0f64..0.95,
        margin in 1.01f64..2.0,
    ) {
        let lambda = capacity * util;
        let rate = min_saturating_rate(capacity, lambda, margin);
        let q = execution_queue(BurstPlan::new(rate, 1.0), lambda, capacity);
        prop_assert!(q >= 0.0);
        if capacity > lambda + 1.0 {
            prop_assert!(q > 0.0, "rate {rate} must overload C={capacity} λ={lambda}");
        }
    }

    /// Equations (6)-(9): totals add up, maintenance keeps the fixed point.
    #[test]
    fn group_equations_fixed_point(
        damages in prop::collection::vec(0.0f64..2.0, 1..6),
        first_interval in 0.0f64..1.0,
    ) {
        let t_d = group_total_damage(&damages);
        prop_assert!((t_d - damages.iter().sum::<f64>()).abs() < 1e-12);
        let t_min = group_min_damage(t_d, first_interval);
        prop_assert!(t_min >= 0.0);
        // Maintaining with I_i = t_damage_i leaves t_min unchanged (Eq 8).
        for &d in &damages {
            let after = t_min + d - maintenance_interval(d);
            prop_assert!((after - t_min).abs() < 1e-12);
        }
    }

    /// Burst plans: volume arithmetic and pacing are consistent.
    #[test]
    fn burst_plan_consistency(rate in 0.0f64..5_000.0, len in 0.0f64..3.0) {
        let b = BurstPlan::new(rate, len);
        prop_assert!((b.volume() - rate * len).abs() < 1e-9);
        let n = b.request_count();
        if n > 1 {
            let total = b.inter_request_gap().as_secs_f64() * n as f64;
            prop_assert!((total - len).abs() < 0.01 * len.max(0.001), "gaps must tile L");
        }
        let half = b.scale_length(0.5);
        prop_assert!((half.volume() - b.volume() / 2.0).abs() < 1e-9);
    }
}
