//! Defense substrate: the detection stack the Grunt attacker must evade.
//!
//! Three layers, mirroring Section V-B's deployment and Section VI's
//! proposed mitigations:
//!
//! * [`Ids`] — a Snort-style rule engine over the gateway access log:
//!   content and protocol sanity rules (never triggered by well-formed
//!   HTTP), the user-behaviour *inter-request interval* rule (< 3 s
//!   between consecutive requests of one session is flagged), and
//!   resource-based alerts driven by 1 s monitor samples.
//! * [`RateShield`] — AWS-Shield-style per-IP request budget per 5-minute
//!   window.
//! * [`CorrelationDefense`] — the candidate mitigation of Section VI:
//!   detect millibottlenecks with fine-grained monitoring and flag
//!   sessions whose submissions are statistically concentrated inside
//!   bottleneck windows (the Tail-attack defense). This is what a
//!   *future* defender could do — the paper's deployed stack cannot.
//!
//! All detectors run offline over recorded logs; since alerts never feed
//! back into the platform, this is equivalent to live operation and keeps
//! the simulator honest.

pub mod correlation;
pub mod ids;
pub mod shield;

pub use correlation::{CorrelationDefense, CorrelationReport, SessionScore};
pub use ids::{Alert, AlertKind, Ids, IdsConfig, IdsReport};
pub use shield::{RateShield, ShieldVerdict};
