//! AWS-Shield-style per-IP rate limiting.

use std::collections::BTreeMap;

use microsim::Metrics;
use simnet::{SimDuration, SimTime};

/// Verdict of the shield for one source IP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShieldVerdict {
    /// The IP never exceeded the budget.
    Allowed,
    /// The IP would have been blocked starting at the given time.
    Blocked(SimTime),
}

/// Per-IP request budget per rolling window (the paper cites AWS Shield's
/// requests-per-IP-per-5-minutes limit as the rate-based bot defence the
/// attacker sizes the bot farm against).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateShield {
    /// Window length (5 minutes by default).
    pub window: SimDuration,
    /// Maximum requests per IP per window.
    pub max_per_window: u32,
}

impl RateShield {
    /// Creates a shield.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero or the budget is zero.
    pub fn new(window: SimDuration, max_per_window: u32) -> Self {
        assert!(!window.is_zero(), "shield window must be positive");
        assert!(max_per_window > 0, "shield budget must be positive");
        RateShield {
            window,
            max_per_window,
        }
    }

    /// A representative production configuration: 100 requests per IP per
    /// 5 minutes.
    pub fn paper_default() -> Self {
        Self::new(SimDuration::from_secs(300), 100)
    }

    /// Replays the access log and returns the verdict per IP (sliding
    /// window, exact).
    ///
    /// Routes through the per-segment IP index ([`RateShield::analyze_window`]
    /// with an all-covering window); [`RateShield::analyze_naive`] is the
    /// full-scan ground truth and returns an identical map.
    pub fn analyze(&self, metrics: &Metrics) -> BTreeMap<u32, ShieldVerdict> {
        self.analyze_window(metrics, SimTime::ZERO, SimTime::FAR_FUTURE)
    }

    /// Verdict per IP over the submissions in `[from, to)` only, collated
    /// straight from the access log's per-segment IP posting lists —
    /// O(matching + ips·segments), not O(run). The collation is already
    /// chronological per IP, so no re-sort is needed.
    pub fn analyze_window(
        &self,
        metrics: &Metrics,
        from: SimTime,
        to: SimTime,
    ) -> BTreeMap<u32, ShieldVerdict> {
        metrics
            .access_log()
            .per_ip_times_in(from, to)
            .into_iter()
            .map(|(ip, times)| (ip, self.verdict(&times)))
            .collect()
    }

    /// Full-scan ground truth for [`RateShield::analyze_window`]: same
    /// window semantics via a predicate filter over the whole log. Kept as
    /// the differential-testing oracle.
    pub fn analyze_naive(
        &self,
        metrics: &Metrics,
        from: SimTime,
        to: SimTime,
    ) -> BTreeMap<u32, ShieldVerdict> {
        let mut per_ip: BTreeMap<u32, Vec<SimTime>> = BTreeMap::new();
        for e in metrics.access_log() {
            if e.at >= from && e.at < to {
                per_ip.entry(e.origin.ip).or_default().push(e.at);
            }
        }
        per_ip
            .into_iter()
            .map(|(ip, times)| (ip, self.verdict(&times)))
            .collect()
    }

    /// Exact sliding-window check over one IP's chronological submission
    /// times (the access log is appended in time order, so no sort).
    fn verdict(&self, times: &[SimTime]) -> ShieldVerdict {
        let w = self.window;
        let mut lo = 0usize;
        for hi in 0..times.len() {
            while times[hi].saturating_since(times[lo]) >= w {
                lo += 1;
            }
            if (hi - lo + 1) as u32 > self.max_per_window {
                return ShieldVerdict::Blocked(times[hi]);
            }
        }
        ShieldVerdict::Allowed
    }

    /// Number of IPs that would have been blocked.
    pub fn blocked_count(&self, metrics: &Metrics) -> usize {
        self.analyze(metrics)
            .values()
            .filter(|v| matches!(v, ShieldVerdict::Blocked(_)))
            .count()
    }

    /// The smallest bot-farm size that keeps a campaign of `total_requests`
    /// requests over `duration` under the per-IP budget — the sizing rule
    /// the attacker applies (Table III's "Bot" column).
    ///
    /// # Panics
    ///
    /// Panics if `duration` is zero.
    pub fn min_bots(&self, total_requests: u64, duration: SimDuration) -> u64 {
        assert!(!duration.is_zero(), "campaign duration must be positive");
        let windows = (duration.as_micros() as f64 / self.window.as_micros() as f64).ceil();
        let budget_per_ip = u64::from(self.max_per_window) * windows as u64;
        total_requests.div_ceil(budget_per_ip.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use callgraph::{RequestTypeId, ServiceSpec, TopologyBuilder};
    use microsim::agents::FixedRate;
    use microsim::{Origin, SimConfig, Simulation};

    fn run(interval_ms: u64, count: u64) -> Metrics {
        let mut b = TopologyBuilder::new();
        let gw = b.add_service(ServiceSpec::new("gw").threads(64).demand_cv(0.0));
        b.add_request_type("r", vec![(gw, SimDuration::from_millis(1))]);
        let mut sim = Simulation::new(b.build(), SimConfig::default());
        sim.add_agent(Box::new(
            FixedRate::new(
                RequestTypeId::new(0),
                SimDuration::from_millis(interval_ms),
                count,
            )
            .with_origin(Origin::attack(0xDEAD, 1)),
        ));
        sim.run_until(SimTime::from_secs(600));
        sim.into_metrics()
    }

    #[test]
    fn under_budget_ip_allowed() {
        // 50 requests over 500 s — well under 100 per 5 min.
        let m = run(10_000, 50);
        let shield = RateShield::paper_default();
        assert_eq!(shield.blocked_count(&m), 0);
        assert_eq!(shield.analyze(&m)[&0xDEAD], ShieldVerdict::Allowed);
    }

    #[test]
    fn over_budget_ip_blocked() {
        // 150 requests in 15 s — way over budget.
        let m = run(100, 150);
        let shield = RateShield::paper_default();
        assert_eq!(shield.blocked_count(&m), 1);
        match shield.analyze(&m)[&0xDEAD] {
            ShieldVerdict::Blocked(at) => {
                assert!(at <= SimTime::from_secs(15));
            }
            ShieldVerdict::Allowed => panic!("expected a block"),
        }
    }

    #[test]
    fn sliding_window_is_exact() {
        // Exactly the budget within a window stays allowed; one more in
        // the same window blocks.
        let shield = RateShield::new(SimDuration::from_secs(10), 3);
        let m = run(5_000, 3); // 3 requests over 10 s; boundary excluded
        assert_eq!(shield.blocked_count(&m), 0);
        let m = run(1_000, 4); // 4 requests in 3 s
        assert_eq!(shield.blocked_count(&m), 1);
    }

    #[test]
    fn indexed_analysis_matches_naive_scan() {
        let m = run(100, 150);
        let shield = RateShield::new(SimDuration::from_secs(10), 40);
        assert_eq!(
            shield.analyze(&m),
            shield.analyze_naive(&m, SimTime::ZERO, SimTime::FAR_FUTURE)
        );
        for (a, b) in [(0u64, 15u64), (2, 9), (9, 2), (14, 60), (5, 5)] {
            let (from, to) = (SimTime::from_secs(a), SimTime::from_secs(b));
            assert_eq!(
                shield.analyze_window(&m, from, to),
                shield.analyze_naive(&m, from, to),
                "window [{a}s, {b}s)"
            );
        }
        // A short window sees fewer requests: the IP that is blocked over
        // the full run can stay allowed inside a narrow window.
        let narrow = shield.analyze_window(&m, SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(narrow[&0xDEAD], ShieldVerdict::Allowed);
    }

    #[test]
    fn min_bots_sizing() {
        let shield = RateShield::paper_default();
        // 20-minute campaign = 4 windows; per-IP budget 400.
        assert_eq!(shield.min_bots(400, SimDuration::from_secs(1200)), 1);
        assert_eq!(shield.min_bots(401, SimDuration::from_secs(1200)), 2);
        assert_eq!(shield.min_bots(100_000, SimDuration::from_secs(1200)), 250);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        RateShield::new(SimDuration::from_secs(1), 0);
    }
}
