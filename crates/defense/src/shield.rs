//! AWS-Shield-style per-IP rate limiting.

use std::collections::BTreeMap;

use microsim::Metrics;
use simnet::{SimDuration, SimTime};

/// Verdict of the shield for one source IP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShieldVerdict {
    /// The IP never exceeded the budget.
    Allowed,
    /// The IP would have been blocked starting at the given time.
    Blocked(SimTime),
}

/// Per-IP request budget per rolling window (the paper cites AWS Shield's
/// requests-per-IP-per-5-minutes limit as the rate-based bot defence the
/// attacker sizes the bot farm against).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateShield {
    /// Window length (5 minutes by default).
    pub window: SimDuration,
    /// Maximum requests per IP per window.
    pub max_per_window: u32,
}

impl RateShield {
    /// Creates a shield.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero or the budget is zero.
    pub fn new(window: SimDuration, max_per_window: u32) -> Self {
        assert!(!window.is_zero(), "shield window must be positive");
        assert!(max_per_window > 0, "shield budget must be positive");
        RateShield {
            window,
            max_per_window,
        }
    }

    /// A representative production configuration: 100 requests per IP per
    /// 5 minutes.
    pub fn paper_default() -> Self {
        Self::new(SimDuration::from_secs(300), 100)
    }

    /// Replays the access log and returns the verdict per IP (sliding
    /// window, exact).
    pub fn analyze(&self, metrics: &Metrics) -> BTreeMap<u32, ShieldVerdict> {
        let mut per_ip: BTreeMap<u32, Vec<SimTime>> = BTreeMap::new();
        for e in metrics.access_log() {
            per_ip.entry(e.origin.ip).or_default().push(e.at);
        }
        per_ip
            .into_iter()
            .map(|(ip, mut times)| {
                times.sort_unstable();
                let mut verdict = ShieldVerdict::Allowed;
                let w = self.window;
                let mut lo = 0usize;
                for hi in 0..times.len() {
                    while times[hi].saturating_since(times[lo]) >= w {
                        lo += 1;
                    }
                    if (hi - lo + 1) as u32 > self.max_per_window {
                        verdict = ShieldVerdict::Blocked(times[hi]);
                        break;
                    }
                }
                (ip, verdict)
            })
            .collect()
    }

    /// Number of IPs that would have been blocked.
    pub fn blocked_count(&self, metrics: &Metrics) -> usize {
        self.analyze(metrics)
            .values()
            .filter(|v| matches!(v, ShieldVerdict::Blocked(_)))
            .count()
    }

    /// The smallest bot-farm size that keeps a campaign of `total_requests`
    /// requests over `duration` under the per-IP budget — the sizing rule
    /// the attacker applies (Table III's "Bot" column).
    ///
    /// # Panics
    ///
    /// Panics if `duration` is zero.
    pub fn min_bots(&self, total_requests: u64, duration: SimDuration) -> u64 {
        assert!(!duration.is_zero(), "campaign duration must be positive");
        let windows = (duration.as_micros() as f64 / self.window.as_micros() as f64).ceil();
        let budget_per_ip = u64::from(self.max_per_window) * windows as u64;
        total_requests.div_ceil(budget_per_ip.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use callgraph::{RequestTypeId, ServiceSpec, TopologyBuilder};
    use microsim::agents::FixedRate;
    use microsim::{Origin, SimConfig, Simulation};

    fn run(interval_ms: u64, count: u64) -> Metrics {
        let mut b = TopologyBuilder::new();
        let gw = b.add_service(ServiceSpec::new("gw").threads(64).demand_cv(0.0));
        b.add_request_type("r", vec![(gw, SimDuration::from_millis(1))]);
        let mut sim = Simulation::new(b.build(), SimConfig::default());
        sim.add_agent(Box::new(
            FixedRate::new(
                RequestTypeId::new(0),
                SimDuration::from_millis(interval_ms),
                count,
            )
            .with_origin(Origin::attack(0xDEAD, 1)),
        ));
        sim.run_until(SimTime::from_secs(600));
        sim.into_metrics()
    }

    #[test]
    fn under_budget_ip_allowed() {
        // 50 requests over 500 s — well under 100 per 5 min.
        let m = run(10_000, 50);
        let shield = RateShield::paper_default();
        assert_eq!(shield.blocked_count(&m), 0);
        assert_eq!(shield.analyze(&m)[&0xDEAD], ShieldVerdict::Allowed);
    }

    #[test]
    fn over_budget_ip_blocked() {
        // 150 requests in 15 s — way over budget.
        let m = run(100, 150);
        let shield = RateShield::paper_default();
        assert_eq!(shield.blocked_count(&m), 1);
        match shield.analyze(&m)[&0xDEAD] {
            ShieldVerdict::Blocked(at) => {
                assert!(at <= SimTime::from_secs(15));
            }
            ShieldVerdict::Allowed => panic!("expected a block"),
        }
    }

    #[test]
    fn sliding_window_is_exact() {
        // Exactly the budget within a window stays allowed; one more in
        // the same window blocks.
        let shield = RateShield::new(SimDuration::from_secs(10), 3);
        let m = run(5_000, 3); // 3 requests over 10 s; boundary excluded
        assert_eq!(shield.blocked_count(&m), 0);
        let m = run(1_000, 4); // 4 requests in 3 s
        assert_eq!(shield.blocked_count(&m), 1);
    }

    #[test]
    fn min_bots_sizing() {
        let shield = RateShield::paper_default();
        // 20-minute campaign = 4 windows; per-IP budget 400.
        assert_eq!(shield.min_bots(400, SimDuration::from_secs(1200)), 1);
        assert_eq!(shield.min_bots(401, SimDuration::from_secs(1200)), 2);
        assert_eq!(shield.min_bots(100_000, SimDuration::from_secs(1200)), 250);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        RateShield::new(SimDuration::from_secs(1), 0);
    }
}
