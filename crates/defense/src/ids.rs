//! A Snort-style rule-based IDS over the gateway access log.

use std::collections::BTreeMap;

use callgraph::ServiceId;
use microsim::Metrics;
use simnet::{SimDuration, SimTime};
use telemetry::CoarseMonitor;

/// Which rule class produced an alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertKind {
    /// Malformed request content (header manipulation etc.). Grunt sends
    /// legitimate HTTP, so this never fires against it.
    Content,
    /// Transaction-protocol violation (e.g. TCP split handshake). Never
    /// fires against Grunt either.
    Protocol,
    /// Two consecutive requests of one session closer than the
    /// user-behaviour threshold (3 s in the paper's configuration).
    IntervalViolation,
    /// A service's 1 s CPU utilisation exceeded the resource threshold.
    ResourceSaturation,
}

/// One alert raised by the IDS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alert {
    /// When the offending event happened.
    pub at: SimTime,
    /// Rule class.
    pub kind: AlertKind,
    /// Offending session (interval rule), if applicable.
    pub session: Option<u64>,
    /// Offending service (resource rule), if applicable.
    pub service: Option<ServiceId>,
    /// Whether the flagged traffic was ground-truth attack traffic —
    /// evaluation-only field, not available to a real IDS.
    pub hit_attacker: bool,
}

/// IDS configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdsConfig {
    /// Minimum allowed interval between two consecutive requests of one
    /// session. The paper derives 3 s from the 95% confidence interval of
    /// a production user-behaviour model.
    pub min_session_interval: SimDuration,
    /// 1 s-utilisation threshold for resource alerts.
    pub resource_threshold: f64,
    /// Largest plausible request payload; anything bigger is "malformed".
    pub max_request_bytes: u64,
}

impl Default for IdsConfig {
    fn default() -> Self {
        IdsConfig {
            min_session_interval: SimDuration::from_secs(3),
            resource_threshold: 0.95,
            max_request_bytes: 1 << 20,
        }
    }
}

/// Outcome of an IDS analysis pass.
#[derive(Debug, Clone, PartialEq)]
pub struct IdsReport {
    alerts: Vec<Alert>,
}

impl IdsReport {
    /// All alerts in time order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Alerts of one kind.
    pub fn of_kind(&self, kind: AlertKind) -> impl Iterator<Item = &Alert> + '_ {
        self.alerts.iter().filter(move |a| a.kind == kind)
    }

    /// Number of alerts whose subject was ground-truth attack traffic.
    pub fn attacker_hits(&self) -> usize {
        self.alerts.iter().filter(|a| a.hit_attacker).count()
    }

    /// `true` when no rule fired at all — the attacker stayed fully under
    /// the radar.
    pub fn is_clean(&self) -> bool {
        self.alerts.is_empty()
    }
}

/// The rule engine.
///
/// # Example
///
/// ```no_run
/// # let metrics: microsim::Metrics = unimplemented!();
/// use defense::{Ids, IdsConfig};
///
/// let ids = Ids::new(IdsConfig::default());
/// let report = ids.analyze(&metrics);
/// println!("{} alerts", report.alerts().len());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ids {
    config: IdsConfig,
}

impl Ids {
    /// Creates an IDS with the given configuration.
    pub fn new(config: IdsConfig) -> Self {
        Ids { config }
    }

    /// Runs every rule class over the recorded run.
    ///
    /// Routes through the access-log index ([`Ids::analyze_window`] with an
    /// all-covering window); [`Ids::analyze_naive`] is the full-scan ground
    /// truth and returns an identical report.
    pub fn analyze(&self, metrics: &Metrics) -> IdsReport {
        self.analyze_window(metrics, SimTime::ZERO, SimTime::FAR_FUTURE)
    }

    /// Runs every rule class over the entries submitted in `[from, to)`
    /// (and, for the resource rule, the 1 s samples starting in the
    /// window), touching only matching log entries via the per-segment
    /// IP/session indexes — O(matching + sessions·segments), not O(run).
    ///
    /// Window semantics: a rule sees exactly the in-window entries; an
    /// interval pair straddling `from` is not flagged because its first
    /// half is outside the window.
    pub fn analyze_window(&self, metrics: &Metrics, from: SimTime, to: SimTime) -> IdsReport {
        let mut alerts = Vec::new();
        self.content_rules_indexed(metrics, from, to, &mut alerts);
        self.interval_rule_indexed(metrics, from, to, &mut alerts);
        self.resource_rule_indexed(metrics, from, to, &mut alerts);
        alerts.sort_by_key(|a| a.at);
        IdsReport { alerts }
    }

    /// Full-scan ground truth for [`Ids::analyze_window`]: same window
    /// semantics, same report, but walks the entire access log with a
    /// predicate filter. Kept as the differential-testing oracle.
    pub fn analyze_naive(&self, metrics: &Metrics, from: SimTime, to: SimTime) -> IdsReport {
        let mut alerts = Vec::new();
        self.content_rules_naive(metrics, from, to, &mut alerts);
        self.interval_rule_naive(metrics, from, to, &mut alerts);
        self.resource_rule_naive(metrics, from, to, &mut alerts);
        alerts.sort_by_key(|a| a.at);
        IdsReport { alerts }
    }

    /// Content / protocol sanity: in the simulator every submission is a
    /// well-formed request of a known type, so these fire only on
    /// structurally absurd payload sizes — the hook exists to demonstrate
    /// that Grunt's traffic cannot trip this rule class. Indexed: visits
    /// only the in-window run of each segment.
    fn content_rules_indexed(
        &self,
        metrics: &Metrics,
        from: SimTime,
        to: SimTime,
        alerts: &mut Vec<Alert>,
    ) {
        metrics.access_log().for_each_in(from, to, |e| {
            if e.bytes > self.config.max_request_bytes {
                alerts.push(Alert {
                    at: e.at,
                    kind: AlertKind::Content,
                    session: Some(e.origin.session),
                    service: None,
                    hit_attacker: e.origin.is_attack,
                });
            }
        });
    }

    /// Full-scan twin of [`Ids::content_rules_indexed`].
    fn content_rules_naive(
        &self,
        metrics: &Metrics,
        from: SimTime,
        to: SimTime,
        alerts: &mut Vec<Alert>,
    ) {
        for e in metrics.access_log() {
            if e.at >= from && e.at < to && e.bytes > self.config.max_request_bytes {
                alerts.push(Alert {
                    at: e.at,
                    kind: AlertKind::Content,
                    session: Some(e.origin.session),
                    service: None,
                    hit_attacker: e.origin.is_attack,
                });
            }
        }
    }

    /// The user-behaviour interval rule: consecutive in-window requests of
    /// one session closer than the threshold are flagged. Indexed: walks
    /// each session's clipped posting lists instead of threading a
    /// last-seen map through a full scan, then restores global submission
    /// order via the entries' log offsets so the emitted alerts are
    /// identical to the naive scan's.
    fn interval_rule_indexed(
        &self,
        metrics: &Metrics,
        from: SimTime,
        to: SimTime,
        alerts: &mut Vec<Alert>,
    ) {
        let log = metrics.access_log();
        let mut flagged: Vec<(usize, Alert)> = Vec::new();
        for (session, times) in log.per_session_in(from, to) {
            let mut prev: Option<SimTime> = None;
            for (offset, at) in times {
                if let Some(p) = prev {
                    if at.saturating_since(p) < self.config.min_session_interval {
                        let e = log.get(offset).expect("indexed offset in range");
                        flagged.push((
                            offset,
                            Alert {
                                at,
                                kind: AlertKind::IntervalViolation,
                                session: Some(session),
                                service: None,
                                hit_attacker: e.origin.is_attack,
                            },
                        ));
                    }
                }
                prev = Some(at);
            }
        }
        flagged.sort_by_key(|(offset, _)| *offset);
        alerts.extend(flagged.into_iter().map(|(_, alert)| alert));
    }

    /// Full-scan twin of [`Ids::interval_rule_indexed`].
    fn interval_rule_naive(
        &self,
        metrics: &Metrics,
        from: SimTime,
        to: SimTime,
        alerts: &mut Vec<Alert>,
    ) {
        let mut last_by_session: BTreeMap<u64, SimTime> = BTreeMap::new();
        for e in metrics.access_log() {
            if e.at < from || e.at >= to {
                continue;
            }
            if let Some(prev) = last_by_session.insert(e.origin.session, e.at) {
                if e.at.saturating_since(prev) < self.config.min_session_interval {
                    alerts.push(Alert {
                        at: e.at,
                        kind: AlertKind::IntervalViolation,
                        session: Some(e.origin.session),
                        service: None,
                        hit_attacker: e.origin.is_attack,
                    });
                }
            }
        }
    }

    /// Resource-based alerts at 1 s granularity: the finest the deployed
    /// cloud monitors support. Sub-second millibottlenecks average out and
    /// stay invisible here. Samples whose window starts in `[from, to)`
    /// are considered. Indexed: aggregates only the in-window coarse
    /// buckets ([`CoarseMonitor::over`] locates them arithmetically), so
    /// the cost is O(in-window samples), not O(run).
    fn resource_rule_indexed(
        &self,
        metrics: &Metrics,
        from: SimTime,
        to: SimTime,
        alerts: &mut Vec<Alert>,
    ) {
        let coarse = CoarseMonitor::over(metrics, SimDuration::from_secs(1), from, to);
        self.resource_alerts(metrics, &coarse, from, to, alerts);
    }

    /// Full-scan twin of [`Ids::resource_rule_indexed`]: aggregates the
    /// whole run, then filters by the window predicate.
    fn resource_rule_naive(
        &self,
        metrics: &Metrics,
        from: SimTime,
        to: SimTime,
        alerts: &mut Vec<Alert>,
    ) {
        let coarse = CoarseMonitor::new(metrics, SimDuration::from_secs(1));
        self.resource_alerts(metrics, &coarse, from, to, alerts);
    }

    /// Emits the threshold alerts of every in-window coarse sample (shared
    /// by the indexed and naive paths; for the indexed path the window
    /// predicate is already vacuously true).
    fn resource_alerts(
        &self,
        metrics: &Metrics,
        coarse: &CoarseMonitor,
        from: SimTime,
        to: SimTime,
        alerts: &mut Vec<Alert>,
    ) {
        for s in 0..metrics.num_services() {
            let service = ServiceId::new(s as u32);
            for sample in coarse.series(service) {
                if sample.start >= from
                    && sample.start < to
                    && sample.utilization >= self.config.resource_threshold
                {
                    alerts.push(Alert {
                        at: sample.start,
                        kind: AlertKind::ResourceSaturation,
                        session: None,
                        service: Some(service),
                        hit_attacker: false,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use callgraph::{RequestTypeId, ServiceSpec, TopologyBuilder};
    use microsim::agents::FixedRate;
    use microsim::{Origin, SimConfig, Simulation};

    fn topo(demand_ms: u64) -> callgraph::Topology {
        let mut b = TopologyBuilder::new();
        let gw = b.add_service(ServiceSpec::new("gw").threads(64).demand_cv(0.0));
        b.add_request_type("r", vec![(gw, SimDuration::from_millis(demand_ms))]);
        b.build()
    }

    #[test]
    fn fast_session_trips_interval_rule() {
        let mut sim = Simulation::new(topo(1), SimConfig::default());
        // One session firing every second: 2 s under the 3 s threshold.
        sim.add_agent(Box::new(
            FixedRate::new(RequestTypeId::new(0), SimDuration::from_secs(1), 5)
                .with_origin(Origin::attack(1, 42)),
        ));
        sim.run_until(SimTime::from_secs(10));
        let report = Ids::new(IdsConfig::default()).analyze(&sim.into_metrics());
        let hits: Vec<&Alert> = report.of_kind(AlertKind::IntervalViolation).collect();
        assert_eq!(hits.len(), 4, "every follow-up request is too fast");
        assert!(hits.iter().all(|a| a.session == Some(42)));
        assert_eq!(report.attacker_hits(), 4);
    }

    #[test]
    fn slow_sessions_stay_clean() {
        let mut sim = Simulation::new(topo(1), SimConfig::default());
        sim.add_agent(Box::new(FixedRate::new(
            RequestTypeId::new(0),
            SimDuration::from_secs(5),
            4,
        )));
        sim.run_until(SimTime::from_secs(30));
        let report = Ids::new(IdsConfig::default()).analyze(&sim.into_metrics());
        assert!(report.is_clean(), "alerts: {:?}", report.alerts());
    }

    #[test]
    fn sustained_saturation_trips_resource_rule() {
        // 10 ms demand at 200 req/s = 200% load: sustained saturation.
        let mut sim = Simulation::new(topo(10), SimConfig::default());
        sim.add_agent(Box::new(FixedRate::new(
            RequestTypeId::new(0),
            SimDuration::from_micros(5_000),
            1000,
        )));
        sim.run_until(SimTime::from_secs(6));
        let report = Ids::new(IdsConfig::default()).analyze(&sim.into_metrics());
        assert!(report.of_kind(AlertKind::ResourceSaturation).count() > 0);
    }

    #[test]
    fn sub_second_burst_evades_resource_rule() {
        // 40 requests of 10 ms back-to-back: ~400 ms bottleneck, then idle.
        let mut sim = Simulation::new(topo(10), SimConfig::default());
        sim.add_agent(Box::new(FixedRate::new(
            RequestTypeId::new(0),
            SimDuration::from_millis(1),
            40,
        )));
        sim.run_until(SimTime::from_secs(3));
        let report = Ids::new(IdsConfig::default()).analyze(&sim.into_metrics());
        assert_eq!(
            report.of_kind(AlertKind::ResourceSaturation).count(),
            0,
            "sub-second millibottleneck must be invisible at 1 s granularity"
        );
    }

    #[test]
    fn indexed_analysis_matches_naive_scan() {
        // Mixed traffic: a fast attack session plus two slower sessions,
        // long enough to seal several access-log segments when combined
        // with the interval-rule window sweep below.
        let mut sim = Simulation::new(topo(1), SimConfig::default());
        sim.add_agent(Box::new(
            FixedRate::new(RequestTypeId::new(0), SimDuration::from_millis(500), 40)
                .with_origin(Origin::attack(0xBAD, 7)),
        ));
        sim.add_agent(Box::new(
            FixedRate::new(RequestTypeId::new(0), SimDuration::from_secs(1), 15)
                .with_origin(Origin::legit(0x0A01, 1)),
        ));
        sim.add_agent(Box::new(
            FixedRate::new(RequestTypeId::new(0), SimDuration::from_secs(4), 5)
                .with_origin(Origin::legit(0x0A02, 2)),
        ));
        sim.run_until(SimTime::from_secs(30));
        let metrics = sim.into_metrics();
        let ids = Ids::new(IdsConfig::default());
        // Full-run equivalence: analyze() routes through the index.
        assert_eq!(
            ids.analyze(&metrics),
            ids.analyze_naive(&metrics, SimTime::ZERO, SimTime::FAR_FUTURE)
        );
        // Windowed equivalence, including empty and partial windows.
        for (a, b) in [(0u64, 30u64), (5, 12), (12, 5), (29, 40), (3, 3)] {
            let (from, to) = (SimTime::from_secs(a), SimTime::from_secs(b));
            assert_eq!(
                ids.analyze_window(&metrics, from, to),
                ids.analyze_naive(&metrics, from, to),
                "window [{a}s, {b}s)"
            );
        }
        // The windowed report only sees in-window violations.
        let windowed = ids.analyze_window(&metrics, SimTime::from_secs(5), SimTime::from_secs(12));
        assert!(windowed
            .alerts()
            .iter()
            .all(|al| al.at >= SimTime::from_secs(5) && al.at < SimTime::from_secs(12)));
        assert!(!windowed.is_clean());
    }

    #[test]
    fn content_rules_never_fire_on_wellformed_traffic() {
        let mut sim = Simulation::new(topo(1), SimConfig::default());
        sim.add_agent(Box::new(FixedRate::new(
            RequestTypeId::new(0),
            SimDuration::from_secs(4),
            5,
        )));
        sim.run_until(SimTime::from_secs(30));
        let report = Ids::new(IdsConfig::default()).analyze(&sim.into_metrics());
        assert_eq!(report.of_kind(AlertKind::Content).count(), 0);
        assert_eq!(report.of_kind(AlertKind::Protocol).count(), 0);
    }
}
