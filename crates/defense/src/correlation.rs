//! Millibottleneck–session correlation: the Section VI candidate defense.
//!
//! The idea (borrowed from the Tail-attack countermeasure the paper cites):
//! with *fine-grained* monitoring an operator can detect millibottlenecks;
//! sessions whose requests are statistically concentrated in the short
//! pre-bottleneck windows are suspicious, because normal users' think-time
//! driven traffic has no correlation with bottleneck onsets.
//!
//! For every subject (a session, or a source-prefix aggregate when
//! `aggregate_prefix_bits` is set) we test whether its in-window request
//! fraction is statistically above the rest of the population's in-window
//! rate (a binomial z-score). A plain time-coverage lift is also reported
//! but is *not* the detection statistic: a near-continuous attack drives
//! window coverage so high that lift saturates for everyone, while the
//! z-score still separates bots (whose requests are exclusively
//! in-window) from legitimate users (who match the base rate). The
//! evaluation reports precision/recall against ground truth, demonstrating
//! both that the defense *can* catch Grunt bots and what monitoring
//! granularity it requires.

use std::collections::BTreeMap;

use microsim::Metrics;
use simnet::{SimDuration, SimTime};
use telemetry::{find_millibottlenecks, Millibottleneck};

/// Per-session (or per-aggregate) suspicion score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionScore {
    /// The session id (or source-prefix aggregate key).
    pub session: u64,
    /// Requests that landed in a correlated window.
    pub hits: u32,
    /// Total requests of the subject.
    pub total: u32,
    /// Lift = in-window fraction / window time coverage (descriptive).
    pub lift: f64,
    /// Binomial z-score of the subject's in-window fraction against the
    /// rest of the population's in-window rate — the detection statistic.
    /// Robust where raw lift saturates (a near-continuous attack drives
    /// window coverage so high that no lift threshold separates anyone).
    pub z: f64,
    /// Ground truth (evaluation only).
    pub is_attack: bool,
}

/// Result of a correlation analysis.
#[derive(Debug, Clone)]
pub struct CorrelationReport {
    scores: Vec<SessionScore>,
    flagged: Vec<u64>,
    coverage: f64,
}

impl CorrelationReport {
    /// All session scores, most suspicious first.
    pub fn scores(&self) -> &[SessionScore] {
        &self.scores
    }

    /// Sessions whose lift exceeded the threshold.
    pub fn flagged_sessions(&self) -> &[u64] {
        &self.flagged
    }

    /// Fraction of run time covered by correlated windows.
    pub fn window_coverage(&self) -> f64 {
        self.coverage
    }

    /// Precision of the flags against ground truth (1.0 when nothing was
    /// flagged).
    pub fn precision(&self) -> f64 {
        if self.flagged.is_empty() {
            return 1.0;
        }
        let tp = self
            .scores
            .iter()
            .filter(|s| s.is_attack && self.flagged.contains(&s.session))
            .count();
        tp as f64 / self.flagged.len() as f64
    }

    /// Recall of the flags against ground truth (1.0 when there were no
    /// attackers).
    pub fn recall(&self) -> f64 {
        let attackers: Vec<u64> = self
            .scores
            .iter()
            .filter(|s| s.is_attack)
            .map(|s| s.session)
            .collect();
        if attackers.is_empty() {
            return 1.0;
        }
        let tp = attackers
            .iter()
            .filter(|s| self.flagged.contains(s))
            .count();
        tp as f64 / attackers.len() as f64
    }
}

/// The correlation detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelationDefense {
    /// Utilisation threshold for millibottleneck detection.
    pub saturation_threshold: f64,
    /// How far before a bottleneck onset a submission counts as
    /// correlated (the burst that *causes* a bottleneck precedes it).
    pub lead: SimDuration,
    /// Minimum z-score to flag a subject.
    pub min_z: f64,
    /// Minimum requests before a session can be judged at all.
    pub min_requests: u32,
    /// Minimum correlated hits to flag: a single chance co-occurrence is
    /// not evidence (normal think-time traffic occasionally lands inside a
    /// window).
    pub min_hits: u32,
    /// When set, score *source aggregates* (the top `n` bits of the IP)
    /// instead of individual sessions. A large rotating bot farm defeats
    /// per-session correlation — every bot sends one request per burst —
    /// but the farm's address block as a whole remains strongly
    /// correlated with the bottleneck windows.
    pub aggregate_prefix_bits: Option<u8>,
}

impl Default for CorrelationDefense {
    fn default() -> Self {
        CorrelationDefense {
            saturation_threshold: 0.95,
            lead: SimDuration::from_millis(500),
            min_z: 3.0,
            min_requests: 3,
            min_hits: 2,
            aggregate_prefix_bits: None,
        }
    }
}

impl CorrelationDefense {
    /// Runs the analysis over a recorded run of length `horizon`.
    pub fn analyze(&self, metrics: &Metrics, horizon: SimTime) -> CorrelationReport {
        let bottlenecks = find_millibottlenecks(metrics, self.saturation_threshold);
        let windows: Vec<(SimTime, SimTime)> = bottlenecks
            .iter()
            .map(|mb: &Millibottleneck| {
                let start = SimTime::from_micros(
                    mb.start.as_micros().saturating_sub(self.lead.as_micros()),
                );
                (start, mb.end)
            })
            .collect();
        let covered = merged_coverage(&windows);
        let coverage = if horizon.as_micros() == 0 {
            0.0
        } else {
            covered.as_micros() as f64 / horizon.as_micros() as f64
        };

        #[derive(Default)]
        struct Acc {
            hits: u32,
            total: u32,
            attack: bool,
        }
        let mut sessions: BTreeMap<u64, Acc> = BTreeMap::new();
        for e in metrics.access_log() {
            let key = match self.aggregate_prefix_bits {
                Some(bits) => u64::from(e.origin.ip >> (32 - u32::from(bits.min(32)))),
                None => e.origin.session,
            };
            let acc = sessions.entry(key).or_default();
            acc.total += 1;
            acc.attack |= e.origin.is_attack;
            if windows.iter().any(|(s, t)| e.at >= *s && e.at < *t) {
                acc.hits += 1;
            }
        }

        let grand_total: u64 = sessions.values().map(|a| u64::from(a.total)).sum();
        let grand_hits: u64 = sessions.values().map(|a| u64::from(a.hits)).sum();
        let mut scores: Vec<SessionScore> = sessions
            .into_iter()
            .map(|(session, acc)| {
                let frac = if acc.total == 0 {
                    0.0
                } else {
                    f64::from(acc.hits) / f64::from(acc.total)
                };
                let lift = if coverage > 0.0 { frac / coverage } else { 0.0 };
                // Base rate: the in-window fraction of everyone else.
                let rest_total = grand_total - u64::from(acc.total);
                let rest_hits = grand_hits - u64::from(acc.hits);
                let p0 = if rest_total == 0 {
                    coverage
                } else {
                    rest_hits as f64 / rest_total as f64
                }
                .clamp(1e-6, 1.0 - 1e-6);
                let n = f64::from(acc.total);
                let z = if n > 0.0 {
                    (f64::from(acc.hits) - n * p0) / (n * p0 * (1.0 - p0)).sqrt()
                } else {
                    0.0
                };
                SessionScore {
                    session,
                    hits: acc.hits,
                    total: acc.total,
                    lift,
                    z,
                    is_attack: acc.attack,
                }
            })
            .collect();
        scores.sort_by(|a, b| b.z.partial_cmp(&a.z).expect("z not NaN"));
        let flagged = scores
            .iter()
            .filter(|s| {
                s.total >= self.min_requests && s.hits >= self.min_hits && s.z >= self.min_z
            })
            .map(|s| s.session)
            .collect();
        CorrelationReport {
            scores,
            flagged,
            coverage,
        }
    }
}

/// Total time covered by possibly-overlapping windows.
fn merged_coverage(windows: &[(SimTime, SimTime)]) -> SimDuration {
    let mut sorted: Vec<(SimTime, SimTime)> = windows.to_vec();
    sorted.sort_by_key(|w| w.0);
    let mut total = SimDuration::ZERO;
    let mut current: Option<(SimTime, SimTime)> = None;
    for (s, e) in sorted {
        match current {
            None => current = Some((s, e)),
            Some((cs, ce)) => {
                if s <= ce {
                    current = Some((cs, ce.max(e)));
                } else {
                    total += ce.saturating_since(cs);
                    current = Some((s, e));
                }
            }
        }
    }
    if let Some((cs, ce)) = current {
        total += ce.saturating_since(cs);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use callgraph::{RequestTypeId, ServiceSpec, TopologyBuilder};
    use microsim::agents::FixedRate;
    use microsim::{Origin, SimConfig, Simulation};

    #[test]
    fn merged_coverage_handles_overlap() {
        let t = SimTime::from_millis;
        let w = vec![(t(0), t(100)), (t(50), t(150)), (t(300), t(400))];
        assert_eq!(merged_coverage(&w), SimDuration::from_millis(250));
        assert_eq!(merged_coverage(&[]), SimDuration::ZERO);
    }

    #[test]
    fn bursty_attacker_has_high_lift_and_gets_flagged() {
        let mut b = TopologyBuilder::new();
        let gw = b.add_service(ServiceSpec::new("gw").threads(128).demand_cv(0.0));
        b.add_request_type("r", vec![(gw, SimDuration::from_millis(10))]);
        let mut sim = Simulation::new(b.build(), SimConfig::default());
        // Background: slow legit sessions spread over the run.
        for s in 0..5u64 {
            sim.add_agent(Box::new(
                FixedRate::new(RequestTypeId::new(0), SimDuration::from_secs(7), 8)
                    .with_origin(Origin::legit(100 + s as u32, s)),
            ));
        }
        // Attacker: one session, a burst that saturates the service.
        sim.add_agent(Box::new(
            FixedRate::new(RequestTypeId::new(0), SimDuration::from_millis(1), 40)
                .with_origin(Origin::attack(0xBAD, 999)),
        ));
        sim.run_until(SimTime::from_secs(60));
        let report =
            CorrelationDefense::default().analyze(&sim.into_metrics(), SimTime::from_secs(60));
        assert!(report.window_coverage() < 0.05, "bottlenecks are short");
        assert!(
            report.flagged_sessions().contains(&999),
            "attacker must be flagged: {:?}",
            report.scores()
        );
        assert!(report.recall() > 0.99);
        assert!(report.precision() > 0.5);
    }

    #[test]
    fn quiet_run_flags_nobody() {
        let mut b = TopologyBuilder::new();
        let gw = b.add_service(ServiceSpec::new("gw").threads(128).demand_cv(0.0));
        b.add_request_type("r", vec![(gw, SimDuration::from_millis(1))]);
        let mut sim = Simulation::new(b.build(), SimConfig::default());
        sim.add_agent(Box::new(FixedRate::new(
            RequestTypeId::new(0),
            SimDuration::from_secs(5),
            5,
        )));
        sim.run_until(SimTime::from_secs(30));
        let report =
            CorrelationDefense::default().analyze(&sim.into_metrics(), SimTime::from_secs(30));
        assert!(report.flagged_sessions().is_empty());
        assert_eq!(report.precision(), 1.0);
        assert_eq!(report.recall(), 1.0);
    }
}
