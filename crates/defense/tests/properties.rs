//! Property-based tests of the detection stack's invariants.

use callgraph::{RequestTypeId, ServiceSpec, TopologyBuilder};
use defense::{RateShield, ShieldVerdict};
use microsim::{Origin, SimConfig, Simulation};
use proptest::prelude::*;
use simnet::{SimDuration, SimTime};

/// Brute-force reference implementation of the sliding-window budget
/// check: an IP is blocked iff some window of `window` length contains
/// more than `budget` of its requests.
fn reference_blocked(times: &[u64], window_us: u64, budget: u32) -> bool {
    for (i, &start) in times.iter().enumerate() {
        let in_window = times[i..]
            .iter()
            .take_while(|&&t| t - start < window_us)
            .count();
        if in_window as u32 > budget {
            return true;
        }
    }
    false
}

fn run_with_schedule(schedule: &[u64]) -> microsim::Metrics {
    let mut b = TopologyBuilder::new();
    let gw = b.add_service(ServiceSpec::new("gw").threads(512).cores(8).demand_cv(0.0));
    b.add_request_type("r", vec![(gw, SimDuration::from_micros(50))]);
    let mut sim = Simulation::new(b.build(), SimConfig::default());
    // One agent per request at its scheduled time, all the same IP.
    struct At(u64);
    impl microsim::Agent for At {
        fn start(&mut self, ctx: &mut microsim::SimCtx<'_>) {
            ctx.schedule_wake(SimDuration::from_millis(self.0), 0);
        }
        fn on_wake(&mut self, ctx: &mut microsim::SimCtx<'_>, _t: u64) {
            ctx.submit(RequestTypeId::new(0), Origin::attack(0xFEED, 1));
        }
    }
    for &t in schedule {
        sim.add_agent(Box::new(At(t)));
    }
    let horizon = schedule.iter().max().copied().unwrap_or(0) + 5_000;
    sim.run_until(SimTime::from_millis(horizon));
    sim.into_metrics()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The shield's sliding-window analysis agrees with a brute-force
    /// reference on arbitrary request schedules.
    #[test]
    fn shield_matches_reference(
        mut offsets in prop::collection::vec(0u64..30_000, 1..60),
        window_ms in 500u64..10_000,
        budget in 1u32..20,
    ) {
        offsets.sort_unstable();
        let metrics = run_with_schedule(&offsets);
        let shield = RateShield::new(SimDuration::from_millis(window_ms), budget);
        let verdicts = shield.analyze(&metrics);
        let got_blocked = matches!(verdicts.get(&0xFEED), Some(ShieldVerdict::Blocked(_)));
        let times_us: Vec<u64> = metrics
            .access_log()
            .iter()
            .map(|e| e.at.as_micros())
            .collect();
        let expected = reference_blocked(&times_us, window_ms * 1_000, budget);
        prop_assert_eq!(got_blocked, expected);
    }

    /// Bot sizing: the computed farm always keeps each IP within budget.
    #[test]
    fn min_bots_keeps_each_ip_within_budget(
        total in 1u64..1_000_000,
        duration_s in 1u64..7_200,
    ) {
        let shield = RateShield::paper_default();
        let bots = shield.min_bots(total, SimDuration::from_secs(duration_s));
        prop_assert!(bots >= 1);
        let windows = (duration_s as f64 / 300.0).ceil().max(1.0);
        let per_ip = total as f64 / bots as f64;
        prop_assert!(
            per_ip <= 100.0 * windows + 1.0,
            "per-ip {per_ip} over budget with {bots} bots"
        );
    }
}
