//! The brute-force flood baseline.

use microsim::{Agent, Origin, SimCtx};
use simnet::{RngStream, SimDuration, SimTime};
use workload::RequestMix;

/// A sustained high-rate flood over a request mix.
///
/// Sized as a multiple of the target's serving capacity, this trivially
/// meets any damage goal — and produces exactly the signals (sustained
/// resource saturation, per-IP rates, traffic volume) that every deployed
/// defence detects. The experiments use it for the volume comparison of
/// Section I: Grunt needs orders of magnitude less traffic.
#[derive(Debug, Clone)]
pub struct BruteForce {
    mix: RequestMix,
    rate: f64,
    stop_at: SimTime,
    rng: RngStream,
    bots: u32,
    next_bot: u32,
    sent: u64,
}

impl BruteForce {
    /// Creates a flood at `rate` req/s over `mix` from `bots` distinct
    /// identities, stopping at `stop_at`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive or `bots` is zero.
    pub fn new(mix: RequestMix, rate: f64, bots: u32, stop_at: SimTime, seed: u64) -> Self {
        assert!(rate > 0.0, "flood rate must be positive");
        assert!(bots > 0, "flood needs at least one bot");
        BruteForce {
            mix,
            rate,
            stop_at,
            rng: RngStream::from_label(seed, "baseline/bruteforce"),
            bots,
            next_bot: 0,
            sent: 0,
        }
    }

    /// Total requests sent.
    pub fn requests_sent(&self) -> u64 {
        self.sent
    }

    fn schedule_next(&mut self, ctx: &mut SimCtx<'_>) {
        if ctx.now() >= self.stop_at {
            return;
        }
        let gap = self.rng.exp(1.0 / self.rate);
        ctx.schedule_wake(SimDuration::from_secs_f64(gap), 0);
    }
}

impl Agent for BruteForce {
    fn start(&mut self, ctx: &mut SimCtx<'_>) {
        self.schedule_next(ctx);
    }

    fn on_wake(&mut self, ctx: &mut SimCtx<'_>, _token: u64) {
        if ctx.now() >= self.stop_at {
            return;
        }
        let rt = self.mix.sample(&mut self.rng);
        let bot = self.next_bot % self.bots;
        self.next_bot = self.next_bot.wrapping_add(1);
        ctx.submit(
            rt,
            Origin::attack(0xC800_0000 + bot, 3_000_000 + u64::from(bot)),
        );
        self.sent += 1;
        self.schedule_next(ctx);
    }

    fn snapshot(&self) -> Option<microsim::AgentState> {
        Some(microsim::AgentState::of(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apps::social_network;
    use defense::{AlertKind, Ids, IdsConfig, RateShield};
    use microsim::{SimConfig, Simulation};
    use telemetry::{LatencySummary, Traffic};
    use workload::ClosedLoopUsers;

    #[test]
    fn flood_damages_but_gets_detected() {
        let users = 1_000;
        let app = social_network(users);
        let mut sim = Simulation::new(app.topology().clone(), SimConfig::default().seed(4));
        sim.add_agent(Box::new(ClosedLoopUsers::new(
            users,
            app.browsing_model(),
            8,
        )));
        sim.run_until(SimTime::from_secs(10));
        // Flood at 3x the legit rate from 150 bots (each IP far exceeds
        // the 100-requests-per-5-minutes budget).
        let legit_rate = users as f64 / 7.0;
        sim.add_agent(Box::new(BruteForce::new(
            app.request_mix(),
            legit_rate * 3.0,
            150,
            SimTime::from_secs(70),
            1,
        )));
        sim.run_until(SimTime::from_secs(70));

        let m = sim.metrics();
        let damaged = LatencySummary::compute(
            m,
            Traffic::Legit,
            None,
            SimTime::from_secs(30),
            SimTime::from_secs(70),
        );
        assert!(
            damaged.avg_ms > 300.0,
            "flood damage {:.0} ms",
            damaged.avg_ms
        );

        // ...but every rate/resource detector fires.
        let ids = Ids::new(IdsConfig::default()).analyze(m);
        assert!(
            ids.of_kind(AlertKind::ResourceSaturation).count() > 0,
            "sustained saturation must trip resource alerts"
        );
        let interval_hits = ids
            .of_kind(AlertKind::IntervalViolation)
            .filter(|a| a.hit_attacker)
            .count();
        assert!(
            interval_hits > 100,
            "bots hammering from few sessions must trip the interval rule ({interval_hits})"
        );
        assert!(
            RateShield::paper_default().blocked_count(m) > 0,
            "per-IP budgets must block flood bots"
        );
    }

    #[test]
    fn flood_rate_is_approximately_honoured() {
        let app = social_network(1_000);
        let mut sim = Simulation::new(app.topology().clone(), SimConfig::default());
        sim.add_agent(Box::new(BruteForce::new(
            app.request_mix(),
            500.0,
            100,
            SimTime::from_secs(10),
            2,
        )));
        sim.run_until(SimTime::from_secs(12));
        let n = sim.metrics().access_log().len() as f64;
        assert!((n - 5_000.0).abs() < 500.0, "sent {n}");
    }
}
