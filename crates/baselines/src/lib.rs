//! Baseline attacks Grunt is compared against (Section VII).
//!
//! * [`TailAttack`] — the single-path low-rate attack of Shan et al.
//!   (CCS'17): ON/OFF bursts against *one* critical path of the target.
//!   On an n-tier monolith this damages the whole system; on microservices
//!   it only degrades the few paths that depend on the attacked one, which
//!   is the motivating observation of the paper ("attacks that target a
//!   single path may become ineffective on microservices").
//! * [`BruteForce`] — a sustained flood sized as a multiple of the
//!   system's capacity. It trivially meets any damage goal but its traffic
//!   volume and sustained resource saturation light up every detector —
//!   the volume comparison of Section I (gigabytes vs megabytes).
//!
//! Both are [`microsim::Agent`]s, directly comparable to the Grunt
//! Commander in the ablation experiments (`lab ablations`).

pub mod brute_force;
pub mod tail_attack;

pub use brute_force::BruteForce;
pub use tail_attack::{TailAttack, TailAttackConfig};
