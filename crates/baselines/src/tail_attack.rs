//! The single-path Tail-attack baseline.

use callgraph::RequestTypeId;
use microsim::{Agent, Origin, Response, SimCtx};
use simnet::{SegSamples, SimDuration, SimTime};

/// Parameters of the single-path ON/OFF attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailAttackConfig {
    /// The single critical path attacked.
    pub target: RequestTypeId,
    /// Requests per burst (the ON pulse).
    pub burst_volume: u32,
    /// Length over which a burst's volume is spread.
    pub burst_length: SimDuration,
    /// OFF period between bursts.
    pub interval: SimDuration,
    /// When to stop.
    pub stop_at: SimTime,
}

impl TailAttackConfig {
    /// A configuration comparable to Grunt's per-path parameters:
    /// millibottleneck-regime bursts (the queue drains between pulses, so
    /// the average rate stays below the path's capacity — the Tail attack
    /// is a *low-rate* attack), all aimed at one path.
    pub fn comparable(target: RequestTypeId, stop_at: SimTime) -> Self {
        TailAttackConfig {
            target,
            burst_volume: 120,
            burst_length: SimDuration::from_millis(250),
            interval: SimDuration::from_millis(2_250),
            stop_at,
        }
    }
}

/// The single-path ON/OFF attacker.
///
/// Sends pulses of `burst_volume` requests of one type, spaced by
/// `interval` — the waveform of the Tail attack, which Grunt generalises
/// to multiple alternating paths. Collects its own request latencies so
/// experiments can read the attacker-observed damage.
#[derive(Debug, Clone)]
pub struct TailAttack {
    cfg: TailAttackConfig,
    sent: u64,
    latencies_ms: SegSamples,
    chunk_remaining: u32,
    next_bot: u32,
}

const WAKE_BURST: u64 = 0;
const WAKE_CHUNK: u64 = 1;
const CHUNK_GAP: SimDuration = SimDuration::from_millis(20);

impl TailAttack {
    /// Creates the attacker.
    ///
    /// # Panics
    ///
    /// Panics if the burst volume is zero.
    pub fn new(cfg: TailAttackConfig) -> Self {
        assert!(cfg.burst_volume > 0, "burst volume must be positive");
        TailAttack {
            cfg,
            sent: 0,
            latencies_ms: SegSamples::new(),
            chunk_remaining: 0,
            next_bot: 0,
        }
    }

    /// Total attack requests sent.
    pub fn requests_sent(&self) -> u64 {
        self.sent
    }

    /// Latencies of the attack's own requests (ms).
    pub fn latencies_ms(&self) -> &SegSamples {
        &self.latencies_ms
    }

    fn submit_chunk(&mut self, ctx: &mut SimCtx<'_>) {
        let chunks = (self.cfg.burst_length.as_micros() / CHUNK_GAP.as_micros()).max(1) as u32;
        let per_chunk = self.cfg.burst_volume.div_ceil(chunks);
        let n = self.chunk_remaining.min(per_chunk);
        for _ in 0..n {
            // A fresh bot identity per request, like Grunt's farm.
            let bot = self.next_bot;
            self.next_bot = self.next_bot.wrapping_add(1);
            ctx.submit(
                self.cfg.target,
                Origin::attack(
                    0xC700_0000 + (bot % 4096),
                    2_000_000 + u64::from(bot % 4096),
                ),
            );
            self.sent += 1;
        }
        self.chunk_remaining -= n;
        if self.chunk_remaining > 0 {
            ctx.schedule_wake(CHUNK_GAP, WAKE_CHUNK);
        }
    }
}

impl Agent for TailAttack {
    fn start(&mut self, ctx: &mut SimCtx<'_>) {
        ctx.schedule_wake(SimDuration::ZERO, WAKE_BURST);
    }

    fn on_wake(&mut self, ctx: &mut SimCtx<'_>, token: u64) {
        if token == WAKE_CHUNK {
            self.submit_chunk(ctx);
            return;
        }
        if ctx.now() >= self.cfg.stop_at {
            return;
        }
        self.chunk_remaining = self.cfg.burst_volume;
        self.submit_chunk(ctx);
        ctx.schedule_wake(self.cfg.burst_length + self.cfg.interval, WAKE_BURST);
    }

    fn on_response(&mut self, _ctx: &mut SimCtx<'_>, response: &Response) {
        self.latencies_ms.push(response.latency_ms());
    }

    fn snapshot(&self) -> Option<microsim::AgentState> {
        Some(microsim::AgentState::of(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apps::social_network;
    use microsim::{SimConfig, Simulation};
    use telemetry::{LatencySummary, Traffic};
    use workload::ClosedLoopUsers;

    /// The motivating claim of Section VII: a single-path attack damages
    /// only its own dependency group; paths in other groups are unharmed.
    #[test]
    fn single_path_attack_leaves_other_groups_unharmed() {
        let users = 2_000;
        let app = social_network(users);
        let mut sim = Simulation::new(app.topology().clone(), SimConfig::default().seed(5));
        sim.add_agent(Box::new(ClosedLoopUsers::new(
            users,
            app.browsing_model(),
            9,
        )));
        sim.run_until(SimTime::from_secs(10));
        // Attack compose-rich-post (the write group's hub path).
        let target = app
            .topology()
            .request_type_by_name("compose-rich-post")
            .expect("known type");
        sim.add_agent(Box::new(TailAttack::new(TailAttackConfig::comparable(
            target,
            SimTime::from_secs(80),
        ))));
        sim.run_until(SimTime::from_secs(80));

        let m = sim.metrics();
        let from = SimTime::from_secs(20);
        let to = SimTime::from_secs(80);
        let write = LatencySummary::compute(
            m,
            Traffic::Legit,
            app.topology().request_type_by_name("compose-post"),
            from,
            to,
        );
        let read = LatencySummary::compute(
            m,
            Traffic::Legit,
            app.topology().request_type_by_name("read-home-timeline"),
            from,
            to,
        );
        let social = LatencySummary::compute(
            m,
            Traffic::Legit,
            app.topology().request_type_by_name("login"),
            from,
            to,
        );
        // The attacked group suffers...
        assert!(
            write.avg_ms > 150.0,
            "write path should be damaged, got {:.0} ms",
            write.avg_ms
        );
        // ...while other groups barely notice.
        assert!(
            read.avg_ms < 120.0,
            "read path should be unharmed, got {:.0} ms",
            read.avg_ms
        );
        assert!(
            social.avg_ms < 120.0,
            "social path should be unharmed, got {:.0} ms",
            social.avg_ms
        );
    }

    #[test]
    fn waveform_respects_on_off_schedule() {
        let app = social_network(1_000);
        let mut sim = Simulation::new(app.topology().clone(), SimConfig::default().seed(2));
        sim.add_agent(Box::new(TailAttack::new(TailAttackConfig {
            target: callgraph::RequestTypeId::new(0),
            burst_volume: 50,
            burst_length: SimDuration::from_millis(200),
            interval: SimDuration::from_millis(800),
            stop_at: SimTime::from_secs(5),
        })));
        sim.run_until(SimTime::from_secs(6));
        // 5 s / 1 s cycle = 5 bursts of 50.
        assert_eq!(sim.metrics().access_log().len(), 250);
        // All attack-labelled.
        assert!(sim
            .metrics()
            .access_log()
            .iter()
            .all(|e| e.origin.is_attack));
    }
}
