//! Execution paths — the chain-of-services view of a request type.

use std::fmt;

use serde::{Deserialize, Serialize};
use simnet::SimDuration;

use crate::ids::{RequestTypeId, ServiceId};
use crate::spec::{PathStep, RequestTypeSpec};

/// The critical path of a request type: an ordered chain of service visits,
/// entry service first (Fig 2c of the paper).
///
/// The path knows where its own *bottleneck* sits — the step with the
/// largest compute demand — which is what the dependency taxonomy
/// (Definitions I and II) is phrased in terms of.
///
/// # Example
///
/// ```
/// use callgraph::{ExecutionPath, ServiceId};
/// use simnet::SimDuration;
///
/// let path = ExecutionPath::from_chain(
///     callgraph::RequestTypeId::new(0),
///     vec![
///         (ServiceId::new(0), SimDuration::from_millis(1)),
///         (ServiceId::new(1), SimDuration::from_millis(9)),
///         (ServiceId::new(2), SimDuration::from_millis(3)),
///     ],
/// );
/// assert_eq!(path.bottleneck_index(), 1);
/// assert_eq!(path.bottleneck_service(), ServiceId::new(1));
/// assert!(path.is_upstream_of(ServiceId::new(0), ServiceId::new(2)).unwrap());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPath {
    request_type: RequestTypeId,
    steps: Vec<PathStep>,
    bottleneck: usize,
}

impl ExecutionPath {
    /// Builds the path from a request-type spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no steps.
    pub fn from_spec(spec: &RequestTypeSpec) -> Self {
        Self::from_steps(spec.id, spec.steps.clone())
    }

    /// Builds a path from a raw `(service, demand)` chain.
    ///
    /// # Panics
    ///
    /// Panics if the chain is empty.
    pub fn from_chain(request_type: RequestTypeId, chain: Vec<(ServiceId, SimDuration)>) -> Self {
        Self::from_steps(
            request_type,
            chain
                .into_iter()
                .map(|(service, demand)| PathStep { service, demand })
                .collect(),
        )
    }

    fn from_steps(request_type: RequestTypeId, steps: Vec<PathStep>) -> Self {
        assert!(!steps.is_empty(), "execution path needs at least one step");
        let bottleneck = steps
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.demand)
            .map(|(i, _)| i)
            .expect("non-empty");
        ExecutionPath {
            request_type,
            steps,
            bottleneck,
        }
    }

    /// The request type that triggers this path.
    pub fn request_type(&self) -> RequestTypeId {
        self.request_type
    }

    /// The ordered steps, entry service first.
    pub fn steps(&self) -> &[PathStep] {
        &self.steps
    }

    /// Number of service visits.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` for a single-service path.
    pub fn is_empty(&self) -> bool {
        false // construction rejects empty paths
    }

    /// Index (position along the chain) of the bottleneck step.
    pub fn bottleneck_index(&self) -> usize {
        self.bottleneck
    }

    /// The bottleneck service — the step with the largest compute demand.
    pub fn bottleneck_service(&self) -> ServiceId {
        self.steps[self.bottleneck].service
    }

    /// Mean demand at the bottleneck step.
    pub fn bottleneck_demand(&self) -> SimDuration {
        self.steps[self.bottleneck].demand
    }

    /// Sum of mean demands along the whole chain.
    pub fn total_demand(&self) -> SimDuration {
        self.steps
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.demand)
    }

    /// Position of `service` along this path, if visited.
    pub fn position(&self, service: ServiceId) -> Option<usize> {
        self.steps.iter().position(|s| s.service == service)
    }

    /// `true` when this path visits `service`.
    pub fn visits(&self, service: ServiceId) -> bool {
        self.position(service).is_some()
    }

    /// Whether `a` is strictly upstream of `b` along this path.
    ///
    /// Returns `None` when either service is not on the path.
    pub fn is_upstream_of(&self, a: ServiceId, b: ServiceId) -> Option<bool> {
        Some(self.position(a)? < self.position(b)?)
    }

    /// Services shared with another path, in this path's order.
    pub fn shared_services(&self, other: &ExecutionPath) -> Vec<ServiceId> {
        self.steps
            .iter()
            .map(|s| s.service)
            .filter(|s| other.visits(*s))
            .collect()
    }

    /// Services strictly upstream of this path's bottleneck.
    pub fn upstream_of_bottleneck(&self) -> &[PathStep] {
        &self.steps[..self.bottleneck]
    }

    /// Services strictly downstream of this path's bottleneck.
    pub fn downstream_of_bottleneck(&self) -> &[PathStep] {
        &self.steps[self.bottleneck + 1..]
    }
}

impl fmt::Display for ExecutionPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.request_type)?;
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            if i == self.bottleneck {
                write!(f, "[{}]", s.service)?;
            } else {
                write!(f, "{}", s.service)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(demands_ms: &[u64]) -> ExecutionPath {
        ExecutionPath::from_chain(
            RequestTypeId::new(0),
            demands_ms
                .iter()
                .enumerate()
                .map(|(i, &d)| (ServiceId::new(i as u32), SimDuration::from_millis(d)))
                .collect(),
        )
    }

    #[test]
    fn bottleneck_is_max_demand() {
        let p = path(&[1, 9, 3]);
        assert_eq!(p.bottleneck_index(), 1);
        assert_eq!(p.bottleneck_demand(), SimDuration::from_millis(9));
    }

    #[test]
    fn bottleneck_tie_prefers_downstream() {
        // max_by_key returns the last max, i.e. the most downstream step —
        // matching the intuition that deeper services saturate first when
        // demands are equal (they also serve other paths).
        let p = path(&[5, 5]);
        assert_eq!(p.bottleneck_index(), 1);
    }

    #[test]
    fn upstream_relation() {
        let p = path(&[1, 2, 3]);
        assert_eq!(
            p.is_upstream_of(ServiceId::new(0), ServiceId::new(2)),
            Some(true)
        );
        assert_eq!(
            p.is_upstream_of(ServiceId::new(2), ServiceId::new(0)),
            Some(false)
        );
        assert_eq!(p.is_upstream_of(ServiceId::new(9), ServiceId::new(0)), None);
    }

    #[test]
    fn shared_services_ordered() {
        let a = path(&[1, 2, 3]); // services 0,1,2
        let b = ExecutionPath::from_chain(
            RequestTypeId::new(1),
            vec![
                (ServiceId::new(0), SimDuration::from_millis(1)),
                (ServiceId::new(2), SimDuration::from_millis(1)),
            ],
        );
        assert_eq!(
            a.shared_services(&b),
            vec![ServiceId::new(0), ServiceId::new(2)]
        );
    }

    #[test]
    fn splits_around_bottleneck() {
        let p = path(&[1, 9, 3]);
        assert_eq!(p.upstream_of_bottleneck().len(), 1);
        assert_eq!(p.downstream_of_bottleneck().len(), 1);
        assert_eq!(p.total_demand(), SimDuration::from_millis(13));
    }

    #[test]
    fn display_marks_bottleneck() {
        let p = path(&[1, 9]);
        assert_eq!(p.to_string(), "req#0: svc#0 -> [svc#1]");
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_chain_rejected() {
        ExecutionPath::from_chain(RequestTypeId::new(0), vec![]);
    }
}
