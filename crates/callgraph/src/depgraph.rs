//! Aggregated dependency graph and the pairwise-dependency taxonomy.
//!
//! The taxonomy follows Section III-C of the paper:
//!
//! * **Parallel dependency** (Definition I) — two critical paths have
//!   *different* bottleneck microservices but share at least one upstream
//!   microservice. Each path can block the other only by cross-tier queue
//!   overflow into the shared upstream service.
//! * **Sequential dependency** (Definition II) — the bottleneck of one path
//!   is an upstream microservice of the *other* path's bottleneck. The
//!   "upstream" path triggers execution blocking directly; the "downstream"
//!   path needs cross-tier overflow.
//!
//! We additionally distinguish the degenerate strongest case where both
//! paths share the *same* bottleneck service ([`PairwiseDependency::SharedBottleneck`]),
//! which the blackbox profiler observes as persistent interference in both
//! probe orders.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::ids::{RequestTypeId, ServiceId};
use crate::path::ExecutionPath;
use crate::topology::Topology;

/// Ground-truth relationship between two critical paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PairwiseDependency {
    /// The paths share no microservice: overloading one cannot block the
    /// other.
    None,
    /// Definition I: different bottlenecks, at least one shared upstream
    /// microservice.
    Parallel,
    /// Definition II: `upstream`'s bottleneck service lies upstream of the
    /// other path's bottleneck (on the other path). `upstream` can trigger
    /// an execution blocking effect directly.
    Sequential {
        /// The request type whose bottleneck is the shared upstream
        /// microservice.
        upstream: RequestTypeId,
    },
    /// Both paths bottleneck on the very same microservice; interference is
    /// persistent in both directions.
    SharedBottleneck,
}

impl PairwiseDependency {
    /// `true` for any variant other than [`PairwiseDependency::None`]:
    /// the two paths belong to the same dependency group.
    pub fn is_dependent(self) -> bool {
        !matches!(self, PairwiseDependency::None)
    }

    /// `true` when the classification (ignoring direction) matches
    /// `other` — used to score the blackbox profiler against ground truth.
    pub fn same_kind(self, other: PairwiseDependency) -> bool {
        use PairwiseDependency::*;
        matches!(
            (self, other),
            (None, None)
                | (Parallel, Parallel)
                | (Sequential { .. }, Sequential { .. })
                | (SharedBottleneck, SharedBottleneck)
        )
    }
}

/// Classifies the ground-truth dependency between two critical paths, given
/// where each path's bottleneck sits.
///
/// The bottleneck of each path is its own highest-demand step
/// ([`ExecutionPath::bottleneck_service`]); callers with runtime knowledge
/// (e.g. accounting for replica counts) may classify with overridden
/// bottlenecks via [`classify_pair_with_bottlenecks`].
///
/// # Example
///
/// ```
/// use callgraph::{classify_pair, ExecutionPath, PairwiseDependency, RequestTypeId, ServiceId};
/// use simnet::SimDuration;
///
/// let ms = SimDuration::from_millis;
/// // Both enter via service 0; bottlenecks are services 1 and 2.
/// let a = ExecutionPath::from_chain(
///     RequestTypeId::new(0),
///     vec![(ServiceId::new(0), ms(1)), (ServiceId::new(1), ms(9))],
/// );
/// let b = ExecutionPath::from_chain(
///     RequestTypeId::new(1),
///     vec![(ServiceId::new(0), ms(1)), (ServiceId::new(2), ms(9))],
/// );
/// assert_eq!(classify_pair(&a, &b), PairwiseDependency::Parallel);
/// ```
pub fn classify_pair(a: &ExecutionPath, b: &ExecutionPath) -> PairwiseDependency {
    classify_pair_with_bottlenecks(a, a.bottleneck_service(), b, b.bottleneck_service())
}

/// [`classify_pair`] with explicitly supplied bottleneck services.
///
/// # Panics
///
/// Panics if a supplied bottleneck service is not on its path.
pub fn classify_pair_with_bottlenecks(
    a: &ExecutionPath,
    bottleneck_a: ServiceId,
    b: &ExecutionPath,
    bottleneck_b: ServiceId,
) -> PairwiseDependency {
    classify_pair_filtered(a, bottleneck_a, b, bottleneck_b, |_| true)
}

/// [`classify_pair_with_bottlenecks`] restricted to *blockable* services:
/// a shared microservice can only relay blocking between the two paths if
/// `is_blockable(service)` — frontend gateways with effectively unbounded
/// worker pools never fill up and therefore never merge dependency groups,
/// even though every path traverses them.
///
/// # Panics
///
/// Panics if a supplied bottleneck service is not on its path.
pub fn classify_pair_filtered(
    a: &ExecutionPath,
    bottleneck_a: ServiceId,
    b: &ExecutionPath,
    bottleneck_b: ServiceId,
    is_blockable: impl Fn(ServiceId) -> bool,
) -> PairwiseDependency {
    assert!(
        a.position(bottleneck_a).is_some(),
        "bottleneck_a must lie on path a"
    );
    assert!(
        b.position(bottleneck_b).is_some(),
        "bottleneck_b must lie on path b"
    );

    let shared: Vec<ServiceId> = a
        .shared_services(b)
        .into_iter()
        .filter(|s| is_blockable(*s))
        .collect();
    if shared.is_empty() {
        return PairwiseDependency::None;
    }
    if bottleneck_a == bottleneck_b {
        return PairwiseDependency::SharedBottleneck;
    }

    // Definition II, generalised: a path whose bottleneck microservice
    // lies anywhere on the other path can trigger an execution blocking
    // effect over it — saturating that service stalls the victim's
    // requests in place regardless of whether it sits upstream or
    // downstream of the victim's own bottleneck. (In the paper's chain
    // examples the shared segment is upstream, hence the "upstream path"
    // terminology; the `upstream` field names the execution-blocking
    // side.)
    let a_blocks_b = b.position(bottleneck_a).is_some();
    let b_blocks_a = a.position(bottleneck_b).is_some();
    if a_blocks_b && b_blocks_a {
        // Each bottleneck lies on the other's path: interference is
        // persistent in both probe orders, indistinguishable from a
        // shared bottleneck for the attacker.
        return PairwiseDependency::SharedBottleneck;
    }
    if a_blocks_b {
        return PairwiseDependency::Sequential {
            upstream: a.request_type(),
        };
    }
    if b_blocks_a {
        return PairwiseDependency::Sequential {
            upstream: b.request_type(),
        };
    }

    // Definition I: different bottlenecks, but a microservice shared
    // upstream of both bottlenecks lets either path block the other via
    // cross-tier queue overflow.
    let pos_a = a.position(bottleneck_a).expect("checked above");
    let pos_b = b.position(bottleneck_b).expect("checked above");
    let shares_upstream = shared.iter().any(|s| {
        a.position(*s).is_some_and(|p| p < pos_a) && b.position(*s).is_some_and(|p| p < pos_b)
    });
    if shares_upstream {
        return PairwiseDependency::Parallel;
    }

    // Shared services exist only at/below the bottlenecks in positions that
    // cannot relay blocking to the other path's traffic before its own
    // bottleneck: treat as independent.
    PairwiseDependency::None
}

/// Aggregated upstream→downstream call edges over all request types of a
/// topology — the administrator's service dependency graph (Fig 12a).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DependencyGraph {
    edges: BTreeSet<(ServiceId, ServiceId)>,
    /// For every service: which request types visit it.
    visitors: BTreeMap<ServiceId, BTreeSet<RequestTypeId>>,
}

impl DependencyGraph {
    /// Builds the graph from a topology.
    pub fn from_topology(topology: &Topology) -> Self {
        let mut edges = BTreeSet::new();
        let mut visitors: BTreeMap<ServiceId, BTreeSet<RequestTypeId>> = BTreeMap::new();
        for rt in topology.request_types() {
            let mut prev: Option<ServiceId> = None;
            for step in &rt.steps {
                visitors.entry(step.service).or_default().insert(rt.id);
                if let Some(up) = prev {
                    edges.insert((up, step.service));
                }
                prev = Some(step.service);
            }
        }
        DependencyGraph { edges, visitors }
    }

    /// All `(upstream, downstream)` call edges.
    pub fn edges(&self) -> impl Iterator<Item = (ServiceId, ServiceId)> + '_ {
        self.edges.iter().copied()
    }

    /// Number of distinct call edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// `true` when `up` directly calls `down` on some path.
    pub fn has_edge(&self, up: ServiceId, down: ServiceId) -> bool {
        self.edges.contains(&(up, down))
    }

    /// Request types that visit `service`.
    pub fn visitors(&self, service: ServiceId) -> impl Iterator<Item = RequestTypeId> + '_ {
        self.visitors
            .get(&service)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Services visited by more than one request type — the paper's
    /// "hotspot" / overlapped microservices.
    pub fn shared_services(&self) -> Vec<ServiceId> {
        self.visitors
            .iter()
            .filter(|(_, v)| v.len() > 1)
            .map(|(s, _)| *s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ServiceSpec;
    use crate::topology::TopologyBuilder;
    use simnet::SimDuration;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn chain(rt: u32, steps: &[(u32, u64)]) -> ExecutionPath {
        ExecutionPath::from_chain(
            RequestTypeId::new(rt),
            steps
                .iter()
                .map(|&(s, d)| (ServiceId::new(s), ms(d)))
                .collect(),
        )
    }

    #[test]
    fn disjoint_paths_are_independent() {
        let a = chain(0, &[(0, 1), (1, 9)]);
        let b = chain(1, &[(2, 1), (3, 9)]);
        assert_eq!(classify_pair(&a, &b), PairwiseDependency::None);
    }

    #[test]
    fn shared_upstream_different_bottlenecks_is_parallel() {
        // Fig 6a: both enter svc0, bottlenecks differ (svc1 vs svc2).
        let a = chain(0, &[(0, 1), (1, 9)]);
        let b = chain(1, &[(0, 1), (2, 9)]);
        assert_eq!(classify_pair(&a, &b), PairwiseDependency::Parallel);
    }

    #[test]
    fn bottleneck_upstream_of_other_is_sequential() {
        // Fig 6b: a's bottleneck (svc1) is an upstream microservice on b's
        // path, upstream of b's bottleneck (svc2).
        let a = chain(0, &[(0, 1), (1, 9)]);
        let b = chain(1, &[(0, 1), (1, 2), (2, 9)]);
        assert_eq!(
            classify_pair(&a, &b),
            PairwiseDependency::Sequential {
                upstream: RequestTypeId::new(0)
            }
        );
        // Symmetric call order gives the same upstream path.
        assert_eq!(
            classify_pair(&b, &a),
            PairwiseDependency::Sequential {
                upstream: RequestTypeId::new(0)
            }
        );
    }

    #[test]
    fn same_bottleneck_is_shared() {
        let a = chain(0, &[(0, 1), (1, 9)]);
        let b = chain(1, &[(2, 1), (1, 9)]);
        assert_eq!(classify_pair(&a, &b), PairwiseDependency::SharedBottleneck);
    }

    #[test]
    fn sharing_only_below_bottlenecks_is_independent() {
        // Shared leaf svc3 sits strictly downstream of both bottlenecks:
        // saturating it is not what either path's attack would do, and
        // neither bottleneck relays into the other path.
        let a = chain(0, &[(0, 9), (3, 1)]);
        let b = chain(1, &[(2, 9), (3, 1)]);
        assert_eq!(classify_pair(&a, &b), PairwiseDependency::None);
    }

    #[test]
    fn explicit_bottleneck_override() {
        let a = chain(0, &[(0, 1), (1, 9)]);
        let b = chain(1, &[(0, 1), (2, 9)]);
        // Pretend runtime scaling moved b's true bottleneck to the gateway:
        // then a's path shares b's bottleneck service upstream of a's own.
        let dep = classify_pair_with_bottlenecks(&a, ServiceId::new(1), &b, ServiceId::new(0));
        assert_eq!(
            dep,
            PairwiseDependency::Sequential {
                upstream: RequestTypeId::new(1)
            }
        );
    }

    #[test]
    #[should_panic(expected = "must lie on path")]
    fn bottleneck_off_path_panics() {
        let a = chain(0, &[(0, 1)]);
        let b = chain(1, &[(0, 1)]);
        classify_pair_with_bottlenecks(&a, ServiceId::new(7), &b, ServiceId::new(0));
    }

    #[test]
    fn is_dependent_and_same_kind() {
        assert!(!PairwiseDependency::None.is_dependent());
        assert!(PairwiseDependency::Parallel.is_dependent());
        assert!(PairwiseDependency::Sequential {
            upstream: RequestTypeId::new(0)
        }
        .is_dependent());
        assert!(PairwiseDependency::Sequential {
            upstream: RequestTypeId::new(0)
        }
        .same_kind(PairwiseDependency::Sequential {
            upstream: RequestTypeId::new(5)
        }));
        assert!(!PairwiseDependency::Parallel.same_kind(PairwiseDependency::None));
    }

    #[test]
    fn dependency_graph_from_topology() {
        let mut b = TopologyBuilder::new();
        let gw = b.add_service(ServiceSpec::new("gw"));
        let x = b.add_service(ServiceSpec::new("x"));
        let y = b.add_service(ServiceSpec::new("y"));
        b.add_request_type("rx", vec![(gw, ms(1)), (x, ms(5))]);
        b.add_request_type("ry", vec![(gw, ms(1)), (y, ms(5))]);
        let topo = b.build();
        let g = topo.dependency_graph();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(gw, x));
        assert!(g.has_edge(gw, y));
        assert!(!g.has_edge(x, y));
        assert_eq!(g.shared_services(), vec![gw]);
        assert_eq!(g.visitors(gw).count(), 2);
        assert_eq!(g.visitors(x).count(), 1);
    }
}
