//! The application topology: all services plus all supported request types.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use simnet::SimDuration;

use crate::depgraph::DependencyGraph;
use crate::ids::{RequestTypeId, ServiceId};
use crate::path::ExecutionPath;
use crate::spec::{PathStep, RequestTypeSpec, ServiceSpec};

/// A complete microservice application description.
///
/// Immutable once built; construct via [`TopologyBuilder`]. The topology is
/// shared by the platform simulator (which instantiates replicas and
/// queues), by the workload generator (which samples request types) and by
/// the ground-truth analysis (which classifies pairwise dependencies).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    services: Vec<ServiceSpec>,
    request_types: Vec<RequestTypeSpec>,
}

impl Topology {
    /// All services, indexable by [`ServiceId::index`].
    pub fn services(&self) -> &[ServiceSpec] {
        &self.services
    }

    /// All request types, indexable by [`RequestTypeId::index`].
    pub fn request_types(&self) -> &[RequestTypeSpec] {
        &self.request_types
    }

    /// The spec of one service.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this topology.
    pub fn service(&self, id: ServiceId) -> &ServiceSpec {
        &self.services[id.index()]
    }

    /// The spec of one request type.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this topology.
    pub fn request_type(&self, id: RequestTypeId) -> &RequestTypeSpec {
        &self.request_types[id.index()]
    }

    /// Looks up a service by name.
    pub fn service_by_name(&self, name: &str) -> Option<ServiceId> {
        self.services
            .iter()
            .position(|s| s.name == name)
            .map(|i| ServiceId::new(i as u32))
    }

    /// Looks up a request type by name.
    pub fn request_type_by_name(&self, name: &str) -> Option<RequestTypeId> {
        self.request_types
            .iter()
            .position(|s| s.name == name)
            .map(|i| RequestTypeId::new(i as u32))
    }

    /// The execution path (critical path) of a request type.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this topology.
    pub fn path(&self, id: RequestTypeId) -> ExecutionPath {
        ExecutionPath::from_spec(self.request_type(id))
    }

    /// Execution paths of all request types, in id order.
    pub fn paths(&self) -> Vec<ExecutionPath> {
        self.request_types
            .iter()
            .map(ExecutionPath::from_spec)
            .collect()
    }

    /// The aggregated upstream→downstream dependency graph over all
    /// request types.
    pub fn dependency_graph(&self) -> DependencyGraph {
        DependencyGraph::from_topology(self)
    }

    /// Number of services.
    pub fn num_services(&self) -> usize {
        self.services.len()
    }

    /// Number of request types.
    pub fn num_request_types(&self) -> usize {
        self.request_types.len()
    }
}

/// Incremental constructor for [`Topology`].
///
/// # Example
///
/// ```
/// use callgraph::{ServiceSpec, TopologyBuilder};
/// use simnet::SimDuration;
///
/// let mut b = TopologyBuilder::new();
/// let gw = b.add_service(ServiceSpec::new("gateway"));
/// let user = b.add_service(ServiceSpec::new("user"));
/// b.add_request_type(
///     "login",
///     vec![
///         (gw, SimDuration::from_millis(1)),
///         (user, SimDuration::from_millis(4)),
///     ],
/// );
/// let topo = b.build();
/// assert_eq!(topo.num_services(), 2);
/// assert_eq!(topo.num_request_types(), 1);
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    services: Vec<ServiceSpec>,
    request_types: Vec<RequestTypeSpec>,
    names: HashMap<String, ServiceId>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    /// Registers a service and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a service with the same name was already added, or if the
    /// spec has zero threads or zero cores.
    pub fn add_service(&mut self, spec: ServiceSpec) -> ServiceId {
        assert!(spec.threads > 0, "service {:?} needs threads", spec.name);
        assert!(spec.cores > 0, "service {:?} needs cores", spec.name);
        assert!(spec.replicas > 0, "service {:?} needs replicas", spec.name);
        assert!(
            !self.names.contains_key(&spec.name),
            "duplicate service name {:?}",
            spec.name
        );
        let id = ServiceId::new(self.services.len() as u32);
        self.names.insert(spec.name.clone(), id);
        self.services.push(spec);
        id
    }

    /// Registers a request type whose critical path visits the given
    /// `(service, demand)` chain (entry service first) and returns its id.
    ///
    /// Payload sizes default to 1 KiB request / 8 KiB response; use
    /// [`TopologyBuilder::add_request_type_sized`] to override.
    ///
    /// # Panics
    ///
    /// Panics if the chain is empty or references an unknown service.
    pub fn add_request_type(
        &mut self,
        name: impl Into<String>,
        chain: Vec<(ServiceId, SimDuration)>,
    ) -> RequestTypeId {
        self.add_request_type_sized(name, chain, 1024, 8 * 1024)
    }

    /// Like [`TopologyBuilder::add_request_type`] with explicit payload
    /// sizes in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the chain is empty or references an unknown service.
    pub fn add_request_type_sized(
        &mut self,
        name: impl Into<String>,
        chain: Vec<(ServiceId, SimDuration)>,
        request_bytes: u64,
        response_bytes: u64,
    ) -> RequestTypeId {
        assert!(!chain.is_empty(), "request type needs at least one step");
        for (svc, _) in &chain {
            assert!(
                svc.index() < self.services.len(),
                "unknown service {svc} in request type"
            );
        }
        let id = RequestTypeId::new(self.request_types.len() as u32);
        self.request_types.push(RequestTypeSpec {
            id,
            name: name.into(),
            steps: chain
                .into_iter()
                .map(|(service, demand)| PathStep { service, demand })
                .collect(),
            request_bytes,
            response_bytes,
        });
        id
    }

    /// Finalises the topology.
    ///
    /// # Panics
    ///
    /// Panics if no request types were registered.
    pub fn build(self) -> Topology {
        assert!(
            !self.request_types.is_empty(),
            "topology needs at least one request type"
        );
        Topology {
            services: self.services,
            request_types: self.request_types,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Topology {
        let mut b = TopologyBuilder::new();
        let gw = b.add_service(ServiceSpec::new("gw"));
        let a = b.add_service(ServiceSpec::new("a"));
        let c = b.add_service(ServiceSpec::new("c"));
        b.add_request_type(
            "ra",
            vec![
                (gw, SimDuration::from_millis(1)),
                (a, SimDuration::from_millis(5)),
            ],
        );
        b.add_request_type(
            "rc",
            vec![
                (gw, SimDuration::from_millis(1)),
                (c, SimDuration::from_millis(3)),
            ],
        );
        b.build()
    }

    #[test]
    fn lookup_by_name_works() {
        let t = demo();
        assert_eq!(t.service_by_name("a"), Some(ServiceId::new(1)));
        assert_eq!(t.service_by_name("zzz"), None);
        assert_eq!(t.request_type_by_name("rc"), Some(RequestTypeId::new(1)));
        assert_eq!(t.request_type_by_name("zzz"), None);
    }

    #[test]
    fn paths_cover_all_request_types() {
        let t = demo();
        let paths = t.paths();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate service name")]
    fn duplicate_names_rejected() {
        let mut b = TopologyBuilder::new();
        b.add_service(ServiceSpec::new("x"));
        b.add_service(ServiceSpec::new("x"));
    }

    #[test]
    #[should_panic(expected = "unknown service")]
    fn unknown_service_rejected() {
        let mut b = TopologyBuilder::new();
        b.add_service(ServiceSpec::new("x"));
        b.add_request_type("r", vec![(ServiceId::new(9), SimDuration::ZERO)]);
    }

    #[test]
    #[should_panic(expected = "at least one request type")]
    fn empty_topology_rejected() {
        let mut b = TopologyBuilder::new();
        b.add_service(ServiceSpec::new("x"));
        b.build();
    }

    #[test]
    #[should_panic(expected = "needs threads")]
    fn zero_threads_rejected() {
        let mut b = TopologyBuilder::new();
        b.add_service(ServiceSpec::new("x").threads(0));
    }
}
