//! Typed identifiers for topology entities.
//!
//! Newtypes keep service indices and request-type indices from being mixed
//! up at compile time (C-NEWTYPE). Both are dense indices assigned by
//! [`TopologyBuilder`](crate::TopologyBuilder) in insertion order, so they
//! double as `Vec` indices inside this workspace.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a microservice within a [`Topology`](crate::Topology).
///
/// # Example
///
/// ```
/// use callgraph::ServiceId;
///
/// let id = ServiceId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(id.to_string(), "svc#3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ServiceId(u32);

impl ServiceId {
    /// Creates an id from a dense index.
    pub const fn new(index: u32) -> Self {
        ServiceId(index)
    }

    /// The dense index, usable to address per-service vectors.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svc#{}", self.0)
    }
}

impl From<ServiceId> for usize {
    fn from(id: ServiceId) -> usize {
        id.index()
    }
}

/// Identifier of a user-request type (equivalently, of the critical path it
/// triggers — the paper treats each request type as one critical path).
///
/// # Example
///
/// ```
/// use callgraph::RequestTypeId;
///
/// let id = RequestTypeId::new(1);
/// assert_eq!(id.index(), 1);
/// assert_eq!(id.to_string(), "req#1");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RequestTypeId(u32);

impl RequestTypeId {
    /// Creates an id from a dense index.
    pub const fn new(index: u32) -> Self {
        RequestTypeId(index)
    }

    /// The dense index, usable to address per-type vectors.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RequestTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

impl From<RequestTypeId> for usize {
    fn from(id: RequestTypeId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_ordered_and_hashable() {
        let a = ServiceId::new(1);
        let b = ServiceId::new(2);
        assert!(a < b);
        let set: HashSet<ServiceId> = [a, b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ServiceId::new(7).to_string(), "svc#7");
        assert_eq!(RequestTypeId::new(7).to_string(), "req#7");
    }

    #[test]
    fn usize_conversion() {
        assert_eq!(usize::from(ServiceId::new(9)), 9);
        assert_eq!(usize::from(RequestTypeId::new(9)), 9);
    }
}
