//! Call-graph substrate: service topologies, request types, execution
//! paths, dependency graphs and critical-path extraction.
//!
//! This crate models the *structure* the Grunt attack exploits — which
//! microservices exist, which chains of RPC calls each user-request type
//! triggers, where each chain's bottleneck sits, and how two chains relate
//! (no dependency, parallel, sequential, or shared bottleneck, per
//! Definitions I and II of the paper).
//!
//! Runtime behaviour (queues, CPU, blocking) lives in the `microsim` crate;
//! here everything is static description plus graph algorithms:
//!
//! * [`Topology`] / [`TopologyBuilder`] — services and request types.
//! * [`ExecutionPath`] — the critical path of a request type as a chain of
//!   (service, compute demand) steps.
//! * [`DependencyGraph`] — aggregated upstream→downstream call edges.
//! * [`classify_pair`] — ground-truth pairwise dependency between two paths
//!   (the administrator's view; the attacker re-derives this blackbox in the
//!   `grunt` crate).
//! * [`DependencyGroups`] — connected components of mutually dependent
//!   paths.
//! * [`history`] — execution-history graphs (span trees) recorded at
//!   runtime and CRISP-style critical-path extraction from them.
//!
//! # Example
//!
//! ```
//! use callgraph::{TopologyBuilder, ServiceSpec};
//! use simnet::SimDuration;
//!
//! let mut b = TopologyBuilder::new();
//! let gw = b.add_service(ServiceSpec::new("gateway").threads(64));
//! let post = b.add_service(ServiceSpec::new("post-storage").threads(16));
//! b.add_request_type(
//!     "read-post",
//!     vec![
//!         (gw, SimDuration::from_millis(1)),
//!         (post, SimDuration::from_millis(8)),
//!     ],
//! );
//! let topo = b.build();
//! assert_eq!(topo.services().len(), 2);
//! let path = topo.path(topo.request_types()[0].id);
//! assert_eq!(path.bottleneck_service(), post);
//! ```

pub mod depgraph;
pub mod disjoint;
pub mod groups;
pub mod history;
pub mod ids;
pub mod path;
pub mod spec;
pub mod topology;

pub use depgraph::{
    classify_pair, classify_pair_filtered, classify_pair_with_bottlenecks, DependencyGraph,
    PairwiseDependency,
};
pub use disjoint::DisjointSets;
pub use groups::DependencyGroups;
pub use history::{CriticalPath, ExecutionHistory, Span, SpanId};
pub use ids::{RequestTypeId, ServiceId};
pub use path::ExecutionPath;
pub use spec::{RequestTypeSpec, ServiceSpec};
pub use topology::{Topology, TopologyBuilder};
