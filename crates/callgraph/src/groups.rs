//! Dependency-group construction.
//!
//! A *dependency group* (Section II-B) is a maximal set of critical paths
//! that can mutually block each other: the connected components of the
//! pairwise-dependency relation.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::depgraph::PairwiseDependency;
use crate::disjoint::DisjointSets;
use crate::ids::RequestTypeId;
use crate::path::ExecutionPath;

/// The partition of all request types into dependency groups, together with
/// the pairwise classifications that produced it.
///
/// # Example
///
/// ```
/// use callgraph::{DependencyGroups, ExecutionPath, RequestTypeId, ServiceId};
/// use simnet::SimDuration;
///
/// let ms = SimDuration::from_millis;
/// let paths = vec![
///     ExecutionPath::from_chain(RequestTypeId::new(0),
///         vec![(ServiceId::new(0), ms(1)), (ServiceId::new(1), ms(9))]),
///     ExecutionPath::from_chain(RequestTypeId::new(1),
///         vec![(ServiceId::new(0), ms(1)), (ServiceId::new(2), ms(9))]),
///     ExecutionPath::from_chain(RequestTypeId::new(2),
///         vec![(ServiceId::new(3), ms(1)), (ServiceId::new(4), ms(9))]),
/// ];
/// let groups = DependencyGroups::from_ground_truth(&paths);
/// assert_eq!(groups.len(), 2); // {0,1} share a gateway; {2} is alone
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DependencyGroups {
    groups: Vec<Vec<RequestTypeId>>,
    /// Serialised as a sequence of `((a, b), dep)` entries: JSON and
    /// friends cannot key maps by tuples.
    #[serde(with = "pairs_as_seq")]
    pairwise: BTreeMap<(RequestTypeId, RequestTypeId), PairwiseDependency>,
}

/// Serde adapter: tuple-keyed map <-> sequence of pairs.
mod pairs_as_seq {
    use std::collections::BTreeMap;

    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    use crate::depgraph::PairwiseDependency;
    use crate::ids::RequestTypeId;

    type Key = (RequestTypeId, RequestTypeId);

    pub fn serialize<S: Serializer>(
        map: &BTreeMap<Key, PairwiseDependency>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        let entries: Vec<(Key, PairwiseDependency)> = map.iter().map(|(k, v)| (*k, *v)).collect();
        entries.serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<BTreeMap<Key, PairwiseDependency>, D::Error> {
        let entries = Vec::<(Key, PairwiseDependency)>::deserialize(de)?;
        Ok(entries.into_iter().collect())
    }
}

impl DependencyGroups {
    /// Builds groups from ground-truth path structure (administrator view).
    pub fn from_ground_truth(paths: &[ExecutionPath]) -> Self {
        Self::from_ground_truth_filtered(paths, |_| true)
    }

    /// [`DependencyGroups::from_ground_truth`] restricted to blockable
    /// services: shared services failing `is_blockable` (e.g. an nginx
    /// frontend with an effectively unbounded worker pool) cannot relay
    /// blocking and do not merge groups.
    pub fn from_ground_truth_filtered(
        paths: &[ExecutionPath],
        is_blockable: impl Fn(crate::ids::ServiceId) -> bool,
    ) -> Self {
        let mut pairwise = BTreeMap::new();
        for i in 0..paths.len() {
            for j in (i + 1)..paths.len() {
                let (a, b) = (&paths[i], &paths[j]);
                let dep = crate::depgraph::classify_pair_filtered(
                    a,
                    a.bottleneck_service(),
                    b,
                    b.bottleneck_service(),
                    &is_blockable,
                );
                pairwise.insert((a.request_type(), b.request_type()), dep);
            }
        }
        Self::from_pairwise(
            paths
                .iter()
                .map(super::path::ExecutionPath::request_type)
                .collect(),
            pairwise,
        )
    }

    /// Builds groups from an explicit pairwise classification — this is the
    /// constructor the blackbox profiler uses, and also the entry point for
    /// tests that need hand-crafted relations.
    ///
    /// Keys may be in either orientation; missing pairs default to
    /// [`PairwiseDependency::None`].
    pub fn from_pairwise(
        members: Vec<RequestTypeId>,
        pairwise: BTreeMap<(RequestTypeId, RequestTypeId), PairwiseDependency>,
    ) -> Self {
        let index: BTreeMap<RequestTypeId, usize> =
            members.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        let mut sets = DisjointSets::new(members.len());
        let mut canonical = BTreeMap::new();
        for (&(a, b), &dep) in &pairwise {
            let key = if a <= b { (a, b) } else { (b, a) };
            canonical.insert(key, dep);
            if dep.is_dependent() {
                if let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) {
                    sets.union(ia, ib);
                }
            }
        }
        let groups = sets
            .groups()
            .into_iter()
            .map(|g| g.into_iter().map(|i| members[i]).collect())
            .collect();
        DependencyGroups {
            groups,
            pairwise: canonical,
        }
    }

    /// The groups, each sorted by request-type id, ordered by their
    /// smallest member.
    pub fn groups(&self) -> &[Vec<RequestTypeId>] {
        &self.groups
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` when there are no groups (no request types).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The group containing `id`, if any.
    pub fn group_of(&self, id: RequestTypeId) -> Option<&[RequestTypeId]> {
        self.groups
            .iter()
            .find(|g| g.contains(&id))
            .map(std::vec::Vec::as_slice)
    }

    /// The recorded classification for a pair, orientation-insensitive.
    /// Unrecorded pairs return [`PairwiseDependency::None`].
    pub fn pairwise(&self, a: RequestTypeId, b: RequestTypeId) -> PairwiseDependency {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pairwise
            .get(&key)
            .copied()
            .unwrap_or(PairwiseDependency::None)
    }

    /// Iterates over all recorded pairs `(a, b, dependency)` with `a < b`.
    pub fn pairs(
        &self,
    ) -> impl Iterator<Item = (RequestTypeId, RequestTypeId, PairwiseDependency)> + '_ {
        self.pairwise.iter().map(|(&(a, b), &d)| (a, b, d))
    }

    /// Groups with at least two members — the ones worth attacking.
    pub fn multi_member_groups(&self) -> impl Iterator<Item = &[RequestTypeId]> + '_ {
        self.groups
            .iter()
            .filter(|g| g.len() > 1)
            .map(std::vec::Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ServiceId;
    use simnet::SimDuration;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn chain(rt: u32, steps: &[(u32, u64)]) -> ExecutionPath {
        ExecutionPath::from_chain(
            RequestTypeId::new(rt),
            steps
                .iter()
                .map(|&(s, d)| (ServiceId::new(s), ms(d)))
                .collect(),
        )
    }

    #[test]
    fn ground_truth_groups_connected_components() {
        let paths = vec![
            chain(0, &[(0, 1), (1, 9)]),
            chain(1, &[(0, 1), (2, 9)]), // parallel with 0 via gateway 0
            chain(2, &[(3, 1), (4, 9)]), // independent
            chain(3, &[(3, 1), (4, 2), (5, 9)]), // sequential with 2
        ];
        let groups = DependencyGroups::from_ground_truth(&paths);
        assert_eq!(groups.len(), 2);
        assert_eq!(
            groups.group_of(RequestTypeId::new(0)).unwrap(),
            &[RequestTypeId::new(0), RequestTypeId::new(1)]
        );
        assert_eq!(
            groups.group_of(RequestTypeId::new(3)).unwrap(),
            &[RequestTypeId::new(2), RequestTypeId::new(3)]
        );
        assert_eq!(
            groups.pairwise(RequestTypeId::new(1), RequestTypeId::new(0)),
            PairwiseDependency::Parallel
        );
    }

    #[test]
    fn pairwise_lookup_is_symmetric() {
        let paths = vec![chain(0, &[(0, 1), (1, 9)]), chain(1, &[(0, 1), (2, 9)])];
        let g = DependencyGroups::from_ground_truth(&paths);
        assert_eq!(
            g.pairwise(RequestTypeId::new(0), RequestTypeId::new(1)),
            g.pairwise(RequestTypeId::new(1), RequestTypeId::new(0)),
        );
    }

    #[test]
    fn unknown_pair_defaults_to_none() {
        let g = DependencyGroups::from_ground_truth(&[chain(0, &[(0, 1)])]);
        assert_eq!(
            g.pairwise(RequestTypeId::new(0), RequestTypeId::new(42)),
            PairwiseDependency::None
        );
    }

    #[test]
    fn multi_member_groups_filters_singletons() {
        let paths = vec![
            chain(0, &[(0, 1), (1, 9)]),
            chain(1, &[(0, 1), (2, 9)]),
            chain(2, &[(7, 9)]),
        ];
        let g = DependencyGroups::from_ground_truth(&paths);
        let multi: Vec<_> = g.multi_member_groups().collect();
        assert_eq!(multi.len(), 1);
        assert_eq!(multi[0].len(), 2);
    }

    #[test]
    fn from_pairwise_handles_reversed_keys() {
        let members = vec![RequestTypeId::new(0), RequestTypeId::new(1)];
        let mut pairwise = BTreeMap::new();
        // Reversed orientation (b, a).
        pairwise.insert(
            (RequestTypeId::new(1), RequestTypeId::new(0)),
            PairwiseDependency::Parallel,
        );
        let g = DependencyGroups::from_pairwise(members, pairwise);
        assert_eq!(g.len(), 1);
        assert_eq!(
            g.pairwise(RequestTypeId::new(0), RequestTypeId::new(1)),
            PairwiseDependency::Parallel
        );
    }

    #[test]
    fn pairs_iterates_in_canonical_order() {
        let paths = vec![
            chain(0, &[(0, 1), (1, 9)]),
            chain(1, &[(0, 1), (2, 9)]),
            chain(2, &[(9, 5)]),
        ];
        let g = DependencyGroups::from_ground_truth(&paths);
        let pairs: Vec<_> = g.pairs().collect();
        assert_eq!(pairs.len(), 3);
        assert!(pairs.iter().all(|(a, b, _)| a < b));
    }
}
