//! Declarative specifications of services and request types.

use serde::{Deserialize, Serialize};
use simnet::SimDuration;

use crate::ids::{RequestTypeId, ServiceId};

/// Static description of one microservice.
///
/// Mirrors the paper's deployment unit: a container with a worker thread
/// pool (the "queue size" `Q_i` of Table II — each queued request holds one
/// server thread) running on a VM with a small number of cores (1 vCPU in
/// the paper's cloud setups).
///
/// Built with a lightweight builder-style API:
///
/// ```
/// use callgraph::ServiceSpec;
///
/// let spec = ServiceSpec::new("compose-post").threads(32).cores(1);
/// assert_eq!(spec.name, "compose-post");
/// assert_eq!(spec.threads, 32);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Human-readable service name (unique within a topology).
    pub name: String,
    /// Worker-thread pool size: the maximum number of requests admitted
    /// concurrently (queue size `Q_i`).
    pub threads: u32,
    /// CPU cores per replica; compute segments of admitted requests share
    /// these cores FIFO.
    pub cores: u32,
    /// Initial number of replicas (the auto-scaler may add more).
    pub replicas: u32,
    /// Coefficient of variation applied to compute demands at this service
    /// (right-skewed lognormal jitter). Zero means deterministic demands.
    pub demand_cv: f64,
    /// Whether this service's thread pool can realistically fill and relay
    /// blocking upstream. Frontend gateways / CDN-like tiers with very
    /// large worker pools are effectively unblockable within stealthy
    /// attack volumes and do not merge dependency groups.
    pub blockable: bool,
}

impl ServiceSpec {
    /// Creates a spec with the paper's defaults: 32 threads, 1 core,
    /// 1 replica, mild demand jitter.
    pub fn new(name: impl Into<String>) -> Self {
        ServiceSpec {
            name: name.into(),
            threads: 32,
            cores: 1,
            replicas: 1,
            demand_cv: 0.1,
            blockable: true,
        }
    }

    /// Sets the worker-thread pool size.
    pub fn threads(mut self, threads: u32) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the number of cores per replica.
    pub fn cores(mut self, cores: u32) -> Self {
        self.cores = cores;
        self
    }

    /// Sets the initial replica count.
    pub fn replicas(mut self, replicas: u32) -> Self {
        self.replicas = replicas;
        self
    }

    /// Sets the compute-demand coefficient of variation.
    pub fn demand_cv(mut self, cv: f64) -> Self {
        self.demand_cv = cv;
        self
    }

    /// Marks the service as (un)blockable; see the field docs.
    pub fn blockable(mut self, blockable: bool) -> Self {
        self.blockable = blockable;
        self
    }
}

/// One step of an execution path: a visit to a service with a mean compute
/// demand.
///
/// In the runtime model the demand is split evenly into a pre-call and a
/// post-call compute segment around the downstream RPC (if any); see the
/// `microsim` crate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathStep {
    /// The service visited at this step.
    pub service: ServiceId,
    /// Mean CPU demand consumed at this service per request.
    pub demand: SimDuration,
}

/// Static description of one user-request type.
///
/// The paper treats each public HTTP request type as triggering one critical
/// path — a chain of services from the entry/gateway service downward
/// (Fig 2c). `steps[0]` is the entry service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTypeSpec {
    /// Identifier, dense within the owning topology.
    pub id: RequestTypeId,
    /// Human-readable name, e.g. `"compose-post"`.
    pub name: String,
    /// The chain of service visits; `steps[0]` is the entry service.
    pub steps: Vec<PathStep>,
    /// Mean response payload size in bytes (for network-traffic accounting
    /// at the gateway, Tables I/III report MB/s).
    pub response_bytes: u64,
    /// Mean request payload size in bytes.
    pub request_bytes: u64,
}

impl RequestTypeSpec {
    /// Total mean compute demand across the whole chain — a lower bound on
    /// the request's response time in an idle system.
    pub fn total_demand(&self) -> SimDuration {
        self.steps
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.demand)
    }

    /// The services visited, in upstream→downstream order.
    pub fn services(&self) -> impl Iterator<Item = ServiceId> + '_ {
        self.steps.iter().map(|s| s.service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_spec_builder_chains() {
        let s = ServiceSpec::new("svc")
            .threads(8)
            .cores(2)
            .replicas(3)
            .demand_cv(0.0);
        assert_eq!(s.threads, 8);
        assert_eq!(s.cores, 2);
        assert_eq!(s.replicas, 3);
        assert_eq!(s.demand_cv, 0.0);
    }

    #[test]
    fn total_demand_sums_steps() {
        let spec = RequestTypeSpec {
            id: RequestTypeId::new(0),
            name: "t".into(),
            steps: vec![
                PathStep {
                    service: ServiceId::new(0),
                    demand: SimDuration::from_millis(2),
                },
                PathStep {
                    service: ServiceId::new(1),
                    demand: SimDuration::from_millis(5),
                },
            ],
            response_bytes: 0,
            request_bytes: 0,
        };
        assert_eq!(spec.total_demand(), SimDuration::from_millis(7));
        assert_eq!(spec.services().count(), 2);
    }
}
