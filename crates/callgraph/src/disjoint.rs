//! Union–find (disjoint sets) over dense indices.
//!
//! Used to build dependency groups: every pairwise dependency merges the two
//! paths' sets, and the surviving sets are the groups.

/// A union–find structure with path compression and union by size.
///
/// # Example
///
/// ```
/// use callgraph::DisjointSets;
///
/// let mut ds = DisjointSets::new(4);
/// ds.union(0, 1);
/// ds.union(2, 3);
/// assert!(ds.connected(0, 1));
/// assert!(!ds.connected(1, 2));
/// assert_eq!(ds.num_sets(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DisjointSets {
    parent: Vec<usize>,
    size: Vec<usize>,
    num_sets: usize,
}

impl DisjointSets {
    /// Creates `n` singleton sets labelled `0..n`.
    pub fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n).collect(),
            size: vec![1; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The canonical representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`. Returns `true` when they were
    /// previously distinct.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        self.num_sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of distinct sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Groups the elements into their sets, each group sorted ascending,
    /// groups ordered by their smallest member.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut ds = DisjointSets::new(3);
        assert_eq!(ds.num_sets(), 3);
        assert!(!ds.connected(0, 2));
    }

    #[test]
    fn union_merges_and_reports() {
        let mut ds = DisjointSets::new(3);
        assert!(ds.union(0, 1));
        assert!(!ds.union(1, 0));
        assert_eq!(ds.num_sets(), 2);
        assert!(ds.connected(0, 1));
    }

    #[test]
    fn transitive_connectivity() {
        let mut ds = DisjointSets::new(5);
        ds.union(0, 1);
        ds.union(1, 2);
        ds.union(3, 4);
        assert!(ds.connected(0, 2));
        assert!(!ds.connected(2, 3));
        assert_eq!(ds.groups(), vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    fn groups_are_sorted() {
        let mut ds = DisjointSets::new(6);
        ds.union(5, 0);
        ds.union(4, 2);
        let groups = ds.groups();
        assert_eq!(groups, vec![vec![0, 5], vec![1], vec![2, 4], vec![3]]);
    }

    #[test]
    fn empty_structure() {
        let mut ds = DisjointSets::new(0);
        assert!(ds.is_empty());
        assert_eq!(ds.groups(), Vec::<Vec<usize>>::new());
    }
}
