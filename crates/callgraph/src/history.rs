//! Execution-history graphs recorded at runtime.
//!
//! A distributed trace of one request is a tree of *spans* (Fig 2a): the
//! root span covers the whole request at the entry service and each RPC
//! opens a child span at the downstream service. The *critical path* is the
//! chain of spans that determined the end-to-end latency; we extract it with
//! the standard last-returning-child walk (as in CRISP and Jaeger critical
//! path analysis).
//!
//! These graphs serve the administrator's ground-truth pipeline
//! (`telemetry` crate) — the attacker never sees them.

use serde::{Deserialize, Serialize};
use simnet::{SimDuration, SimTime};

use crate::ids::ServiceId;

/// Identifier of a span within one [`ExecutionHistory`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SpanId(u32);

impl SpanId {
    /// Creates a span id from its dense index.
    pub const fn new(index: u32) -> Self {
        SpanId(index)
    }

    /// The dense index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// One service-side execution interval of a request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// This span's id.
    pub id: SpanId,
    /// Parent span, `None` for the root.
    pub parent: Option<SpanId>,
    /// Service that executed the span.
    pub service: ServiceId,
    /// When the service accepted the request (or the RPC arrived).
    pub start: SimTime,
    /// When the service replied.
    pub end: SimTime,
}

impl Span {
    /// Wall-clock length of the span.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// The span tree of one completed request.
///
/// # Example
///
/// ```
/// use callgraph::{ExecutionHistory, ServiceId};
/// use simnet::SimTime;
///
/// let mut h = ExecutionHistory::new();
/// let root = h.record(None, ServiceId::new(0), SimTime::from_millis(0), SimTime::from_millis(10));
/// let _child = h.record(Some(root), ServiceId::new(1), SimTime::from_millis(2), SimTime::from_millis(9));
/// let cp = h.critical_path().unwrap();
/// assert_eq!(cp.services(), vec![ServiceId::new(0), ServiceId::new(1)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionHistory {
    spans: Vec<Span>,
}

impl ExecutionHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        ExecutionHistory::default()
    }

    /// Appends a span and returns its id. The first recorded span with
    /// `parent == None` is the root.
    pub fn record(
        &mut self,
        parent: Option<SpanId>,
        service: ServiceId,
        start: SimTime,
        end: SimTime,
    ) -> SpanId {
        let id = SpanId::new(self.spans.len() as u32);
        self.spans.push(Span {
            id,
            parent,
            service,
            start,
            end,
        });
        id
    }

    /// All recorded spans in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The root span, if one was recorded.
    pub fn root(&self) -> Option<&Span> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// Direct children of `parent`, in recording order.
    pub fn children(&self, parent: SpanId) -> impl Iterator<Item = &Span> + '_ {
        self.spans.iter().filter(move |s| s.parent == Some(parent))
    }

    /// End-to-end latency (root span duration). `None` without a root.
    pub fn latency(&self) -> Option<SimDuration> {
        self.root().map(Span::duration)
    }

    /// Extracts the critical path: starting at the root, repeatedly descend
    /// into the child that *returned last*, because the parent could not
    /// proceed before that reply. Returns `None` when no root exists.
    pub fn critical_path(&self) -> Option<CriticalPath> {
        let mut chain = Vec::new();
        let mut cur = self.root()?;
        loop {
            chain.push(*cur);
            let last_child = self.children(cur.id).max_by_key(|c| (c.end, c.id));
            match last_child {
                Some(c) => cur = c,
                None => break,
            }
        }
        Some(CriticalPath { spans: chain })
    }
}

/// The latency-dominating chain of spans of one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPath {
    spans: Vec<Span>,
}

impl CriticalPath {
    /// The chain of spans, root first.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The services along the chain, root first.
    pub fn services(&self) -> Vec<ServiceId> {
        self.spans.iter().map(|s| s.service).collect()
    }

    /// The span on this path with the largest *self time* — time not
    /// covered by its own critical-path child. This is the runtime
    /// bottleneck estimate used for ground truth (the Collectl role in the
    /// paper's live experiments).
    pub fn bottleneck_service(&self) -> ServiceId {
        let mut best = (SimDuration::ZERO, self.spans[0].service);
        for (i, s) in self.spans.iter().enumerate() {
            let child_time = self
                .spans
                .get(i + 1)
                .map_or(SimDuration::ZERO, Span::duration);
            let self_time = s.duration().saturating_sub(child_time);
            if self_time >= best.0 {
                best = (self_time, s.service);
            }
        }
        best.1
    }

    /// Number of spans on the path.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when the path has no spans (never produced by
    /// [`ExecutionHistory::critical_path`]).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn critical_path_follows_last_returning_child() {
        // Fig 2a: root A calls B and D; B calls C. D returns last at the
        // top level, so the critical path is A -> D... unless B finishes
        // later. Here B (via C) ends at 9, D ends at 6: path is A -> B -> C.
        let mut h = ExecutionHistory::new();
        let a = h.record(None, ServiceId::new(0), t(0), t(10));
        let b = h.record(Some(a), ServiceId::new(1), t(1), t(9));
        let _c = h.record(Some(b), ServiceId::new(2), t(2), t(8));
        let _d = h.record(Some(a), ServiceId::new(3), t(1), t(6));
        let cp = h.critical_path().unwrap();
        assert_eq!(
            cp.services(),
            vec![ServiceId::new(0), ServiceId::new(1), ServiceId::new(2)]
        );
        assert_eq!(cp.len(), 3);
    }

    #[test]
    fn bottleneck_is_largest_self_time() {
        let mut h = ExecutionHistory::new();
        // Root self time = 10-0 minus child 8 = 2; child self = 8-1 minus
        // grandchild 2 = 5; grandchild self = 2.
        let a = h.record(None, ServiceId::new(0), t(0), t(10));
        let b = h.record(Some(a), ServiceId::new(1), t(1), t(9));
        let _c = h.record(Some(b), ServiceId::new(2), t(3), t(5));
        let cp = h.critical_path().unwrap();
        assert_eq!(cp.bottleneck_service(), ServiceId::new(1));
    }

    #[test]
    fn latency_is_root_duration() {
        let mut h = ExecutionHistory::new();
        h.record(None, ServiceId::new(0), t(5), t(25));
        assert_eq!(h.latency(), Some(SimDuration::from_millis(20)));
    }

    #[test]
    fn empty_history_has_no_root() {
        let h = ExecutionHistory::new();
        assert!(h.root().is_none());
        assert!(h.critical_path().is_none());
        assert!(h.latency().is_none());
    }

    #[test]
    fn single_span_path() {
        let mut h = ExecutionHistory::new();
        h.record(None, ServiceId::new(4), t(0), t(3));
        let cp = h.critical_path().unwrap();
        assert_eq!(cp.services(), vec![ServiceId::new(4)]);
        assert_eq!(cp.bottleneck_service(), ServiceId::new(4));
        assert!(!cp.is_empty());
    }

    #[test]
    fn children_iterates_only_direct() {
        let mut h = ExecutionHistory::new();
        let a = h.record(None, ServiceId::new(0), t(0), t(10));
        let b = h.record(Some(a), ServiceId::new(1), t(1), t(2));
        let _grandchild = h.record(Some(b), ServiceId::new(2), t(1), t(2));
        assert_eq!(h.children(a).count(), 1);
        assert_eq!(h.children(b).count(), 1);
    }

    #[test]
    fn tie_on_end_prefers_later_recorded_child() {
        let mut h = ExecutionHistory::new();
        let a = h.record(None, ServiceId::new(0), t(0), t(10));
        h.record(Some(a), ServiceId::new(1), t(1), t(5));
        h.record(Some(a), ServiceId::new(2), t(1), t(5));
        let cp = h.critical_path().unwrap();
        assert_eq!(cp.services()[1], ServiceId::new(2));
    }
}
