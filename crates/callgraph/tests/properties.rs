//! Property-based tests of the graph substrate's invariants.

use callgraph::{
    classify_pair, DependencyGroups, DisjointSets, ExecutionHistory, ExecutionPath,
    PairwiseDependency, RequestTypeId, ServiceId,
};
use proptest::prelude::*;
use simnet::{SimDuration, SimTime};

/// Strategy: a random chain over a small service universe.
fn chain_strategy() -> impl Strategy<Value = Vec<(u32, u64)>> {
    prop::collection::vec((0u32..12, 1u64..30), 1..6)
}

fn dedup_chain(raw: Vec<(u32, u64)>) -> Vec<(ServiceId, SimDuration)> {
    // A path visits each service at most once (chains, not cycles).
    let mut seen = std::collections::HashSet::new();
    raw.into_iter()
        .filter(|(s, _)| seen.insert(*s))
        .map(|(s, d)| (ServiceId::new(s), SimDuration::from_millis(d)))
        .collect()
}

proptest! {
    /// Pairwise classification is symmetric up to the `upstream` tag:
    /// classify(a, b) and classify(b, a) agree on the kind, and a
    /// sequential upstream is the same path either way.
    #[test]
    fn classification_is_orientation_invariant(
        raw_a in chain_strategy(),
        raw_b in chain_strategy(),
    ) {
        let ca = dedup_chain(raw_a);
        let cb = dedup_chain(raw_b);
        prop_assume!(!ca.is_empty() && !cb.is_empty());
        let a = ExecutionPath::from_chain(RequestTypeId::new(0), ca);
        let b = ExecutionPath::from_chain(RequestTypeId::new(1), cb);
        let ab = classify_pair(&a, &b);
        let ba = classify_pair(&b, &a);
        prop_assert!(ab.same_kind(ba), "{ab:?} vs {ba:?}");
        if let (
            PairwiseDependency::Sequential { upstream: u1 },
            PairwiseDependency::Sequential { upstream: u2 },
        ) = (ab, ba)
        {
            prop_assert_eq!(u1, u2);
        }
    }

    /// Paths with no shared services are never dependent; paths sharing
    /// their bottleneck service are always dependent.
    #[test]
    fn sharing_rules(raw_a in chain_strategy(), raw_b in chain_strategy()) {
        let ca = dedup_chain(raw_a);
        let cb = dedup_chain(raw_b);
        prop_assume!(!ca.is_empty() && !cb.is_empty());
        let a = ExecutionPath::from_chain(RequestTypeId::new(0), ca);
        let b = ExecutionPath::from_chain(RequestTypeId::new(1), cb);
        let dep = classify_pair(&a, &b);
        if a.shared_services(&b).is_empty() {
            prop_assert_eq!(dep, PairwiseDependency::None);
        }
        if a.bottleneck_service() == b.bottleneck_service() {
            prop_assert_eq!(dep, PairwiseDependency::SharedBottleneck);
        }
    }

    /// Dependency groups partition the request types: every type is in
    /// exactly one group, and dependent pairs are co-grouped.
    #[test]
    fn groups_form_a_partition(chains in prop::collection::vec(chain_strategy(), 1..8)) {
        let mut paths = Vec::new();
        for (i, raw) in chains.into_iter().enumerate() {
            let c = dedup_chain(raw);
            if c.is_empty() {
                continue;
            }
            paths.push(ExecutionPath::from_chain(RequestTypeId::new(i as u32), c));
        }
        prop_assume!(!paths.is_empty());
        let groups = DependencyGroups::from_ground_truth(&paths);
        // Partition: each member appears exactly once.
        let mut seen = std::collections::HashSet::new();
        for g in groups.groups() {
            for rt in g {
                prop_assert!(seen.insert(*rt), "{rt} in two groups");
            }
        }
        prop_assert_eq!(seen.len(), paths.len());
        // Dependent pairs share a group.
        for i in 0..paths.len() {
            for j in (i + 1)..paths.len() {
                let (a, b) = (paths[i].request_type(), paths[j].request_type());
                if groups.pairwise(a, b).is_dependent() {
                    prop_assert_eq!(groups.group_of(a), groups.group_of(b));
                }
            }
        }
    }

    /// Union–find: connectivity is reflexive/symmetric/transitive and
    /// group count matches.
    #[test]
    fn disjoint_sets_equivalence(
        n in 1usize..30,
        unions in prop::collection::vec((0usize..30, 0usize..30), 0..40),
    ) {
        let mut ds = DisjointSets::new(n);
        for (a, b) in unions {
            if a < n && b < n {
                ds.union(a, b);
            }
        }
        let groups = ds.groups();
        prop_assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), n);
        prop_assert_eq!(groups.len(), ds.num_sets());
        for g in &groups {
            for &x in g {
                prop_assert!(ds.connected(g[0], x));
            }
        }
        // Elements of different groups are not connected.
        if groups.len() >= 2 {
            prop_assert!(!ds.connected(groups[0][0], groups[1][0]));
        }
    }

    /// Critical-path extraction: the path starts at the root, each hop is
    /// a parent→child edge, and its latency never exceeds the root span.
    #[test]
    fn critical_path_is_a_root_chain(spans in prop::collection::vec((0u64..100, 1u64..100), 1..20)) {
        let mut h = ExecutionHistory::new();
        let mut ids = Vec::new();
        for (i, (start, len)) in spans.iter().enumerate() {
            // Parent: random-ish but always an earlier span (or root).
            let parent = if i == 0 { None } else { Some(ids[(i * 7) % i]) };
            let id = h.record(
                parent,
                ServiceId::new((i % 5) as u32),
                SimTime::from_millis(*start),
                SimTime::from_millis(start + len),
            );
            ids.push(id);
        }
        let cp = h.critical_path().expect("root exists");
        let chain = cp.spans();
        prop_assert_eq!(chain[0].id, ids[0], "starts at the root");
        for w in chain.windows(2) {
            prop_assert_eq!(w[1].parent, Some(w[0].id), "consecutive spans are parent/child");
        }
    }

    /// The bottleneck step is the max-demand step and splits the path.
    #[test]
    fn bottleneck_invariants(raw in chain_strategy()) {
        let c = dedup_chain(raw);
        prop_assume!(!c.is_empty());
        let p = ExecutionPath::from_chain(RequestTypeId::new(0), c.clone());
        let max_demand = c.iter().map(|(_, d)| *d).max().expect("non-empty");
        prop_assert_eq!(p.bottleneck_demand(), max_demand);
        prop_assert_eq!(
            p.upstream_of_bottleneck().len() + 1 + p.downstream_of_bottleneck().len(),
            p.len()
        );
        let total: u64 = c.iter().map(|(_, d)| d.as_micros()).sum();
        prop_assert_eq!(p.total_demand().as_micros(), total);
    }
}
