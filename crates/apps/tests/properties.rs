//! Property-based tests of the application generators' invariants.

use apps::{social_network, SocialNetwork, UBench, UBenchConfig};
use proptest::prelude::*;
use telemetry::GroundTruth;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The µBench factory hits the requested service count exactly, for
    /// any feasible configuration, and the grouping matches the requested
    /// cluster structure.
    #[test]
    fn ubench_honours_its_contract(
        groups in 1usize..6,
        types_per_group in 1usize..5,
        extra_services in 0usize..120,
        seed in any::<u64>(),
        users in 500usize..8_000,
    ) {
        let overhead = 1 + groups;
        let num_types = groups * types_per_group;
        let services = overhead + num_types + extra_services;
        let cfg = UBenchConfig {
            services,
            groups,
            types_per_group,
            seed,
            users,
        };
        let app = UBench::generate(cfg);
        prop_assert_eq!(app.topology().num_services(), services);
        prop_assert_eq!(app.topology().num_request_types(), num_types);
        // Every service has sane provisioning.
        for svc in app.topology().services() {
            prop_assert!(svc.threads > 0 && svc.cores > 0 && svc.replicas > 0);
        }
        // Ground-truth groups: at most the planned number of clusters
        // (hub sharing guarantees co-grouping; shared-bottleneck rewiring
        // can only merge, never split).
        let gt = GroundTruth::from_topology(app.topology());
        prop_assert!(gt.groups().len() <= groups.max(1) + num_types, "sanity");
        for g in 0..groups {
            let a = callgraph::RequestTypeId::new((g * types_per_group) as u32);
            for t in 1..types_per_group {
                let b = callgraph::RequestTypeId::new((g * types_per_group + t) as u32);
                prop_assert_eq!(
                    gt.groups().group_of(a),
                    gt.groups().group_of(b),
                    "types of one cluster must share a group"
                );
            }
        }
    }

    /// SocialNetwork provisioning is monotone in the user count and the
    /// structure (services, types, groups) is population-independent.
    #[test]
    fn social_network_monotone_provisioning(users in 500usize..20_000) {
        let app = social_network(users);
        let bigger = social_network(users * 2);
        prop_assert_eq!(
            app.topology().num_services(),
            bigger.topology().num_services()
        );
        prop_assert_eq!(app.topology().num_request_types(), 10);
        let total_cores: u32 = app.topology().services().iter().map(|s| s.cores).sum();
        let bigger_cores: u32 = bigger.topology().services().iter().map(|s| s.cores).sum();
        prop_assert!(bigger_cores >= total_cores);
        let gt = GroundTruth::from_topology(app.topology());
        prop_assert_eq!(gt.groups().multi_member_groups().count(), 3);
    }

    /// The decoupled variant never has an attackable group, at any scale.
    #[test]
    fn decoupled_variant_always_safe(users in 500usize..20_000) {
        let app = SocialNetwork::decoupled(users);
        let gt = GroundTruth::from_topology(app.topology());
        prop_assert_eq!(gt.groups().multi_member_groups().count(), 0);
    }
}
