//! Ad-hoc calibration: baseline RT and utilisation of SocialNetwork.
use apps::social_network;
use microsim::{SimConfig, Simulation};
use simnet::{SimDuration, SimTime};
use workload::ClosedLoopUsers;

fn main() {
    let users: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7000);
    let app = social_network(users);
    let mut sim = Simulation::new(app.topology().clone(), SimConfig::default().seed(1));
    let pop = ClosedLoopUsers::new(users, app.browsing_model(), 42);
    let id = sim.add_agent(Box::new(pop));
    let t0 = std::time::Instant::now();
    sim.run_until(SimTime::from_secs(120));
    eprintln!("wall: {:?}", t0.elapsed());
    let m = sim.metrics();
    let summary = telemetry::LatencySummary::compute(
        m,
        telemetry::Traffic::Legit,
        None,
        SimTime::from_secs(30),
        SimTime::from_secs(120),
    );
    println!(
        "users={users} count={} avg={:.1}ms p95={:.1}ms p99={:.1}ms",
        summary.count, summary.avg_ms, summary.p95_ms, summary.p99_ms
    );
    let cw = telemetry::CoarseMonitor::new(m, SimDuration::from_secs(1));
    for name in [
        "memcached-post",
        "post-storage",
        "compose-post",
        "home-timeline",
        "social-graph",
        "user-mongodb",
        "nginx",
    ] {
        let svc = app.topology().service_by_name(name).unwrap();
        let util = cw.mean_utilization(svc, SimTime::from_secs(30), SimTime::from_secs(120));
        let reps = app.topology().service(svc).replicas;
        println!("  {name:22} util={util:.2} replicas={reps}");
    }
    let users_back: &ClosedLoopUsers = sim.agent_as(id).unwrap();
    println!(
        "  agent-side avg {:.1}ms over {} samples",
        users_back.latency_stats().mean(),
        users_back.latency_stats().count()
    );
}
