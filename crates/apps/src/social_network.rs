//! The SocialNetwork benchmark application (DeathStarBench-style, Fig 12a).
//!
//! A broadcast social network: users compose posts, read home/user
//! timelines and manage the social graph. An nginx frontend fans out to
//! three subsystems, each with its own storage tier:
//!
//! * **write path** — `compose-post` orchestrates text/media/url/mention
//!   processing into `post-storage` and `write-home-timeline`;
//! * **read path** — `home-timeline` / `user-timeline` serve from caches
//!   backed by `memcached-post`;
//! * **social path** — `user-service` and `social-graph` with their
//!   MongoDB backends.
//!
//! The ten public request types form exactly three ground-truth dependency
//! groups (one per subsystem, Fig 12c): within a group the paths share a
//! blockable mid-tier hub, across groups they share only the unblockable
//! nginx frontend.

use callgraph::{RequestTypeId, ServiceId, ServiceSpec, Topology, TopologyBuilder};
use simnet::SimDuration;
use workload::{BrowsingModel, RequestMix};

use crate::provision::provision_replicas;

/// Mean think time of the paper's closed-loop users, seconds.
pub const THINK_TIME_S: f64 = 7.0;

/// Target baseline utilisation replica provisioning aims for.
const TARGET_UTIL: f64 = 0.35;

/// Global demand scale: calibrated so a provisioned deployment serves the
/// baseline with ~100 ms average response time, like the paper's
/// deployments.
const DEMAND_SCALE: f64 = 1.8;

/// One catalog entry: request-type name, mix weight (%), and the chain of
/// `(service name, demand)` steps.
type CatalogEntry<S> = (S, f64, Vec<(S, SimDuration)>);

/// A provisioned SocialNetwork deployment.
#[derive(Debug, Clone)]
pub struct SocialNetwork {
    topology: Topology,
    mix: Vec<(RequestTypeId, f64)>,
    users: usize,
}

/// Builds a SocialNetwork deployment provisioned for `users` closed-loop
/// users (with the paper's 7 s think time).
///
/// # Example
///
/// ```
/// let app = apps::social_network(7_000);
/// assert_eq!(app.topology().num_request_types(), 10);
/// // nginx frontend plus three subsystems:
/// assert!(app.topology().num_services() >= 25);
/// ```
///
/// # Panics
///
/// Panics if `users` is zero.
pub fn social_network(users: usize) -> SocialNetwork {
    SocialNetwork::new(users)
}

impl SocialNetwork {
    /// See [`social_network`].
    ///
    /// # Panics
    ///
    /// Panics if `users` is zero.
    pub fn new(users: usize) -> Self {
        Self::build(users, true)
    }

    /// The Section VI mitigation variant: every microservice shared by
    /// multiple request types is split into per-type instances (only the
    /// unblockable nginx frontend remains shared). With no overlapped
    /// microservices there are no execution dependencies left to exploit —
    /// at the cost of many more deployed services and the loss of
    /// resource pooling.
    ///
    /// # Panics
    ///
    /// Panics if `users` is zero.
    pub fn decoupled(users: usize) -> Self {
        Self::build(users, false)
    }

    fn build(users: usize, shared: bool) -> Self {
        assert!(users > 0, "need at least one user");
        let total_rate = users as f64 / THINK_TIME_S;

        // (name, weight%, chain as (service name, demand ms))
        let ms = |v: f64| SimDuration::from_secs_f64(v * DEMAND_SCALE / 1e3);
        let catalog: Vec<CatalogEntry<&str>> = vec![
            (
                "compose-post",
                10.0,
                vec![
                    ("nginx", ms(0.3)),
                    ("compose-post", ms(6.0)),
                    ("text-service", ms(5.0)),
                    ("unique-id-service", ms(2.0)),
                    ("post-storage", ms(11.0)),
                    ("post-storage-mongodb", ms(3.0)),
                    ("write-home-timeline", ms(5.0)),
                    ("write-home-timeline-redis", ms(2.0)),
                ],
            ),
            (
                "upload-media",
                5.0,
                vec![
                    ("nginx", ms(0.3)),
                    ("compose-post", ms(6.0)),
                    ("media-service", ms(14.0)),
                    ("media-filter", ms(3.0)),
                    ("media-mongodb", ms(4.0)),
                ],
            ),
            (
                "share-url",
                5.0,
                vec![
                    ("nginx", ms(0.3)),
                    ("compose-post", ms(6.0)),
                    ("url-shorten-service", ms(12.0)),
                    ("url-shorten-mongodb", ms(4.0)),
                ],
            ),
            (
                // Heavy text processing inside the compose hub itself with
                // only light mention lookups below: this path's bottleneck
                // IS the shared hub, making it the execution-blocking
                // "upstream" path of the write group (the compose-post
                // queue of Fig 13c).
                "compose-rich-post",
                4.0,
                vec![
                    ("nginx", ms(0.3)),
                    ("compose-post", ms(16.0)),
                    ("user-mention-service", ms(1.5)),
                    ("user-mention-mongodb", ms(1.0)),
                ],
            ),
            (
                "read-home-timeline",
                18.0,
                vec![
                    ("nginx", ms(0.3)),
                    ("home-timeline", ms(5.0)),
                    ("home-timeline-redis", ms(4.0)),
                    ("memcached-post", ms(10.0)),
                ],
            ),
            (
                // Bottlenecks on its own user-timeline aggregation, with
                // the shared memcached tier downstream: read-home-timeline
                // can execution-block this path via memcached, giving the
                // read group a third distinct bottleneck to alternate on.
                "read-user-timeline",
                12.0,
                vec![
                    ("nginx", ms(0.3)),
                    ("user-timeline", ms(12.0)),
                    ("user-timeline-redis", ms(3.0)),
                    ("memcached-post", ms(8.0)),
                ],
            ),
            (
                "browse-hot-posts",
                12.0,
                vec![
                    ("nginx", ms(0.3)),
                    ("home-timeline", ms(13.0)),
                    ("home-timeline-redis", ms(4.0)),
                ],
            ),
            (
                "login",
                12.0,
                vec![
                    ("nginx", ms(0.3)),
                    ("user-service", ms(6.0)),
                    ("user-memcached", ms(2.0)),
                    ("user-mongodb", ms(10.0)),
                ],
            ),
            (
                // Bottlenecks on the social-graph MongoDB write, giving the
                // social group a bottleneck distinct from read-followers'
                // social-graph compute.
                "follow-user",
                10.0,
                vec![
                    ("nginx", ms(0.3)),
                    ("user-service", ms(6.0)),
                    ("social-graph", ms(7.0)),
                    ("social-graph-redis", ms(3.0)),
                    ("social-graph-mongodb", ms(12.0)),
                ],
            ),
            (
                // Read-only: served from the social-graph service and its
                // redis cache, never touching MongoDB — its bottleneck
                // (social-graph compute) is distinct from follow-user's.
                "read-followers",
                12.0,
                vec![
                    ("nginx", ms(0.3)),
                    ("social-graph", ms(14.0)),
                    ("social-graph-redis", ms(3.0)),
                ],
            ),
        ];

        // For the decoupled variant, rename every non-frontend service to
        // a per-request-type instance so no two paths overlap.
        let catalog: Vec<CatalogEntry<String>> = catalog
            .into_iter()
            .map(|(name, w, chain)| {
                let chain = chain
                    .into_iter()
                    .map(|(svc, d)| {
                        let svc = if shared || svc == "nginx" {
                            svc.to_string()
                        } else {
                            format!("{svc}@{name}")
                        };
                        (svc, d)
                    })
                    .collect();
                (name.to_string(), w, chain)
            })
            .collect();

        // Collect the unique service names in first-appearance order and
        // compute each one's offered demand-rate for provisioning.
        let mut service_names: Vec<&str> = Vec::new();
        for (_, _, chain) in &catalog {
            for (svc, _) in chain {
                if !service_names.contains(&svc.as_str()) {
                    service_names.push(svc);
                }
            }
        }

        let mut builder = TopologyBuilder::new();
        let mut ids: std::collections::HashMap<&str, ServiceId> = Default::default();
        for name in &service_names {
            let spec = if *name == "nginx" {
                // Frontend: many lightweight workers, effectively
                // unblockable within stealthy volumes.
                ServiceSpec::new("nginx")
                    .threads(8192)
                    .cores(8)
                    .blockable(false)
                    .demand_cv(0.15)
            } else {
                let offered: Vec<(RequestTypeId, f64)> = catalog
                    .iter()
                    .enumerate()
                    .map(|(i, (_, w, _))| (RequestTypeId::new(i as u32), total_rate * w / 100.0))
                    .collect();
                // Vertical provisioning: one logical queue per
                // microservice whose core count absorbs the offered load at
                // the target utilisation. The worker pool (queue size Q_i)
                // stays small and paper-like regardless of capacity — the
                // pool, not the CPU, is what cross-tier overflow fills.
                let cores = provision_replicas(
                    &offered,
                    |rt| {
                        catalog[rt.index()]
                            .2
                            .iter()
                            .find(|(svc, _)| svc == name)
                            .map(|(_, d)| *d)
                    },
                    1,
                    TARGET_UTIL,
                );
                // Worker pools scale with capacity: a slot is held for the
                // whole downstream residence (several times the local
                // demand), so peak occupancy is a small multiple of the
                // core count. Hubs sit above deep chains (longer
                // residence) and get a bigger multiple.
                let threads = if is_hub(name) {
                    (cores * 4).max(32)
                } else {
                    (cores * 3).max(20)
                };
                ServiceSpec::new(*name)
                    .threads(threads)
                    .cores(cores)
                    .replicas(1)
                    .demand_cv(0.25)
            };
            ids.insert(name, builder.add_service(spec));
        }

        let mut mix = Vec::new();
        for (i, (name, weight, chain)) in catalog.iter().enumerate() {
            let steps = chain
                .iter()
                .map(|(svc, d)| (ids[svc.as_str()], *d))
                .collect();
            let (req_bytes, resp_bytes) = payload_sizes(name);
            let id = builder.add_request_type_sized(name.clone(), steps, req_bytes, resp_bytes);
            debug_assert_eq!(id.index(), i);
            mix.push((id, *weight));
        }

        SocialNetwork {
            topology: builder.build(),
            mix,
            users,
        }
    }

    /// The provisioned topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The user population this deployment was provisioned for.
    pub fn users(&self) -> usize {
        self.users
    }

    /// The canonical request mix (weights in percent).
    pub fn request_mix(&self) -> RequestMix {
        RequestMix::new(self.mix.clone())
    }

    /// The canonical browsing model (memoryless over the mix — adequate
    /// for aggregate load; per-user state uses the same stationary
    /// distribution).
    pub fn browsing_model(&self) -> BrowsingModel {
        BrowsingModel::memoryless(self.mix.clone())
    }

    /// The offered request rate in req/s under the canonical closed-loop
    /// population, ignoring response times (rate ≈ users / think time).
    pub fn offered_rate(&self) -> f64 {
        self.users as f64 / THINK_TIME_S
    }

    /// Request types of the three attackable dependency groups: (write
    /// path, read path, social path). `read-user-timeline` (rt 5) belongs
    /// to none — it is isolated behind its cache tier.
    pub fn expected_groups(&self) -> (Vec<RequestTypeId>, Vec<RequestTypeId>, Vec<RequestTypeId>) {
        let rt = |i: u32| RequestTypeId::new(i);
        (
            vec![rt(0), rt(1), rt(2), rt(3)],
            vec![rt(4), rt(6)],
            vec![rt(7), rt(8), rt(9)],
        )
    }
}

/// Mid-tier orchestrators get somewhat larger thread pools than leaves
/// (matched by prefix so the decoupled per-type instances qualify too).
fn is_hub(name: &str) -> bool {
    [
        "compose-post",
        "home-timeline",
        "user-timeline",
        "user-service",
        "social-graph",
    ]
    .iter()
    .any(|hub| name == *hub || name.starts_with(&format!("{hub}@")))
}

/// Realistic payload sizes per request type (reads return more data than
/// writes accept).
fn payload_sizes(name: &str) -> (u64, u64) {
    match name {
        "compose-post" | "compose-rich-post" => (2_048, 512),
        "upload-media" => (16_384, 512),
        "share-url" => (1_024, 512),
        "read-home-timeline" | "read-user-timeline" => (512, 16_384),
        "browse-hot-posts" => (512, 12_288),
        "login" => (768, 1_024),
        "follow-user" => (512, 256),
        "read-followers" => (512, 8_192),
        _ => (1_024, 8_192),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::GroundTruth;

    #[test]
    fn topology_has_expected_shape() {
        let app = social_network(7_000);
        let t = app.topology();
        assert_eq!(t.num_request_types(), 10);
        assert!(t.num_services() >= 25, "{} services", t.num_services());
        assert!(!t.service(t.service_by_name("nginx").unwrap()).blockable);
        assert!(
            t.service(t.service_by_name("compose-post").unwrap())
                .blockable
        );
    }

    #[test]
    fn ground_truth_forms_three_attackable_groups() {
        let app = social_network(7_000);
        let gt = GroundTruth::from_topology(app.topology());
        // Three multi-member groups (write, read, social); the
        // cache-isolated read-user-timeline path is a singleton — its only
        // shared service (the memcached tier) drains too fast for blocking
        // to reach it within stealth budgets.
        assert_eq!(
            gt.groups().multi_member_groups().count(),
            3,
            "groups: {:?}",
            gt.groups().groups()
        );
        let (w, r, s) = app.expected_groups();
        assert_eq!(gt.groups().group_of(w[0]).unwrap(), w.as_slice());
        assert_eq!(gt.groups().group_of(r[0]).unwrap(), r.as_slice());
        assert_eq!(gt.groups().group_of(s[0]).unwrap(), s.as_slice());
        assert_eq!(
            gt.groups().group_of(RequestTypeId::new(5)).unwrap().len(),
            1
        );
    }

    #[test]
    fn groups_contain_expected_dependency_kinds() {
        use callgraph::PairwiseDependency as P;
        let app = social_network(7_000);
        let gt = GroundTruth::from_topology(app.topology());
        let rt = |i: u32| RequestTypeId::new(i);
        // compose-post vs upload-media: parallel via the compose hub.
        assert_eq!(gt.pairwise(rt(0), rt(1)), P::Parallel);
        // compose-rich-post bottlenecks on the shared hub: sequential
        // upstream of the other write paths.
        assert_eq!(gt.pairwise(rt(3), rt(0)), P::Sequential { upstream: rt(3) });
        // read-user-timeline shares only the fast-draining memcached tier
        // with read-home-timeline: not blockable within stealth budgets.
        assert_eq!(gt.pairwise(rt(4), rt(5)), P::None);
        // browse-hot-posts bottlenecks on home-timeline, upstream of
        // read-home-timeline's memcached bottleneck.
        assert_eq!(gt.pairwise(rt(6), rt(4)), P::Sequential { upstream: rt(6) });
        // read-followers bottlenecks on social-graph compute, which lies
        // on follow-user's path: rt9 execution-blocks rt8.
        assert_eq!(gt.pairwise(rt(8), rt(9)), P::Sequential { upstream: rt(9) });
        // cross-subsystem pairs are independent.
        assert_eq!(gt.pairwise(rt(0), rt(4)), P::None);
        assert_eq!(gt.pairwise(rt(4), rt(7)), P::None);
    }

    #[test]
    fn provisioning_scales_with_users() {
        let small = social_network(1_000);
        let large = social_network(12_000);
        let svc = |app: &SocialNetwork, name: &str| {
            let id = app.topology().service_by_name(name).unwrap();
            app.topology().service(id).cores
        };
        assert!(svc(&large, "memcached-post") > svc(&small, "memcached-post"));
        assert!(svc(&large, "post-storage") >= svc(&small, "post-storage"));
        // The worker pool scales with the core count (slot residence is a
        // small multiple of local demand), one logical replica.
        let id = large.topology().service_by_name("memcached-post").unwrap();
        let spec = large.topology().service(id);
        assert_eq!(spec.threads, (spec.cores * 3).max(20));
        assert_eq!(spec.replicas, 1);
    }

    #[test]
    fn decoupled_variant_has_no_dependencies() {
        let app = SocialNetwork::decoupled(4_000);
        // Every shared service was split: far more services...
        assert!(
            app.topology().num_services() > social_network(4_000).topology().num_services(),
            "decoupling must duplicate services"
        );
        // ...and no multi-member dependency group survives.
        let gt = GroundTruth::from_topology(app.topology());
        assert_eq!(
            gt.groups().multi_member_groups().count(),
            0,
            "groups: {:?}",
            gt.groups().groups()
        );
    }

    #[test]
    fn mix_weights_sum_to_hundred() {
        let app = social_network(4_000);
        let total: f64 = app.request_mix().entries().iter().map(|(_, w)| w).sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert_eq!(app.offered_rate(), 4_000.0 / 7.0);
    }
}
