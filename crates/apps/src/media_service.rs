//! A MediaService benchmark application (DeathStarBench-style).
//!
//! A movie-review site: users browse movie pages, read and write reviews,
//! and stream trailers. Like [`social_network`](crate::social_network()),
//! the topology is an nginx frontend over subsystem hubs with storage
//! behind them; it exists as a second realistic target so downstream users
//! can evaluate the attack on more than one application family.
//!
//! Two attackable dependency groups emerge: the *review* group around the
//! `compose-review` hub and the *browse* group around `page-service`;
//! trailer streaming is served from a CDN-like cache and is isolated (the
//! paper's §VI limitation: cache-served requests escape the attack).

use callgraph::{RequestTypeId, ServiceId, ServiceSpec, Topology, TopologyBuilder};
use simnet::SimDuration;
use workload::{BrowsingModel, RequestMix};

use crate::provision::provision_replicas;
use crate::social_network::THINK_TIME_S;

/// Target baseline utilisation for provisioning.
const TARGET_UTIL: f64 = 0.35;

/// Demand scale, matching the SocialNetwork calibration.
const DEMAND_SCALE: f64 = 1.8;

/// A provisioned MediaService deployment.
#[derive(Debug, Clone)]
pub struct MediaService {
    topology: Topology,
    mix: Vec<(RequestTypeId, f64)>,
    users: usize,
}

/// Builds a MediaService deployment provisioned for `users` closed-loop
/// users.
///
/// # Example
///
/// ```
/// let app = apps::media_service(5_000);
/// assert_eq!(app.topology().num_request_types(), 8);
/// ```
///
/// # Panics
///
/// Panics if `users` is zero.
pub fn media_service(users: usize) -> MediaService {
    MediaService::new(users)
}

impl MediaService {
    /// See [`media_service`].
    ///
    /// # Panics
    ///
    /// Panics if `users` is zero.
    pub fn new(users: usize) -> Self {
        assert!(users > 0, "need at least one user");
        let total_rate = users as f64 / THINK_TIME_S;
        let ms = |v: f64| SimDuration::from_secs_f64(v * DEMAND_SCALE / 1e3);

        // (name, weight%, chain)
        type CatalogEntry<'a> = (&'a str, f64, Vec<(&'a str, SimDuration)>);
        let catalog: Vec<CatalogEntry> = vec![
            (
                // Review group: compose hub over text/rating pipelines into
                // review storage.
                "compose-review",
                10.0,
                vec![
                    ("nginx", ms(0.3)),
                    ("compose-review", ms(7.0)),
                    ("review-text", ms(5.0)),
                    ("review-storage", ms(12.0)),
                    ("review-mongodb", ms(3.0)),
                ],
            ),
            (
                "rate-movie",
                8.0,
                vec![
                    ("nginx", ms(0.3)),
                    ("compose-review", ms(7.0)),
                    ("rating-service", ms(13.0)),
                    ("rating-redis", ms(3.0)),
                ],
            ),
            (
                // Bottlenecks on the shared compose hub itself.
                "compose-rich-review",
                5.0,
                vec![
                    ("nginx", ms(0.3)),
                    ("compose-review", ms(17.0)),
                    ("spellcheck", ms(1.5)),
                ],
            ),
            (
                // Browse group: page aggregation over info/cast/plot tiers.
                "browse-movie",
                28.0,
                vec![
                    ("nginx", ms(0.3)),
                    ("page-service", ms(6.0)),
                    ("movie-info", ms(11.0)),
                    ("movie-mongodb", ms(3.0)),
                ],
            ),
            (
                "read-reviews",
                20.0,
                vec![
                    ("nginx", ms(0.3)),
                    ("page-service", ms(5.0)),
                    ("review-cache", ms(10.0)),
                ],
            ),
            (
                "search-movies",
                12.0,
                vec![
                    ("nginx", ms(0.3)),
                    ("page-service", ms(14.0)),
                    ("search-index", ms(4.0)),
                ],
            ),
            (
                "cast-info",
                9.0,
                vec![
                    ("nginx", ms(0.3)),
                    ("cast-service", ms(9.0)),
                    ("cast-mongodb", ms(12.0)),
                ],
            ),
            (
                // CDN-served: isolated behind the unblockable edge cache.
                "stream-trailer",
                8.0,
                vec![("nginx", ms(0.3)), ("trailer-cdn", ms(2.0))],
            ),
        ];

        let mut names: Vec<&str> = Vec::new();
        for (_, _, chain) in &catalog {
            for (svc, _) in chain {
                if !names.contains(svc) {
                    names.push(svc);
                }
            }
        }
        let offered: Vec<(RequestTypeId, f64)> = catalog
            .iter()
            .enumerate()
            .map(|(i, (_, w, _))| (RequestTypeId::new(i as u32), total_rate * w / 100.0))
            .collect();

        let mut builder = TopologyBuilder::new();
        let mut ids: std::collections::HashMap<&str, ServiceId> = Default::default();
        for name in &names {
            let spec = if *name == "nginx" || *name == "trailer-cdn" {
                // Edge tiers: effectively unbounded workers.
                ServiceSpec::new(*name)
                    .threads(8192)
                    .cores(8)
                    .blockable(false)
                    .demand_cv(0.15)
            } else {
                let cores = provision_replicas(
                    &offered,
                    |rt| {
                        catalog[rt.index()]
                            .2
                            .iter()
                            .find(|(svc, _)| svc == name)
                            .map(|(_, d)| *d)
                    },
                    1,
                    TARGET_UTIL,
                );
                let hub = matches!(*name, "compose-review" | "page-service" | "cast-service");
                let threads = if hub {
                    (cores * 4).max(32)
                } else {
                    (cores * 3).max(20)
                };
                ServiceSpec::new(*name)
                    .threads(threads)
                    .cores(cores)
                    .replicas(1)
                    .demand_cv(0.25)
            };
            ids.insert(name, builder.add_service(spec));
        }

        let mut mix = Vec::new();
        for (name, weight, chain) in &catalog {
            let steps = chain.iter().map(|(svc, d)| (ids[svc], *d)).collect();
            let id = builder.add_request_type(*name, steps);
            mix.push((id, *weight));
        }

        MediaService {
            topology: builder.build(),
            mix,
            users,
        }
    }

    /// The provisioned topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The user population this deployment was provisioned for.
    pub fn users(&self) -> usize {
        self.users
    }

    /// The canonical request mix.
    pub fn request_mix(&self) -> RequestMix {
        RequestMix::new(self.mix.clone())
    }

    /// The canonical browsing model.
    pub fn browsing_model(&self) -> BrowsingModel {
        BrowsingModel::memoryless(self.mix.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::GroundTruth;

    #[test]
    fn forms_review_and_browse_groups() {
        let app = media_service(5_000);
        let gt = GroundTruth::from_topology(app.topology());
        let groups: Vec<&[RequestTypeId]> = gt.groups().multi_member_groups().collect();
        assert_eq!(groups.len(), 2, "groups: {:?}", gt.groups().groups());
        // Review group: the three compose-hub paths.
        let review = gt
            .groups()
            .group_of(RequestTypeId::new(0))
            .expect("compose-review grouped");
        assert_eq!(review.len(), 3);
        // Browse group: the three page-service paths.
        let browse = gt
            .groups()
            .group_of(RequestTypeId::new(3))
            .expect("browse-movie grouped");
        assert_eq!(browse.len(), 3);
    }

    #[test]
    fn cdn_path_is_isolated() {
        let app = media_service(5_000);
        let gt = GroundTruth::from_topology(app.topology());
        let trailer = app
            .topology()
            .request_type_by_name("stream-trailer")
            .expect("known type");
        assert_eq!(
            gt.groups().group_of(trailer).expect("present").len(),
            1,
            "CDN-served requests must escape the attack surface"
        );
    }

    #[test]
    fn mix_and_provisioning_are_sane() {
        let app = media_service(5_000);
        let total: f64 = app.request_mix().entries().iter().map(|(_, w)| w).sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert!(app.topology().num_services() >= 15);
        for svc in app.topology().services() {
            assert!(svc.cores >= 1 && svc.threads >= svc.cores);
        }
    }
}
