//! Capacity provisioning: size replica counts for a target workload.

use callgraph::RequestTypeId;
use simnet::SimDuration;

/// Expected per-service load and the replica count that keeps baseline
/// utilisation near a target — the capacity-planning step a real operator
/// performs before enabling auto-scaling.
///
/// Given the offered rate of each request type (req/s) and the chains they
/// traverse, the demand-rate at a service is
/// `Σ_types rate(type) * demand(type at service)` core-seconds per second;
/// dividing by `cores * target_util` and rounding up yields the replicas.
///
/// # Example
///
/// ```
/// use apps::provision_replicas;
/// use callgraph::RequestTypeId;
/// use simnet::SimDuration;
///
/// // One request type at 100 req/s spending 10 ms at the service:
/// // 1 core-second/s of work; at 50% target utilisation -> 2 replicas.
/// let replicas = provision_replicas(
///     &[(RequestTypeId::new(0), 100.0)],
///     |_rt| Some(SimDuration::from_millis(10)),
///     1,
///     0.5,
/// );
/// assert_eq!(replicas, 2);
/// ```
pub fn provision_replicas(
    offered: &[(RequestTypeId, f64)],
    mut demand_at_service: impl FnMut(RequestTypeId) -> Option<SimDuration>,
    cores: u32,
    target_util: f64,
) -> u32 {
    assert!(
        target_util > 0.0 && target_util <= 1.0,
        "target utilisation must be in (0, 1]"
    );
    let mut core_seconds_per_second = 0.0;
    for (rt, rate) in offered {
        if let Some(demand) = demand_at_service(*rt) {
            core_seconds_per_second += rate * demand.as_secs_f64();
        }
    }
    let replicas = (core_seconds_per_second / (f64::from(cores) * target_util)).ceil();
    (replicas as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_service_keeps_one_replica() {
        let r = provision_replicas(&[], |_| None, 1, 0.4);
        assert_eq!(r, 1);
    }

    #[test]
    fn load_scales_replicas() {
        // 400 req/s * 10 ms = 4 core-s/s; at 40% target on 1 core -> 10.
        let r = provision_replicas(
            &[(RequestTypeId::new(0), 400.0)],
            |_| Some(SimDuration::from_millis(10)),
            1,
            0.4,
        );
        assert_eq!(r, 10);
    }

    #[test]
    fn multiple_types_accumulate() {
        let r = provision_replicas(
            &[
                (RequestTypeId::new(0), 100.0),
                (RequestTypeId::new(1), 100.0),
            ],
            |rt| {
                if rt.index() == 0 {
                    Some(SimDuration::from_millis(4))
                } else {
                    Some(SimDuration::from_millis(2))
                }
            },
            1,
            0.65,
        );
        // (0.4 + 0.2) / 0.65 ≈ 0.92 -> 1 replica.
        assert_eq!(r, 1);
    }

    #[test]
    #[should_panic(expected = "target utilisation")]
    fn bad_target_rejected() {
        provision_replicas(&[], |_| None, 1, 0.0);
    }
}
