//! µBench-style factory of synthetic microservice applications.
//!
//! The paper's live-attack experiments (Section V-C) use µBench to build
//! three applications of 62, 118 and 196 unique microservices with
//! architectures unknown to the attacker. This module reproduces that
//! factory: a seeded generator that emits applications of an exact service
//! count, organised as several independent subsystems ("clusters") behind
//! an unblockable gateway, with known ground-truth dependency structure to
//! score the profiler against (Fig 16, Table IV).

use callgraph::{RequestTypeId, ServiceId, ServiceSpec, Topology, TopologyBuilder};
use simnet::{RngStream, SimDuration};
use workload::{BrowsingModel, RequestMix};

use crate::provision::provision_replicas;
use crate::social_network::THINK_TIME_S;

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UBenchConfig {
    /// Exact number of unique microservices (including the gateway).
    pub services: usize,
    /// Number of independent subsystems (latent dependency groups).
    pub groups: usize,
    /// Request types per subsystem.
    pub types_per_group: usize,
    /// Generator seed.
    pub seed: u64,
    /// User population the deployment is provisioned for.
    pub users: usize,
}

impl UBenchConfig {
    /// The paper's App.1: 62 unique microservices.
    pub fn app1(users: usize) -> Self {
        UBenchConfig {
            services: 62,
            groups: 4,
            types_per_group: 3,
            seed: 0xA11,
            users,
        }
    }

    /// The paper's App.2: 118 unique microservices.
    pub fn app2(users: usize) -> Self {
        UBenchConfig {
            services: 118,
            groups: 5,
            types_per_group: 4,
            seed: 0xA22,
            users,
        }
    }

    /// The paper's App.3: 196 unique microservices.
    pub fn app3(users: usize) -> Self {
        UBenchConfig {
            services: 196,
            groups: 6,
            types_per_group: 4,
            seed: 0xA33,
            users,
        }
    }
}

/// A generated application.
#[derive(Debug, Clone)]
pub struct UBench {
    config: UBenchConfig,
    topology: Topology,
    mix: Vec<(RequestTypeId, f64)>,
}

impl UBench {
    /// Generates an application.
    ///
    /// # Panics
    ///
    /// Panics if the service budget is too small to host the requested
    /// groups and types (each type needs at least one unique service), or
    /// any count is zero.
    pub fn generate(config: UBenchConfig) -> Self {
        assert!(config.groups > 0, "need at least one group");
        assert!(config.types_per_group > 0, "need types per group");
        assert!(config.users > 0, "need users");
        let num_types = config.groups * config.types_per_group;
        let overhead = 1 + config.groups; // gateway + one hub per group
        assert!(
            config.services >= overhead + num_types,
            "service budget {} too small for {} groups x {} types",
            config.services,
            config.groups,
            config.types_per_group,
        );

        let mut rng = RngStream::from_label(config.seed, "ubench/generate");
        let total_rate = config.users as f64 / THINK_TIME_S;

        // Distribute the filler budget: each request type gets a unique
        // sub-chain; lengths are balanced round-robin so the service count
        // comes out exact.
        let filler = config.services - overhead;
        let base_len = filler / num_types;
        let extra = filler % num_types;
        let chain_lens: Vec<usize> = (0..num_types)
            .map(|i| base_len + usize::from(i < extra))
            .collect();

        // Draw mix weights first (provisioning needs them).
        let weights: Vec<f64> = (0..num_types).map(|_| rng.uniform(0.5, 2.0)).collect();
        let weight_sum: f64 = weights.iter().sum();

        // Plan chains symbolically: (service key, demand). Service keys are
        // unique strings; ids are assigned when the topology is built.
        let ms = |v: f64| SimDuration::from_secs_f64(v / 1e3);
        let mut plans: Vec<(String, Vec<(String, SimDuration)>)> = Vec::new();
        for g in 0..config.groups {
            let hub = format!("g{g}-hub");
            // Pre-draw the demand of each type's final (bottleneck-ish)
            // service.
            for t in 0..config.types_per_group {
                let type_idx = g * config.types_per_group + t;
                let name = format!("g{g}-req{t}");
                let mut chain: Vec<(String, SimDuration)> = vec![("gateway".to_string(), ms(0.3))];
                let hub_heavy = t == 0;
                let hub_demand = if hub_heavy {
                    rng.uniform(12.0, 18.0)
                } else {
                    rng.uniform(3.0, 6.0)
                };
                chain.push((hub.clone(), ms(hub_demand)));
                let len = chain_lens[type_idx];
                for k in 0..len {
                    let svc = format!("g{g}-t{t}-s{k}");
                    let is_last = k + 1 == len;
                    let demand = if is_last && !hub_heavy {
                        // The type's own bottleneck, deeper than the hub.
                        rng.uniform(9.0, 15.0)
                    } else {
                        rng.uniform(1.5, 5.0)
                    };
                    chain.push((svc, ms(demand)));
                }
                // Third and later types sometimes share the second type's
                // bottleneck service, yielding SharedBottleneck pairs like
                // real applications have.
                if t >= 2 && rng.chance(0.5) && chain_lens[g * config.types_per_group + 1] > 0 {
                    let shared = format!(
                        "g{g}-t1-s{}",
                        chain_lens[g * config.types_per_group + 1] - 1
                    );
                    let last = chain.len() - 1;
                    chain[last].0 = shared;
                }
                plans.push((name, chain));
            }
        }

        // The shared-bottleneck substitution above may drop some planned
        // unique services; re-add them as cache leaves on the hub-heavy
        // type of their group so the advertised service count stays exact.
        let mut used: std::collections::BTreeSet<String> = Default::default();
        for (_, chain) in &plans {
            for (svc, _) in chain {
                used.insert(svc.clone());
            }
        }
        for g in 0..config.groups {
            for t in 0..config.types_per_group {
                let type_idx = g * config.types_per_group + t;
                for k in 0..chain_lens[type_idx] {
                    let svc = format!("g{g}-t{t}-s{k}");
                    if !used.contains(&svc) {
                        let hub_heavy_plan = g * config.types_per_group;
                        plans[hub_heavy_plan]
                            .1
                            .push((svc.clone(), ms(rng.uniform(1.0, 2.5))));
                        used.insert(svc);
                    }
                }
            }
        }

        // Offered rate per type.
        let offered: Vec<(RequestTypeId, f64)> = (0..num_types)
            .map(|i| {
                (
                    RequestTypeId::new(i as u32),
                    total_rate * weights[i] / weight_sum,
                )
            })
            .collect();

        // Build the topology: gateway first, then services in plan order.
        let mut builder = TopologyBuilder::new();
        let mut ids: std::collections::HashMap<String, ServiceId> = Default::default();
        ids.insert(
            "gateway".into(),
            builder.add_service(
                ServiceSpec::new("gateway")
                    .threads(8192)
                    .cores(8)
                    .blockable(false)
                    .demand_cv(0.15),
            ),
        );
        for (_, chain) in &plans {
            for (svc, _) in chain {
                if ids.contains_key(svc) {
                    continue;
                }
                // Vertical provisioning: see `social_network` — capacity
                // goes into cores, the worker pool stays paper-sized.
                let cores = provision_replicas(
                    &offered,
                    |rt| {
                        plans[rt.index()]
                            .1
                            .iter()
                            .find(|(s, _)| s == svc)
                            .map(|(_, d)| *d)
                    },
                    1,
                    0.35,
                );
                let threads = if svc.ends_with("-hub") {
                    (cores * 4).max(32)
                } else {
                    (cores * 3).max(20)
                };
                ids.insert(
                    svc.clone(),
                    builder.add_service(
                        ServiceSpec::new(svc.clone())
                            .threads(threads)
                            .cores(cores)
                            .replicas(1)
                            .demand_cv(0.25),
                    ),
                );
            }
        }

        let mut mix = Vec::new();
        for (i, (name, chain)) in plans.iter().enumerate() {
            let steps = chain.iter().map(|(svc, d)| (ids[svc], *d)).collect();
            let id = builder.add_request_type_sized(name.clone(), steps, 1_024, 8_192);
            mix.push((id, weights[i]));
        }

        UBench {
            config,
            topology: builder.build(),
            mix,
        }
    }

    /// The generator parameters.
    pub fn config(&self) -> UBenchConfig {
        self.config
    }

    /// The generated topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The canonical request mix.
    pub fn request_mix(&self) -> RequestMix {
        RequestMix::new(self.mix.clone())
    }

    /// The canonical browsing model.
    pub fn browsing_model(&self) -> BrowsingModel {
        BrowsingModel::memoryless(self.mix.clone())
    }

    /// The offered request rate of the canonical population, req/s.
    pub fn offered_rate(&self) -> f64 {
        self.config.users as f64 / THINK_TIME_S
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::GroundTruth;

    #[test]
    fn presets_hit_exact_service_counts() {
        for (cfg, expect) in [
            (UBenchConfig::app1(1_000), 62),
            (UBenchConfig::app2(4_000), 118),
            (UBenchConfig::app3(8_000), 196),
        ] {
            let app = UBench::generate(cfg);
            assert_eq!(
                app.topology().num_services(),
                expect,
                "config {:?}",
                app.config()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = UBench::generate(UBenchConfig::app1(1_000));
        let b = UBench::generate(UBenchConfig::app1(1_000));
        assert_eq!(a.topology().num_services(), b.topology().num_services());
        for (x, y) in a
            .topology()
            .request_types()
            .iter()
            .zip(b.topology().request_types())
        {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn ground_truth_groups_match_generated_clusters() {
        let cfg = UBenchConfig::app1(1_000);
        let app = UBench::generate(cfg);
        let gt = GroundTruth::from_topology(app.topology());
        assert_eq!(gt.groups().len(), cfg.groups, "{:?}", gt.groups().groups());
        // Every group has exactly types_per_group members.
        for g in gt.groups().groups() {
            assert_eq!(g.len(), cfg.types_per_group);
        }
    }

    #[test]
    fn hub_heavy_type_depends_on_its_siblings() {
        let cfg = UBenchConfig::app2(4_000);
        let app = UBench::generate(cfg);
        let gt = GroundTruth::from_topology(app.topology());
        // The hub-heavy type (t=0) of each cluster shares its hub with
        // every sibling: always in the same dependency group.
        for g in 0..cfg.groups {
            let heavy = RequestTypeId::new((g * cfg.types_per_group) as u32);
            let sibling = RequestTypeId::new((g * cfg.types_per_group + 1) as u32);
            assert!(
                gt.pairwise(heavy, sibling).is_dependent(),
                "group {g}: {:?}",
                gt.pairwise(heavy, sibling)
            );
        }
    }

    #[test]
    fn mix_is_positive_and_complete() {
        let app = UBench::generate(UBenchConfig::app1(1_000));
        let mix = app.request_mix();
        assert_eq!(mix.entries().len(), 12);
        assert!(mix.entries().iter().all(|(_, w)| *w > 0.0));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_budget_rejected() {
        UBench::generate(UBenchConfig {
            services: 5,
            groups: 3,
            types_per_group: 3,
            seed: 1,
            users: 100,
        });
    }
}
