//! Benchmark applications: the targets of the Grunt attack experiments.
//!
//! Two application families, matching the paper's evaluation:
//!
//! * [`social_network()`] — a SocialNetwork deployment in the style of
//!   DeathStarBench (Fig 12a): an nginx frontend in front of write
//!   (compose-post), read (timelines) and social/user subsystems, with the
//!   storage tier behind each. Public request types form three latent
//!   dependency groups (Fig 12c).
//! * [`ubench`] — a µBench-style factory of synthetic microservice
//!   applications of configurable scale (the paper's live-attack apps have
//!   62, 118 and 196 unique microservices) with known ground truth.
//! * [`media_service()`] — a second DeathStarBench-style application (a
//!   movie-review site) with two attackable groups and a CDN-isolated
//!   streaming path, for evaluating beyond the paper's targets.
//!
//! Both builders *provision* the deployment for a target user population:
//! replica counts are chosen so each service sits at a moderate baseline
//! utilisation, like the paper's cloud deployments with auto-scaling
//! enabled.

pub mod media_service;
pub mod provision;
pub mod social_network;
pub mod ubench;

pub use media_service::{media_service, MediaService};
pub use provision::provision_replicas;
pub use social_network::{social_network, SocialNetwork};
pub use ubench::{UBench, UBenchConfig};
