//! Weighted request mixes.

use callgraph::RequestTypeId;
use serde::{Deserialize, Serialize};
use simnet::RngStream;

/// A probability mix over request types.
///
/// # Example
///
/// ```
/// use callgraph::RequestTypeId;
/// use workload::RequestMix;
///
/// let mix = RequestMix::new(vec![
///     (RequestTypeId::new(0), 0.6),
///     (RequestTypeId::new(1), 0.4),
/// ]);
/// let mut rng = simnet::RngStream::from_label(1, "mix");
/// let rt = mix.sample(&mut rng);
/// assert!(rt == RequestTypeId::new(0) || rt == RequestTypeId::new(1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestMix {
    entries: Vec<(RequestTypeId, f64)>,
}

impl RequestMix {
    /// Creates a mix from `(type, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or the weights do not sum to a positive
    /// value.
    pub fn new(entries: Vec<(RequestTypeId, f64)>) -> Self {
        assert!(!entries.is_empty(), "mix needs at least one entry");
        let total: f64 = entries.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0, "mix weights must sum to a positive value");
        RequestMix { entries }
    }

    /// A uniform mix over the given request types.
    ///
    /// # Panics
    ///
    /// Panics if `types` is empty.
    pub fn uniform(types: impl IntoIterator<Item = RequestTypeId>) -> Self {
        Self::new(types.into_iter().map(|t| (t, 1.0)).collect())
    }

    /// A mix containing a single request type.
    pub fn single(rt: RequestTypeId) -> Self {
        Self::new(vec![(rt, 1.0)])
    }

    /// Draws one request type.
    pub fn sample(&self, rng: &mut RngStream) -> RequestTypeId {
        self.entries[rng.weighted_choice_by(self.entries.iter().map(|(_, w)| *w))].0
    }

    /// The `(type, weight)` entries.
    pub fn entries(&self) -> &[(RequestTypeId, f64)] {
        &self.entries
    }

    /// The request types in the mix.
    pub fn types(&self) -> impl Iterator<Item = RequestTypeId> + '_ {
        self.entries.iter().map(|(t, _)| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_respects_weights() {
        let mix = RequestMix::new(vec![
            (RequestTypeId::new(0), 3.0),
            (RequestTypeId::new(1), 1.0),
        ]);
        let mut rng = RngStream::from_label(5, "t");
        let mut zero = 0;
        for _ in 0..10_000 {
            if mix.sample(&mut rng) == RequestTypeId::new(0) {
                zero += 1;
            }
        }
        let frac = zero as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn uniform_covers_all_types() {
        let mix = RequestMix::uniform((0..4).map(RequestTypeId::new));
        assert_eq!(mix.entries().len(), 4);
        assert!(mix.entries().iter().all(|(_, w)| *w == 1.0));
    }

    #[test]
    fn single_always_returns_its_type() {
        let mix = RequestMix::single(RequestTypeId::new(7));
        let mut rng = RngStream::from_label(1, "s");
        for _ in 0..10 {
            assert_eq!(mix.sample(&mut rng), RequestTypeId::new(7));
        }
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_mix_rejected() {
        RequestMix::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive value")]
    fn zero_weights_rejected() {
        RequestMix::new(vec![(RequestTypeId::new(0), 0.0)]);
    }
}
