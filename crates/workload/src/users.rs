//! Closed-loop emulated user populations.
//!
//! Two implementations live here:
//!
//! * [`ClosedLoopUsers`] — the flat-arena engine sized for 100k+ users per
//!   cell: a flat user slab addressed by the request tag (O(1) response
//!   dispatch, zero hashing), a bucketed [`ThinkArena`] (one kernel wakeup
//!   per occupied bucket instead of one wheel event per sleeping user),
//!   precomputed alias tables for the Markov transitions, and prefetched
//!   uniform draws.
//! * [`ClosedLoopUsersNaive`] — the retained naive twin with identical
//!   observable semantics over `HashMap`/`BTreeMap` bookkeeping and
//!   per-call RNG. It is the differential ground truth
//!   (`tests/determinism.rs` pins the two byte-for-byte) and the bench
//!   baseline the flat-arena speedups are measured against.
//!
//! # RNG stream layout
//!
//! Both populations consume one `unit()` stream (label `workload/users`)
//! in the same order, which the determinism tests pin:
//!
//! 1. construction: one uniform per user (initial Markov state, mapped
//!    through the initial alias table);
//! 2. `start`: one uniform per user in slot order (first think time),
//!    skipped entirely when the mean think time is zero;
//! 3. per successful response: one uniform for the Markov transition
//!    (alias table), then one uniform for the next think time (again
//!    skipped at zero mean);
//! 4. per failed response (`Outcome != Ok`): one uniform for the
//!    retry-or-abandon decision **iff** `0 < retry_prob < 1` (the
//!    deterministic extremes draw nothing), then — on abandon only — the
//!    transition uniform, then the think uniform either way. A retrying
//!    user keeps its Markov state and re-fires the same request after the
//!    think; an abandoning user browses on as if the request had
//!    succeeded, but records no latency sample.
//!
//! The engine prefetches this stream in [`UNIT_BATCH`]-draw blocks via
//! [`RngStream::fill_unit`], which is documented to be bit-identical to
//! per-call draws — so batching changes no outcome, only the per-draw
//! cost. Relative to the pre-arena implementation, the *mapping* of
//! transition uniforms changed from `weighted_choice`'s inverse-CDF scan
//! to alias-table lookups (same distribution, different outcomes for a
//! given uniform), and think expiries are quantised up to the arena tick
//! (≤ ~0.05 % of the mean; see [`think_tick_micros`]).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use callgraph::RequestTypeId;
use microsim::{Agent, Origin, Outcome, Response, SimCtx};
use simnet::{exp_from_unit, AliasTable, RngStream, SegStore, SimDuration, SimTime, Welford};

use crate::arena::{think_tick_micros, ThinkArena};

/// Prefetch block size for the engine's uniform draws (mirrors the
/// kernel's demand-z batching).
const UNIT_BATCH: usize = 32;

/// Base IPv4 address of emulated users; user `i` gets `base + i`.
const USER_IP_BASE: u32 = 0x0A10_0000;

/// One weighted transition row with its precomputed alias table.
#[derive(Debug, Clone, PartialEq)]
struct TransitionRow {
    weights: Vec<f64>,
    alias: AliasTable,
}

impl TransitionRow {
    fn new(weights: Vec<f64>) -> Self {
        let alias = AliasTable::new(&weights);
        TransitionRow { weights, alias }
    }
}

/// Transition-row storage: a full matrix keeps one row per state; a
/// memoryless model stores its single shared row **once** (the old
/// `vec![weights.clone(); n]` representation was O(n²) memory for an
/// n-state memoryless model).
#[derive(Debug, Clone, PartialEq)]
enum TransitionRows {
    /// `rows[i]`: outgoing weights of state `i`.
    PerState(Vec<TransitionRow>),
    /// Every state draws from the same row.
    Shared(TransitionRow),
}

/// A Markov model of how a user navigates the application's pages.
///
/// State `i` corresponds to request type `i` of the owning model's
/// `types` list; after completing a request of state `i`, the next request
/// type is drawn from row `i` of the transition matrix. Rows are sampled
/// through precomputed [`AliasTable`]s: O(1) per transition regardless of
/// the catalogue size.
#[derive(Debug, Clone, PartialEq)]
pub struct BrowsingModel {
    types: Vec<RequestTypeId>,
    rows: TransitionRows,
    /// Initial-state weights.
    initial: TransitionRow,
}

impl BrowsingModel {
    /// Builds a model from explicit transition weights.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent or any row cannot be sampled.
    pub fn new(types: Vec<RequestTypeId>, transitions: Vec<Vec<f64>>, initial: Vec<f64>) -> Self {
        let n = types.len();
        assert!(n > 0, "browsing model needs at least one state");
        assert_eq!(transitions.len(), n, "transition rows must match states");
        assert!(
            transitions.iter().all(|row| row.len() == n),
            "transition rows must be square"
        );
        assert_eq!(initial.len(), n, "initial weights must match states");
        assert!(
            initial.iter().sum::<f64>() > 0.0,
            "initial weights must be sampleable"
        );
        assert!(
            transitions.iter().all(|row| row.iter().sum::<f64>() > 0.0),
            "every transition row must be sampleable"
        );
        BrowsingModel {
            types,
            rows: TransitionRows::PerState(
                transitions.into_iter().map(TransitionRow::new).collect(),
            ),
            initial: TransitionRow::new(initial),
        }
    }

    /// A memoryless model: every step draws independently from `weights`.
    ///
    /// The shared row (and its alias table) is stored once, not cloned per
    /// state.
    pub fn memoryless(entries: Vec<(RequestTypeId, f64)>) -> Self {
        let types: Vec<RequestTypeId> = entries.iter().map(|(t, _)| *t).collect();
        let weights: Vec<f64> = entries.iter().map(|(_, w)| *w).collect();
        assert!(!types.is_empty(), "browsing model needs at least one state");
        assert!(
            weights.iter().sum::<f64>() > 0.0,
            "initial weights must be sampleable"
        );
        BrowsingModel {
            types,
            rows: TransitionRows::Shared(TransitionRow::new(weights.clone())),
            initial: TransitionRow::new(weights),
        }
    }

    /// A uniform memoryless model over the given types.
    pub fn uniform(types: impl IntoIterator<Item = RequestTypeId>) -> Self {
        Self::memoryless(types.into_iter().map(|t| (t, 1.0)).collect())
    }

    /// Maps one uniform draw onto an initial state (pure; see the module
    /// docs on batching).
    fn initial_state(&self, u: f64) -> usize {
        self.initial.alias.sample(u)
    }

    /// Maps one uniform draw onto the successor of `from` (pure).
    fn next_state(&self, from: usize, u: f64) -> usize {
        self.row(from).alias.sample(u)
    }

    fn row(&self, from: usize) -> &TransitionRow {
        match &self.rows {
            TransitionRows::PerState(rows) => &rows[from],
            TransitionRows::Shared(row) => {
                debug_assert!(from < self.types.len());
                row
            }
        }
    }

    /// The raw outgoing weights of a state (the bench harness runs
    /// `weighted_choice` over this slice as the alias tables' naive twin).
    pub fn transition_weights(&self, from: usize) -> &[f64] {
        &self.row(from).weights
    }

    /// The precomputed alias table of a state's outgoing row.
    pub fn transition_alias(&self, from: usize) -> &AliasTable {
        &self.row(from).alias
    }

    /// The request type of a state.
    pub fn request_type(&self, state: usize) -> RequestTypeId {
        self.types[state]
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.types.len()
    }
}

/// A closed-loop population of `n` emulated users (Section V-B), built for
/// the deep-population regime (100k+ users per cell).
///
/// Each user cycles: think → issue the request of the current Markov state
/// → wait for the response → transition → think again. Think times follow
/// a *shifted* exponential: a floor of 3/7 of the mean plus an exponential
/// remainder. This matches the paper's production user-behaviour model,
/// whose inter-request intervals have a 95 % confidence interval of
/// [2.8 s, 14.4 s] — i.e. real users essentially never fire two requests
/// within 3 s, which is exactly why the IDS interval rule can use that
/// threshold without drowning in false positives.
///
/// Engine shape (the deep-population rebuild):
///
/// * users live in a flat slab — the per-slot Markov state is the only
///   per-user byte; session and IP derive from the slot index. Requests
///   carry the slot in their tag ([`SimCtx::submit_tagged`]), so response
///   dispatch is one array index.
/// * sleeping users are parked in a [`ThinkArena`]: one kernel wakeup per
///   occupied think bucket, users stepped in slot order when it fires —
///   pending wheel events are O(occupied buckets), not O(users).
/// * RNG work is batched: uniforms are prefetched in [`UNIT_BATCH`] blocks
///   and mapped through precomputed alias tables / the pure exponential
///   tail (see the module docs for the pinned stream layout).
///
/// The population records client-side latency statistics, which is what
/// the paper's tables report as user-perceived response time.
#[derive(Debug)]
pub struct ClosedLoopUsers {
    /// Immutable model shared by reference across forks (alias tables for
    /// a large catalogue are not worth copying 100k-user snapshots over).
    model: Arc<BrowsingModel>,
    think_mean_s: f64,
    /// Flat user slab: current Markov state per slot.
    states: Vec<u32>,
    rng: RngStream,
    /// Prefetched uniforms ([`RngStream::fill_unit`] blocks).
    unit_buf: [f64; UNIT_BATCH],
    /// Next unconsumed index into `unit_buf` (`UNIT_BATCH` = empty).
    unit_next: usize,
    /// Bucketed think timers.
    arena: ThinkArena,
    /// Reused wake-batch buffer (drained slots of the firing bucket).
    wake_scratch: Vec<u32>,
    /// Client-side latency stats (ms) over the whole run.
    latency: Welford,
    /// Raw (completion time, latency ms) samples for windowed series.
    /// Copy-on-write so snapshotting the population is O(tail), not
    /// O(completed requests).
    samples: SegStore<(SimTime, f64)>,
    /// Collect raw samples only after this time (lets experiments exclude
    /// warm-up).
    record_after: SimTime,
    /// Probability a user re-issues a failed request after a fresh think
    /// time (see the module docs for the exact draw discipline).
    retry_prob: f64,
    /// Failed responses users re-issued.
    user_retries: u64,
    /// Failed responses users gave up on.
    abandoned: u64,
}

// Live population state forks through a hand-written per-field Clone
// (simlint `snapshot-complete` keeps it field-complete); the model is an
// Arc handle bump and the samples store is copy-on-write.
impl Clone for ClosedLoopUsers {
    fn clone(&self) -> Self {
        ClosedLoopUsers {
            model: Arc::clone(&self.model),
            think_mean_s: self.think_mean_s,
            states: self.states.clone(),
            rng: self.rng.clone(),
            unit_buf: self.unit_buf,
            unit_next: self.unit_next,
            arena: self.arena.clone(),
            wake_scratch: Vec::new(),
            latency: self.latency,
            samples: self.samples.clone(),
            record_after: self.record_after,
            retry_prob: self.retry_prob,
            user_retries: self.user_retries,
            abandoned: self.abandoned,
        }
    }
}

impl ClosedLoopUsers {
    /// Creates a population of `n` users with the paper's 7 s mean think
    /// time.
    pub fn new(n: usize, model: BrowsingModel, seed: u64) -> Self {
        assert!(n > 0, "population needs at least one user");
        let model = Arc::new(model);
        let mut rng = RngStream::from_label(seed, "workload/users");
        let mut unit_buf = [0.0f64; UNIT_BATCH];
        let mut unit_next = UNIT_BATCH;
        let mut states = Vec::with_capacity(n);
        for _ in 0..n {
            if unit_next == UNIT_BATCH {
                rng.fill_unit(&mut unit_buf);
                unit_next = 0;
            }
            states.push(model.initial_state(unit_buf[unit_next]) as u32);
            unit_next += 1;
        }
        let think_mean_s = 7.0;
        ClosedLoopUsers {
            model,
            think_mean_s,
            states,
            rng,
            unit_buf,
            unit_next,
            arena: ThinkArena::new(think_tick_micros(think_mean_s), n),
            wake_scratch: Vec::new(),
            latency: Welford::new(),
            samples: SegStore::new(),
            record_after: SimTime::ZERO,
            retry_prob: 0.0,
            user_retries: 0,
            abandoned: 0,
        }
    }

    /// Overrides the mean think time in seconds (before the simulation
    /// starts: the arena's bucket granularity is derived from the mean).
    pub fn with_think_time(mut self, mean_s: f64) -> Self {
        assert!(mean_s >= 0.0, "think time cannot be negative");
        assert!(
            self.arena.is_empty(),
            "think time must be set before the population starts"
        );
        self.think_mean_s = mean_s;
        self.arena = ThinkArena::new(think_tick_micros(mean_s), self.states.len());
        self
    }

    /// Starts raw-sample recording only after `t` (statistics in
    /// [`ClosedLoopUsers::latency_stats`] are unaffected).
    pub fn record_after(mut self, t: SimTime) -> Self {
        self.record_after = t;
        self
    }

    /// Sets the probability that a user re-issues a failed request
    /// (outcome other than `Ok`) after a fresh think time. Default `0.0`:
    /// failures are abandoned and the user browses on.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_retry(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "retry probability must be in [0, 1]"
        );
        self.retry_prob = p;
        self
    }

    /// Population size.
    pub fn population(&self) -> usize {
        self.states.len()
    }

    /// Failed responses users re-issued.
    pub fn user_retries(&self) -> u64 {
        self.user_retries
    }

    /// Failed responses users gave up on.
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    /// Aggregate latency statistics in milliseconds.
    pub fn latency_stats(&self) -> Welford {
        self.latency
    }

    /// Raw `(completed_at, latency_ms)` samples recorded after the
    /// configured threshold.
    pub fn samples(&self) -> &SegStore<(SimTime, f64)> {
        &self.samples
    }

    /// Occupied think buckets — the population's pending-wakeup footprint
    /// on the kernel wheel (O(buckets), not O(users)).
    pub fn pending_think_buckets(&self) -> usize {
        self.arena.occupied_buckets()
    }

    /// The arena's bucket granularity in microseconds.
    pub fn think_tick_micros(&self) -> u64 {
        self.arena.tick_micros()
    }

    /// The next prefetched uniform (bit-identical to `rng.unit()`).
    fn next_unit(&mut self) -> f64 {
        if self.unit_next == UNIT_BATCH {
            self.rng.fill_unit(&mut self.unit_buf);
            self.unit_next = 0;
        }
        let u = self.unit_buf[self.unit_next];
        self.unit_next += 1;
        u
    }

    /// One shifted-exponential think draw (consumes a uniform only when
    /// the exponential remainder is non-degenerate, like `RngStream::exp`).
    fn think_seconds(&mut self) -> f64 {
        let floor = self.think_mean_s * 3.0 / 7.0;
        let remainder = self.think_mean_s - floor;
        if remainder > 0.0 {
            floor + exp_from_unit(remainder, self.next_unit())
        } else {
            floor
        }
    }

    /// Parks `slot` for one think time; schedules the bucket's kernel
    /// wakeup if it is the first occupant.
    fn park(&mut self, ctx: &mut SimCtx<'_>, slot: u32) {
        let think = self.think_seconds();
        let expiry = ctx.now() + SimDuration::from_secs_f64(think);
        let tick = self.arena.tick_of(expiry);
        if self.arena.schedule(ctx.now(), slot, tick) {
            let delay = self.arena.wake_time(tick).saturating_since(ctx.now());
            ctx.schedule_wake(delay, tick);
        }
    }

    /// Issues the request of `slot`'s current state, tagged with the slot
    /// for O(1) response dispatch.
    fn fire_slot(&mut self, ctx: &mut SimCtx<'_>, slot: u32) {
        let rt = self.model.request_type(self.states[slot as usize] as usize);
        let origin = Origin::legit(USER_IP_BASE + slot, u64::from(slot));
        ctx.submit_tagged(rt, origin, u64::from(slot));
    }
}

impl Agent for ClosedLoopUsers {
    fn start(&mut self, ctx: &mut SimCtx<'_>) {
        for slot in 0..self.states.len() as u32 {
            self.park(ctx, slot);
        }
    }

    fn on_wake(&mut self, ctx: &mut SimCtx<'_>, token: u64) {
        // `token` is the firing bucket's tick; step its users in slot
        // order. The batch buffer is swapped out so the arena and the
        // submission path never hold overlapping borrows.
        let mut batch = std::mem::take(&mut self.wake_scratch);
        self.arena.drain_into(token, &mut batch);
        for &slot in &batch {
            self.fire_slot(ctx, slot);
        }
        self.wake_scratch = batch;
    }

    fn on_response(&mut self, ctx: &mut SimCtx<'_>, response: &Response) {
        // The tag is the submitting slot: O(1) dispatch, no token map.
        let slot = response.tag as usize;
        debug_assert!(slot < self.states.len(), "response tag outside the slab");
        if response.outcome != Outcome::Ok {
            // Failed request: no latency sample. Decide retry-or-abandon
            // (one uniform, skipped at the deterministic extremes); a
            // retrying user keeps its state, an abandoning one browses on.
            let retry = self.retry_prob >= 1.0
                || (self.retry_prob > 0.0 && self.next_unit() < self.retry_prob);
            if retry {
                self.user_retries += 1;
            } else {
                self.abandoned += 1;
                let u = self.next_unit();
                self.states[slot] = self.model.next_state(self.states[slot] as usize, u) as u32;
            }
            self.park(ctx, slot as u32);
            return;
        }
        let lat = response.latency_ms();
        self.latency.push(lat);
        if response.completed_at >= self.record_after {
            self.samples.push((response.completed_at, lat));
        }
        let u = self.next_unit();
        self.states[slot] = self.model.next_state(self.states[slot] as usize, u) as u32;
        self.park(ctx, slot as u32);
    }

    fn snapshot(&self) -> Option<microsim::AgentState> {
        Some(microsim::AgentState::of(self))
    }
}

#[derive(Debug, Clone, Copy)]
struct NaiveUser {
    state: usize,
    session: u64,
    ip: u32,
}

/// The retained naive twin of [`ClosedLoopUsers`].
///
/// Identical observable semantics — same RNG stream consumption, same
/// alias-table transition mapping, same quantised think ticks, same
/// slot-ordered bucket stepping — over the bookkeeping the flat-arena
/// engine replaced: a token→user `HashMap` for outstanding requests, a
/// `BTreeMap` of think buckets (allocating a `Vec` per bucket), and
/// per-call RNG draws. `tests/determinism.rs` pins the two populations
/// byte-for-byte on paper-scale cells, and `bench_kernel`'s
/// `large_population` section reports the engine's speedup over this twin.
#[derive(Debug, Clone)]
pub struct ClosedLoopUsersNaive {
    model: BrowsingModel,
    think_mean_s: f64,
    tick_micros: u64,
    users: Vec<NaiveUser>,
    rng: RngStream,
    outstanding: HashMap<u64, usize>,
    timers: BTreeMap<u64, Vec<u32>>,
    latency: Welford,
    samples: SegStore<(SimTime, f64)>,
    record_after: SimTime,
    retry_prob: f64,
    user_retries: u64,
    abandoned: u64,
}

impl ClosedLoopUsersNaive {
    /// Creates a population of `n` users with the paper's 7 s mean think
    /// time (same seed/label/stream as [`ClosedLoopUsers::new`]).
    pub fn new(n: usize, model: BrowsingModel, seed: u64) -> Self {
        assert!(n > 0, "population needs at least one user");
        let mut rng = RngStream::from_label(seed, "workload/users");
        let users = (0..n)
            .map(|i| NaiveUser {
                state: model.initial_state(rng.unit()),
                session: i as u64,
                ip: USER_IP_BASE + i as u32,
            })
            .collect();
        ClosedLoopUsersNaive {
            model,
            think_mean_s: 7.0,
            tick_micros: think_tick_micros(7.0),
            users,
            rng,
            outstanding: HashMap::new(),
            timers: BTreeMap::new(),
            latency: Welford::new(),
            samples: SegStore::new(),
            record_after: SimTime::ZERO,
            retry_prob: 0.0,
            user_retries: 0,
            abandoned: 0,
        }
    }

    /// Overrides the mean think time in seconds.
    pub fn with_think_time(mut self, mean_s: f64) -> Self {
        assert!(mean_s >= 0.0, "think time cannot be negative");
        self.think_mean_s = mean_s;
        self.tick_micros = think_tick_micros(mean_s);
        self
    }

    /// Starts raw-sample recording only after `t`.
    pub fn record_after(mut self, t: SimTime) -> Self {
        self.record_after = t;
        self
    }

    /// Sets the retry probability for failed requests (same semantics and
    /// draw discipline as [`ClosedLoopUsers::with_retry`]).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_retry(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "retry probability must be in [0, 1]"
        );
        self.retry_prob = p;
        self
    }

    /// Population size.
    pub fn population(&self) -> usize {
        self.users.len()
    }

    /// Failed responses users re-issued.
    pub fn user_retries(&self) -> u64 {
        self.user_retries
    }

    /// Failed responses users gave up on.
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    /// Aggregate latency statistics in milliseconds.
    pub fn latency_stats(&self) -> Welford {
        self.latency
    }

    /// Raw `(completed_at, latency_ms)` samples recorded after the
    /// configured threshold.
    pub fn samples(&self) -> &SegStore<(SimTime, f64)> {
        &self.samples
    }

    fn think_then_park(&mut self, ctx: &mut SimCtx<'_>, user: usize) {
        // Shifted exponential: floor + exp remainder, preserving the mean.
        let floor = self.think_mean_s * 3.0 / 7.0;
        let think = floor + self.rng.exp(self.think_mean_s - floor);
        let expiry = ctx.now() + SimDuration::from_secs_f64(think);
        let tick = expiry.as_micros().div_ceil(self.tick_micros);
        let bucket = self.timers.entry(tick).or_default();
        bucket.push(user as u32);
        if bucket.len() == 1 {
            let at = SimTime::from_micros(tick * self.tick_micros);
            ctx.schedule_wake(at.saturating_since(ctx.now()), tick);
        }
    }
}

impl Agent for ClosedLoopUsersNaive {
    fn start(&mut self, ctx: &mut SimCtx<'_>) {
        for user in 0..self.users.len() {
            self.think_then_park(ctx, user);
        }
    }

    fn on_wake(&mut self, ctx: &mut SimCtx<'_>, token: u64) {
        let mut batch = self.timers.remove(&token).unwrap_or_default();
        batch.sort_unstable();
        for &slot in &batch {
            let u = self.users[slot as usize];
            let rt = self.model.request_type(u.state);
            let req = ctx.submit(rt, Origin::legit(u.ip, u.session));
            self.outstanding.insert(req, slot as usize);
        }
    }

    fn on_response(&mut self, ctx: &mut SimCtx<'_>, response: &Response) {
        let user = self
            .outstanding
            .remove(&response.token)
            .expect("response for unknown token");
        if response.outcome != Outcome::Ok {
            let retry = self.retry_prob >= 1.0
                || (self.retry_prob > 0.0 && self.rng.unit() < self.retry_prob);
            if retry {
                self.user_retries += 1;
            } else {
                self.abandoned += 1;
                let state = self.users[user].state;
                self.users[user].state = self.model.next_state(state, self.rng.unit());
            }
            self.think_then_park(ctx, user);
            return;
        }
        let lat = response.latency_ms();
        self.latency.push(lat);
        if response.completed_at >= self.record_after {
            self.samples.push((response.completed_at, lat));
        }
        let state = self.users[user].state;
        self.users[user].state = self.model.next_state(state, self.rng.unit());
        self.think_then_park(ctx, user);
    }

    fn snapshot(&self) -> Option<microsim::AgentState> {
        Some(microsim::AgentState::of(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use callgraph::{ServiceSpec, TopologyBuilder};
    use microsim::{SimConfig, Simulation};

    fn topo() -> callgraph::Topology {
        let mut b = TopologyBuilder::new();
        let gw = b.add_service(ServiceSpec::new("gw").threads(512).demand_cv(0.0));
        let x = b.add_service(ServiceSpec::new("x").threads(256).demand_cv(0.0));
        b.add_request_type(
            "r0",
            vec![
                (gw, SimDuration::from_millis(1)),
                (x, SimDuration::from_millis(3)),
            ],
        );
        b.add_request_type("r1", vec![(gw, SimDuration::from_millis(1))]);
        b.build()
    }

    #[test]
    fn population_produces_expected_throughput() {
        // 100 users, 1 s think, ~4 ms service: throughput ~ 100 req/s.
        let model = BrowsingModel::uniform([RequestTypeId::new(0), RequestTypeId::new(1)]);
        let users = ClosedLoopUsers::new(100, model, 11).with_think_time(1.0);
        let mut sim = Simulation::new(topo(), SimConfig::default());
        sim.add_agent(Box::new(users));
        sim.run_until(SimTime::from_secs(30));
        let n = sim.metrics().request_log().len() as f64;
        let rate = n / 30.0;
        assert!((rate - 100.0).abs() < 15.0, "rate {rate} req/s");
    }

    #[test]
    fn closed_loop_has_one_outstanding_request_per_user() {
        let model = BrowsingModel::uniform([RequestTypeId::new(0)]);
        let users = ClosedLoopUsers::new(5, model, 3).with_think_time(0.01);
        let mut sim = Simulation::new(topo(), SimConfig::default());
        sim.add_agent(Box::new(users));
        sim.run_until(SimTime::from_secs(5));
        // With think time 10 ms and RT ~5 ms, each user alternates
        // think/request; sessions in the access log must be exactly 5.
        let sessions: std::collections::HashSet<u64> = sim
            .metrics()
            .access_log()
            .iter()
            .map(|e| e.origin.session)
            .collect();
        assert_eq!(sessions.len(), 5);
        // No session may ever have two overlapping requests: check by
        // scanning the log per session against completions.
        let mut last_submit: HashMap<u64, SimTime> = HashMap::new();
        for e in sim.metrics().access_log() {
            if let Some(prev) = last_submit.insert(e.origin.session, e.at) {
                assert!(e.at > prev, "submissions must be ordered per user");
            }
        }
    }

    #[test]
    fn markov_transitions_follow_matrix() {
        // Deterministic cycle: r0 -> r1 -> r0 -> ...
        let model = BrowsingModel::new(
            vec![RequestTypeId::new(0), RequestTypeId::new(1)],
            vec![vec![0.0, 1.0], vec![1.0, 0.0]],
            vec![1.0, 0.0],
        );
        let users = ClosedLoopUsers::new(1, model, 3).with_think_time(0.001);
        let mut sim = Simulation::new(topo(), SimConfig::default());
        sim.add_agent(Box::new(users));
        sim.run_until(SimTime::from_secs(2));
        let types: Vec<u32> = sim
            .metrics()
            .access_log()
            .iter()
            .map(|e| e.request_type.index() as u32)
            .collect();
        assert!(types.len() > 10);
        for (i, ty) in types.iter().enumerate() {
            assert_eq!(*ty, (i % 2) as u32, "strict alternation expected");
        }
    }

    #[test]
    fn record_after_skips_warmup() {
        let model = BrowsingModel::uniform([RequestTypeId::new(1)]);
        let users = ClosedLoopUsers::new(10, model, 5)
            .with_think_time(0.05)
            .record_after(SimTime::from_secs(1));
        let mut sim = Simulation::new(topo(), SimConfig::default());
        let id = sim.add_agent(Box::new(users));
        sim.run_until(SimTime::from_secs(2));
        let users: &ClosedLoopUsers = sim.agent_as(id).expect("typed access");
        assert!(!users.samples().is_empty());
        assert!(users
            .samples()
            .iter()
            .all(|(t, _)| *t >= SimTime::from_secs(1)));
        // Aggregate stats still cover the whole run (more samples than the
        // post-warm-up raw series).
        assert!(users.latency_stats().count() > users.samples().len() as u64);
    }

    #[test]
    fn pending_wakeups_stay_bucketed() {
        // At the paper's 7 s mean, a 4096 µs tick bounds the occupied
        // buckets by the think horizon (~6k ticks): 20k sleeping users
        // share far fewer buckets than users, and the kernel wheel carries
        // O(buckets) events, not O(users).
        let model = BrowsingModel::uniform([RequestTypeId::new(1)]);
        let users = ClosedLoopUsers::new(20_000, model, 7).with_think_time(7.0);
        let mut sim = Simulation::new(topo(), SimConfig::default());
        let id = sim.add_agent(Box::new(users));
        sim.run_until(SimTime::from_secs(20));
        let users: &ClosedLoopUsers = sim.agent_as(id).expect("typed access");
        let buckets = users.pending_think_buckets();
        assert!(buckets > 0, "population must be parked between requests");
        assert!(
            buckets < 7_000,
            "20k sleeping users must share < 7000 buckets, got {buckets}"
        );
        assert!(
            sim.pending_events() < 8_000,
            "wheel must carry O(buckets) events, got {}",
            sim.pending_events()
        );
    }

    #[test]
    fn naive_twin_is_byte_identical() {
        // The full-sim differential on a paper-like cell lives in
        // tests/determinism.rs; this is the crate-level smoke version.
        let model = BrowsingModel::uniform([RequestTypeId::new(0), RequestTypeId::new(1)]);
        let mut fast = Simulation::new(topo(), SimConfig::default());
        let fast_id = fast.add_agent(Box::new(
            ClosedLoopUsers::new(200, model.clone(), 11).with_think_time(0.2),
        ));
        let mut naive = Simulation::new(topo(), SimConfig::default());
        let naive_id = naive.add_agent(Box::new(
            ClosedLoopUsersNaive::new(200, model, 11).with_think_time(0.2),
        ));
        fast.run_until(SimTime::from_secs(10));
        naive.run_until(SimTime::from_secs(10));
        let f: &ClosedLoopUsers = fast.agent_as(fast_id).expect("typed");
        let n: &ClosedLoopUsersNaive = naive.agent_as(naive_id).expect("typed");
        assert_eq!(f.latency_stats().count(), n.latency_stats().count());
        assert_eq!(
            f.latency_stats().mean().to_bits(),
            n.latency_stats().mean().to_bits()
        );
        let fs: Vec<_> = f.samples().iter().collect();
        let ns: Vec<_> = n.samples().iter().collect();
        assert_eq!(fs, ns);
        assert_eq!(
            fast.metrics().request_log().len(),
            naive.metrics().request_log().len()
        );
    }

    fn resilient_cfg(deadline_us: u64) -> SimConfig {
        use microsim::{ResilienceConfig, ResiliencePolicy};
        SimConfig::default().resilience(ResilienceConfig::uniform(ResiliencePolicy {
            deadline: Some(SimDuration::from_micros(deadline_us)),
            ..ResiliencePolicy::disabled()
        }))
    }

    #[test]
    fn failed_requests_retry_or_abandon() {
        // 500 µs deadline against ≥ 1 ms demands: every request times out,
        // so the population sees only failed responses.
        let model = BrowsingModel::uniform([RequestTypeId::new(0), RequestTypeId::new(1)]);
        let retriers = ClosedLoopUsers::new(20, model.clone(), 9)
            .with_think_time(0.05)
            .with_retry(1.0);
        let mut sim = Simulation::new(topo(), resilient_cfg(500));
        let id = sim.add_agent(Box::new(retriers));
        sim.run_until(SimTime::from_secs(5));
        let u: &ClosedLoopUsers = sim.agent_as(id).expect("typed");
        assert_eq!(u.latency_stats().count(), 0, "no successful responses");
        assert!(u.user_retries() > 0, "p = 1 must retry every failure");
        assert_eq!(u.abandoned(), 0);

        let abandoners = ClosedLoopUsers::new(20, model, 9).with_think_time(0.05);
        let mut sim = Simulation::new(topo(), resilient_cfg(500));
        let id = sim.add_agent(Box::new(abandoners));
        sim.run_until(SimTime::from_secs(5));
        let u: &ClosedLoopUsers = sim.agent_as(id).expect("typed");
        assert_eq!(u.latency_stats().count(), 0);
        assert!(u.abandoned() > 0, "p = 0 must abandon every failure");
        assert_eq!(u.user_retries(), 0);
    }

    #[test]
    fn naive_twin_matches_under_failures() {
        // 2 ms deadline on the test topology: r1 (1 ms demand) completes,
        // r0 (1 + 3 ms chain) times out — a success/failure mix that
        // exercises the probabilistic retry draw in both twins.
        let model = BrowsingModel::uniform([RequestTypeId::new(0), RequestTypeId::new(1)]);
        let mut fast = Simulation::new(topo(), resilient_cfg(2_000));
        let fast_id = fast.add_agent(Box::new(
            ClosedLoopUsers::new(150, model.clone(), 13)
                .with_think_time(0.2)
                .with_retry(0.3),
        ));
        let mut naive = Simulation::new(topo(), resilient_cfg(2_000));
        let naive_id = naive.add_agent(Box::new(
            ClosedLoopUsersNaive::new(150, model, 13)
                .with_think_time(0.2)
                .with_retry(0.3),
        ));
        fast.run_until(SimTime::from_secs(10));
        naive.run_until(SimTime::from_secs(10));
        let f: &ClosedLoopUsers = fast.agent_as(fast_id).expect("typed");
        let n: &ClosedLoopUsersNaive = naive.agent_as(naive_id).expect("typed");
        assert!(f.user_retries() > 0, "mixed run must retry some failures");
        assert!(f.abandoned() > 0, "mixed run must abandon some failures");
        assert!(f.latency_stats().count() > 0, "r1 must keep succeeding");
        assert_eq!(f.user_retries(), n.user_retries());
        assert_eq!(f.abandoned(), n.abandoned());
        assert_eq!(f.latency_stats().count(), n.latency_stats().count());
        assert_eq!(
            f.latency_stats().mean().to_bits(),
            n.latency_stats().mean().to_bits()
        );
        let fs: Vec<_> = f.samples().iter().collect();
        let ns: Vec<_> = n.samples().iter().collect();
        assert_eq!(fs, ns);
    }

    #[test]
    fn memoryless_shares_one_row() {
        // The shared-row representation must not materialise n² weights.
        let n = 512;
        let entries: Vec<(RequestTypeId, f64)> = (0..n)
            .map(|i| (RequestTypeId::new(i), 1.0 + i as f64))
            .collect();
        let m = BrowsingModel::memoryless(entries);
        assert_eq!(m.num_states(), n as usize);
        // All states alias the same shared row.
        let p0 = m.transition_weights(0).as_ptr();
        let p1 = m.transition_weights((n - 1) as usize).as_ptr();
        assert_eq!(p0, p1, "memoryless rows must share storage");
    }

    #[test]
    #[should_panic(expected = "transition rows must be square")]
    fn ragged_matrix_rejected() {
        BrowsingModel::new(
            vec![RequestTypeId::new(0), RequestTypeId::new(1)],
            vec![vec![1.0, 0.0], vec![1.0]],
            vec![1.0, 0.0],
        );
    }

    #[test]
    #[should_panic(expected = "needs at least one user")]
    fn empty_population_rejected() {
        ClosedLoopUsers::new(0, BrowsingModel::uniform([RequestTypeId::new(0)]), 1);
    }

    #[test]
    #[should_panic(expected = "needs at least one user")]
    fn empty_naive_population_rejected() {
        ClosedLoopUsersNaive::new(0, BrowsingModel::uniform([RequestTypeId::new(0)]), 1);
    }
}
