//! Closed-loop emulated user populations.

use std::collections::HashMap;

use callgraph::RequestTypeId;
use microsim::{Agent, Origin, Response, SimCtx};
use simnet::{RngStream, SegStore, SimDuration, SimTime, Welford};

/// A Markov model of how a user navigates the application's pages.
///
/// State `i` corresponds to request type `i` of the owning model's
/// `types` list; after completing a request of state `i`, the next request
/// type is drawn from row `i` of the transition matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct BrowsingModel {
    types: Vec<RequestTypeId>,
    /// `transitions[i][j]`: weight of moving from state `i` to state `j`.
    transitions: Vec<Vec<f64>>,
    /// Initial-state weights.
    initial: Vec<f64>,
}

impl BrowsingModel {
    /// Builds a model from explicit transition weights.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent or any row cannot be sampled.
    pub fn new(types: Vec<RequestTypeId>, transitions: Vec<Vec<f64>>, initial: Vec<f64>) -> Self {
        let n = types.len();
        assert!(n > 0, "browsing model needs at least one state");
        assert_eq!(transitions.len(), n, "transition rows must match states");
        assert!(
            transitions.iter().all(|row| row.len() == n),
            "transition rows must be square"
        );
        assert_eq!(initial.len(), n, "initial weights must match states");
        assert!(
            initial.iter().sum::<f64>() > 0.0,
            "initial weights must be sampleable"
        );
        assert!(
            transitions.iter().all(|row| row.iter().sum::<f64>() > 0.0),
            "every transition row must be sampleable"
        );
        BrowsingModel {
            types,
            transitions,
            initial,
        }
    }

    /// A memoryless model: every step draws independently from `weights`.
    pub fn memoryless(entries: Vec<(RequestTypeId, f64)>) -> Self {
        let types: Vec<RequestTypeId> = entries.iter().map(|(t, _)| *t).collect();
        let weights: Vec<f64> = entries.iter().map(|(_, w)| *w).collect();
        let n = types.len();
        BrowsingModel::new(types, vec![weights.clone(); n], weights)
    }

    /// A uniform memoryless model over the given types.
    pub fn uniform(types: impl IntoIterator<Item = RequestTypeId>) -> Self {
        Self::memoryless(types.into_iter().map(|t| (t, 1.0)).collect())
    }

    fn initial_state(&self, rng: &mut RngStream) -> usize {
        rng.weighted_choice(&self.initial)
    }

    fn next_state(&self, from: usize, rng: &mut RngStream) -> usize {
        rng.weighted_choice(&self.transitions[from])
    }

    /// The request type of a state.
    pub fn request_type(&self, state: usize) -> RequestTypeId {
        self.types[state]
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.types.len()
    }
}

#[derive(Debug, Clone, Copy)]
struct User {
    state: usize,
    session: u64,
    ip: u32,
}

/// A closed-loop population of `n` emulated users (Section V-B).
///
/// Each user cycles: think → issue the request of the current Markov state
/// → wait for the response → transition → think again. Think times follow
/// a *shifted* exponential: a floor of 3/7 of the mean plus an exponential
/// remainder. This matches the paper's production user-behaviour model,
/// whose inter-request intervals have a 95 % confidence interval of
/// [2.8 s, 14.4 s] — i.e. real users essentially never fire two requests
/// within 3 s, which is exactly why the IDS interval rule can use that
/// threshold without drowning in false positives.
///
/// The population records client-side latency statistics, which is what
/// the paper's tables report as user-perceived response time.
#[derive(Debug, Clone)]
pub struct ClosedLoopUsers {
    model: BrowsingModel,
    think_mean_s: f64,
    users: Vec<User>,
    rng: RngStream,
    outstanding: HashMap<u64, usize>,
    /// Client-side latency stats (ms) over the whole run.
    latency: Welford,
    /// Raw (completion time, latency ms) samples for windowed series.
    /// Copy-on-write so snapshotting the population is O(tail), not
    /// O(completed requests).
    samples: SegStore<(SimTime, f64)>,
    /// Collect raw samples only after this time (lets experiments exclude
    /// warm-up).
    record_after: SimTime,
}

impl ClosedLoopUsers {
    /// Creates a population of `n` users with the paper's 7 s mean think
    /// time.
    pub fn new(n: usize, model: BrowsingModel, seed: u64) -> Self {
        assert!(n > 0, "population needs at least one user");
        let mut rng = RngStream::from_label(seed, "workload/users");
        let users = (0..n)
            .map(|i| User {
                state: model.initial_state(&mut rng),
                session: i as u64,
                ip: 0x0A10_0000 + i as u32,
            })
            .collect();
        ClosedLoopUsers {
            model,
            think_mean_s: 7.0,
            users,
            rng,
            outstanding: HashMap::new(),
            latency: Welford::new(),
            samples: SegStore::new(),
            record_after: SimTime::ZERO,
        }
    }

    /// Overrides the mean think time in seconds.
    pub fn with_think_time(mut self, mean_s: f64) -> Self {
        assert!(mean_s >= 0.0, "think time cannot be negative");
        self.think_mean_s = mean_s;
        self
    }

    /// Starts raw-sample recording only after `t` (statistics in
    /// [`ClosedLoopUsers::latency_stats`] are unaffected).
    pub fn record_after(mut self, t: SimTime) -> Self {
        self.record_after = t;
        self
    }

    /// Population size.
    pub fn population(&self) -> usize {
        self.users.len()
    }

    /// Aggregate latency statistics in milliseconds.
    pub fn latency_stats(&self) -> Welford {
        self.latency
    }

    /// Raw `(completed_at, latency_ms)` samples recorded after the
    /// configured threshold.
    pub fn samples(&self) -> &SegStore<(SimTime, f64)> {
        &self.samples
    }

    fn think_then_wake(&mut self, ctx: &mut SimCtx<'_>, user: usize) {
        // Shifted exponential: floor + exp remainder, preserving the mean.
        let floor = self.think_mean_s * 3.0 / 7.0;
        let think = floor + self.rng.exp(self.think_mean_s - floor);
        ctx.schedule_wake(SimDuration::from_secs_f64(think), user as u64);
    }
}

impl Agent for ClosedLoopUsers {
    fn start(&mut self, ctx: &mut SimCtx<'_>) {
        for user in 0..self.users.len() {
            self.think_then_wake(ctx, user);
        }
    }

    fn on_wake(&mut self, ctx: &mut SimCtx<'_>, token: u64) {
        let user = token as usize;
        let u = self.users[user];
        let rt = self.model.request_type(u.state);
        let req = ctx.submit(rt, Origin::legit(u.ip, u.session));
        self.outstanding.insert(req, user);
    }

    fn on_response(&mut self, ctx: &mut SimCtx<'_>, response: &Response) {
        let user = self
            .outstanding
            .remove(&response.token)
            .expect("response for unknown token");
        let lat = response.latency_ms();
        self.latency.push(lat);
        if response.completed_at >= self.record_after {
            self.samples.push((response.completed_at, lat));
        }
        let state = self.users[user].state;
        self.users[user].state = self.model.next_state(state, &mut self.rng);
        self.think_then_wake(ctx, user);
    }

    fn snapshot(&self) -> Option<microsim::AgentState> {
        Some(microsim::AgentState::of(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use callgraph::{ServiceSpec, TopologyBuilder};
    use microsim::{SimConfig, Simulation};

    fn topo() -> callgraph::Topology {
        let mut b = TopologyBuilder::new();
        let gw = b.add_service(ServiceSpec::new("gw").threads(512).demand_cv(0.0));
        let x = b.add_service(ServiceSpec::new("x").threads(256).demand_cv(0.0));
        b.add_request_type(
            "r0",
            vec![
                (gw, SimDuration::from_millis(1)),
                (x, SimDuration::from_millis(3)),
            ],
        );
        b.add_request_type("r1", vec![(gw, SimDuration::from_millis(1))]);
        b.build()
    }

    #[test]
    fn population_produces_expected_throughput() {
        // 100 users, 1 s think, ~4 ms service: throughput ~ 100 req/s.
        let model = BrowsingModel::uniform([RequestTypeId::new(0), RequestTypeId::new(1)]);
        let users = ClosedLoopUsers::new(100, model, 11).with_think_time(1.0);
        let mut sim = Simulation::new(topo(), SimConfig::default());
        sim.add_agent(Box::new(users));
        sim.run_until(SimTime::from_secs(30));
        let n = sim.metrics().request_log().len() as f64;
        let rate = n / 30.0;
        assert!((rate - 100.0).abs() < 15.0, "rate {rate} req/s");
    }

    #[test]
    fn closed_loop_has_one_outstanding_request_per_user() {
        let model = BrowsingModel::uniform([RequestTypeId::new(0)]);
        let users = ClosedLoopUsers::new(5, model, 3).with_think_time(0.01);
        let mut sim = Simulation::new(topo(), SimConfig::default());
        sim.add_agent(Box::new(users));
        sim.run_until(SimTime::from_secs(5));
        // With think time 10 ms and RT ~5 ms, each user alternates
        // think/request; sessions in the access log must be exactly 5.
        let sessions: std::collections::HashSet<u64> = sim
            .metrics()
            .access_log()
            .iter()
            .map(|e| e.origin.session)
            .collect();
        assert_eq!(sessions.len(), 5);
        // No session may ever have two overlapping requests: check by
        // scanning the log per session against completions.
        let mut last_submit: HashMap<u64, SimTime> = HashMap::new();
        for e in sim.metrics().access_log() {
            if let Some(prev) = last_submit.insert(e.origin.session, e.at) {
                assert!(e.at > prev, "submissions must be ordered per user");
            }
        }
    }

    #[test]
    fn markov_transitions_follow_matrix() {
        // Deterministic cycle: r0 -> r1 -> r0 -> ...
        let model = BrowsingModel::new(
            vec![RequestTypeId::new(0), RequestTypeId::new(1)],
            vec![vec![0.0, 1.0], vec![1.0, 0.0]],
            vec![1.0, 0.0],
        );
        let users = ClosedLoopUsers::new(1, model, 3).with_think_time(0.001);
        let mut sim = Simulation::new(topo(), SimConfig::default());
        sim.add_agent(Box::new(users));
        sim.run_until(SimTime::from_secs(2));
        let types: Vec<u32> = sim
            .metrics()
            .access_log()
            .iter()
            .map(|e| e.request_type.index() as u32)
            .collect();
        assert!(types.len() > 10);
        for (i, ty) in types.iter().enumerate() {
            assert_eq!(*ty, (i % 2) as u32, "strict alternation expected");
        }
    }

    #[test]
    fn record_after_skips_warmup() {
        let model = BrowsingModel::uniform([RequestTypeId::new(1)]);
        let users = ClosedLoopUsers::new(10, model, 5)
            .with_think_time(0.05)
            .record_after(SimTime::from_secs(1));
        let mut sim = Simulation::new(topo(), SimConfig::default());
        let id = sim.add_agent(Box::new(users));
        sim.run_until(SimTime::from_secs(2));
        let users: &ClosedLoopUsers = sim.agent_as(id).expect("typed access");
        assert!(!users.samples().is_empty());
        assert!(users
            .samples()
            .iter()
            .all(|(t, _)| *t >= SimTime::from_secs(1)));
        // Aggregate stats still cover the whole run (more samples than the
        // post-warm-up raw series).
        assert!(users.latency_stats().count() > users.samples().len() as u64);
    }

    #[test]
    #[should_panic(expected = "transition rows must be square")]
    fn ragged_matrix_rejected() {
        BrowsingModel::new(
            vec![RequestTypeId::new(0), RequestTypeId::new(1)],
            vec![vec![1.0, 0.0], vec![1.0]],
            vec![1.0, 0.0],
        );
    }

    #[test]
    #[should_panic(expected = "needs at least one user")]
    fn empty_population_rejected() {
        ClosedLoopUsers::new(0, BrowsingModel::uniform([RequestTypeId::new(0)]), 1);
    }
}
