//! Workload generation: legitimate-user traffic for the target application.
//!
//! Reproduces the paper's baseline workloads:
//!
//! * [`ClosedLoopUsers`] — the Section V-B generator: a population of
//!   emulated users, each navigating the application's request types
//!   through a Markov chain ([`BrowsingModel`]) with exponential think
//!   times (7 s mean in the paper). Closed-loop means a user has at most
//!   one outstanding request. Built on a flat user slab plus a bucketed
//!   think-timer arena ([`ThinkArena`]) so cells with 100k+ users cost
//!   O(occupied buckets) pending wheel events; the retained naive twin
//!   ([`ClosedLoopUsersNaive`]) is its differential ground truth and
//!   bench baseline.
//! * [`PoissonSource`] — an open-loop source at a fixed or time-varying
//!   rate, used by experiments that specify workloads in req/s.
//! * [`RateTrace`] — piecewise-constant rate series; includes a
//!   re-synthesis of the "Large Variation" bursty trace (Gandhi et al.)
//!   used in Fig 15, swinging between 1 k and 6 k req/s.
//!
//! All generators are [`microsim::Agent`]s: they interact with the platform
//! exactly like any external client.

pub mod arena;
pub mod mix;
pub mod poisson;
pub mod trace;
pub mod users;

pub use arena::{think_tick_micros, ThinkArena};
pub use mix::RequestMix;
pub use poisson::PoissonSource;
pub use trace::RateTrace;
pub use users::{BrowsingModel, ClosedLoopUsers, ClosedLoopUsersNaive};
