//! The think-timer arena: one kernel wakeup per occupied bucket.
//!
//! A closed-loop population of `n` users used to park one `EventQueue`
//! entry per sleeping user — O(users) pending wheel events, which is
//! exactly the deep-population regime the timing wheel was never meant to
//! carry (100k users at a 7 s mean think time is 100k simultaneous
//! timers). The [`ThinkArena`] collapses that to O(occupied buckets):
//!
//! * think expiries are quantised **up** to a tick (the bucket
//!   granularity, chosen from the mean think time so the relative
//!   quantisation error stays below ~0.1 %);
//! * all users expiring on the same tick share one bucket, and the bucket
//!   schedules exactly **one** kernel wakeup — when it fires, the
//!   population steps every user in the bucket in slot order;
//! * buckets live in a fixed power-of-two ring indexed by `tick % RING_LEN`
//!   as flat intrusive lists (`head[bucket]` → `next[slot]` chains), so
//!   scheduling a timer is two array writes and draining is a list walk —
//!   no per-timer allocation, and cloning the arena for a snapshot is
//!   three `memcpy`s.
//!
//! Ticks more than [`RING_LEN`] ahead of *now* (a think draw out in the
//! exponential tail, ≥ 32× the mean — astronomically rare but possible)
//! spill to a small overflow list that is consulted only when non-empty.
//!
//! Determinism: whether [`ThinkArena::schedule`] asks the caller for a
//! kernel wakeup depends only on the sequence of prior schedule/drain
//! calls — "is this tick already pending?" — and draining returns slots in
//! sorted order. The naive twin (`BTreeMap<tick, Vec<slot>>`,
//! one entry per distinct tick) makes the identical decisions, which is
//! what lets `tests/determinism.rs` pin the two populations byte-for-byte
//! against each other.

use simnet::SimTime;

/// Sentinel for "no entry" in the intrusive bucket lists.
const NONE: u32 = u32::MAX;

/// Ring length in ticks. With the tick chosen at ~mean/2048 (see
/// [`think_tick_micros`]) the ring spans ≥ 32× the mean think time, so the
/// overflow list is cold in every realistic configuration.
pub const RING_LEN: usize = 1 << 16;

/// Picks the bucket granularity (µs, power of two) for a mean think time.
///
/// Roughly `mean / 2048`, clamped to `[1 µs, 8192 µs]`: relative
/// quantisation error ≤ ~0.05 % of the mean, absolute error ≤ 8.2 ms, and
/// a 7 s paper-mean population lands on 4096 µs ticks — a few thousand
/// occupied buckets for 100k users instead of 100k wheel events.
pub fn think_tick_micros(mean_s: f64) -> u64 {
    ((mean_s * 1e6 / 2048.0) as u64)
        .next_power_of_two()
        .clamp(1, 8192)
}

/// A bucketed timer arena over user slab slots.
///
/// Timers are identified by `(tick, slot)`; a tick is an absolute multiple
/// of the arena's bucket granularity. The arena never talks to the kernel
/// itself: [`ThinkArena::schedule`] returns whether the caller must place
/// a kernel wakeup for the tick, keeping the arena a pure, deterministic
/// data structure.
#[derive(Debug, PartialEq)]
pub struct ThinkArena {
    /// Bucket granularity in microseconds (power of two).
    tick_micros: u64,
    /// Ring of intrusive list heads, indexed by `tick % RING_LEN`;
    /// [`NONE`] marks an empty bucket. A bucket holds slots for exactly
    /// one live tick (the ring spans more ticks than any timer horizon).
    head: Vec<u32>,
    /// Per-slot forward links of the intrusive bucket lists.
    next: Vec<u32>,
    /// `(tick, slot)` timers too far ahead for the ring; consulted only
    /// when non-empty.
    overflow: Vec<(u64, u32)>,
    /// Live timers (for reporting; one per sleeping user).
    len: usize,
}

// The arena is live (non-history) state: snapshot/fork copies it with a
// hand-written per-field Clone that simlint's `snapshot-complete` rule
// keeps field-complete.
impl Clone for ThinkArena {
    fn clone(&self) -> Self {
        ThinkArena {
            tick_micros: self.tick_micros,
            head: self.head.clone(),
            next: self.next.clone(),
            overflow: self.overflow.clone(),
            len: self.len,
        }
    }
}

impl ThinkArena {
    /// Creates an arena for `slots` users with the given bucket
    /// granularity.
    ///
    /// # Panics
    ///
    /// Panics if `tick_micros` is zero or not a power of two.
    pub fn new(tick_micros: u64, slots: usize) -> Self {
        assert!(
            tick_micros.is_power_of_two(),
            "bucket granularity must be a power of two"
        );
        ThinkArena {
            tick_micros,
            head: vec![NONE; RING_LEN],
            next: vec![NONE; slots],
            overflow: Vec::new(),
            len: 0,
        }
    }

    /// Bucket granularity in microseconds.
    pub fn tick_micros(&self) -> u64 {
        self.tick_micros
    }

    /// The tick a timer expiring at `t` is quantised (up) to.
    pub fn tick_of(&self, t: SimTime) -> u64 {
        t.as_micros().div_ceil(self.tick_micros)
    }

    /// The absolute firing time of a tick.
    pub fn wake_time(&self, tick: u64) -> SimTime {
        SimTime::from_micros(tick * self.tick_micros)
    }

    /// Live timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Occupied buckets (ring buckets plus distinct overflow ticks) — the
    /// arena's pending-kernel-wakeup count.
    pub fn occupied_buckets(&self) -> usize {
        let ring = self.head.iter().filter(|&&h| h != NONE).count();
        let mut ticks: Vec<u64> = self.overflow.iter().map(|&(t, _)| t).collect();
        ticks.sort_unstable();
        ticks.dedup();
        ring + ticks.len()
    }

    /// Whether `tick` already has a kernel wakeup pending.
    fn is_pending(&self, now: SimTime, tick: u64) -> bool {
        if !self.overflow.is_empty() && self.overflow.iter().any(|&(t, _)| t == tick) {
            return true;
        }
        let now_tick = now.as_micros() / self.tick_micros;
        tick < now_tick + RING_LEN as u64 && self.head[(tick % RING_LEN as u64) as usize] != NONE
    }

    /// Parks `slot` until `tick`. Returns `true` when the caller must
    /// schedule a kernel wakeup at [`ThinkArena::wake_time`]`(tick)` — i.e.
    /// exactly when the tick was not already pending.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the slot is already parked.
    pub fn schedule(&mut self, now: SimTime, slot: u32, tick: u64) -> bool {
        debug_assert_eq!(self.next[slot as usize], NONE, "slot parked twice");
        let need_wake = !self.is_pending(now, tick);
        let now_tick = now.as_micros() / self.tick_micros;
        if tick < now_tick + RING_LEN as u64 {
            let b = (tick % RING_LEN as u64) as usize;
            self.next[slot as usize] = self.head[b];
            self.head[b] = slot;
        } else {
            self.overflow.push((tick, slot));
        }
        self.len += 1;
        need_wake
    }

    /// Drains every slot parked on `tick` into `out` (cleared first), in
    /// ascending slot order. Called when the tick's kernel wakeup fires;
    /// the caller owns the batch buffer so it can keep iterating it while
    /// re-parking slots into the arena.
    pub fn drain_into(&mut self, tick: u64, out: &mut Vec<u32>) {
        out.clear();
        let b = (tick % RING_LEN as u64) as usize;
        let mut cur = self.head[b];
        self.head[b] = NONE;
        while cur != NONE {
            out.push(cur);
            let nx = self.next[cur as usize];
            self.next[cur as usize] = NONE;
            cur = nx;
        }
        if !self.overflow.is_empty() {
            let mut i = 0;
            while i < self.overflow.len() {
                if self.overflow[i].0 == tick {
                    out.push(self.overflow.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
        }
        self.len -= out.len();
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn t(micros: u64) -> SimTime {
        SimTime::from_micros(micros)
    }

    fn drain(a: &mut ThinkArena, tick: u64) -> Vec<u32> {
        let mut out = Vec::new();
        a.drain_into(tick, &mut out);
        out
    }

    #[test]
    fn tick_granularity_tracks_mean_think_time() {
        assert_eq!(think_tick_micros(7.0), 4096); // paper mean
        assert_eq!(think_tick_micros(1.0), 512);
        assert_eq!(think_tick_micros(0.0), 1);
        assert_eq!(think_tick_micros(1000.0), 8192); // clamped
    }

    #[test]
    fn one_wake_per_bucket() {
        let mut a = ThinkArena::new(1024, 8);
        // Three users on the same tick: only the first asks for a wakeup.
        assert!(a.schedule(t(0), 3, 5));
        assert!(!a.schedule(t(0), 1, 5));
        assert!(!a.schedule(t(0), 7, 5));
        // A different tick needs its own wakeup.
        assert!(a.schedule(t(0), 2, 6));
        assert_eq!(a.occupied_buckets(), 2);
        assert_eq!(a.len(), 4);
        // Drain returns slot order, not insertion order.
        assert_eq!(drain(&mut a, 5), vec![1, 3, 7]);
        assert_eq!(drain(&mut a, 6), vec![2]);
        assert!(a.is_empty());
        // The tick is free again after the drain.
        assert!(a.schedule(a.wake_time(6), 0, 6));
    }

    #[test]
    fn quantisation_rounds_up() {
        let a = ThinkArena::new(4096, 1);
        assert_eq!(a.tick_of(t(0)), 0);
        assert_eq!(a.tick_of(t(1)), 1);
        assert_eq!(a.tick_of(t(4096)), 1);
        assert_eq!(a.tick_of(t(4097)), 2);
        assert_eq!(a.wake_time(2), t(8192));
    }

    #[test]
    fn far_future_ticks_spill_to_overflow_and_fire() {
        let mut a = ThinkArena::new(1, 4);
        let far = RING_LEN as u64 + 17;
        assert!(a.schedule(t(0), 2, far));
        assert!(!a.schedule(t(0), 0, far)); // same far tick: already pending
                                            // A near tick aliasing the same ring bucket is independent.
        assert!(a.schedule(t(0), 1, 17));
        assert_eq!(drain(&mut a, 17), vec![1]);
        assert_eq!(a.occupied_buckets(), 1);
        assert_eq!(drain(&mut a, far), vec![0, 2]);
        assert!(a.is_empty());
    }

    #[test]
    fn near_insert_after_overflow_insert_does_not_double_schedule() {
        let mut a = ThinkArena::new(1, 4);
        let tick = RING_LEN as u64 + 3;
        assert!(a.schedule(t(0), 0, tick)); // out of span: overflow
                                            // Time advances; the same tick is now in span for a ring insert.
        let later = t(8);
        assert!(!a.schedule(later, 1, tick)); // already pending via overflow
        assert_eq!(drain(&mut a, tick), vec![0, 1]);
    }

    #[test]
    fn clone_preserves_timers() {
        let mut a = ThinkArena::new(256, 4);
        a.schedule(t(0), 1, 9);
        a.schedule(t(0), 3, 9);
        let mut b = a.clone();
        assert_eq!(b.len(), 2);
        assert_eq!(drain(&mut b, 9), vec![1, 3]);
        assert_eq!(drain(&mut a, 9), vec![1, 3]); // original unaffected
    }

    /// Differential ground truth: a `BTreeMap<tick, Vec<slot>>` with one
    /// key per distinct tick (the naive population twin's timer store).
    #[derive(Default)]
    struct NaiveTimers {
        map: BTreeMap<u64, Vec<u32>>,
    }

    impl NaiveTimers {
        fn schedule(&mut self, slot: u32, tick: u64) -> bool {
            let entry = self.map.entry(tick).or_default();
            entry.push(slot);
            entry.len() == 1
        }

        fn drain(&mut self, tick: u64) -> Vec<u32> {
            let mut v = self.map.remove(&tick).unwrap_or_default();
            v.sort_unstable();
            v
        }
    }

    proptest! {
        /// The arena and the naive map make identical wake-scheduling
        /// decisions and drain identical slot sets, including ticks far
        /// enough out to exercise the overflow list.
        #[test]
        fn arena_matches_naive_map(
            ops in proptest::collection::vec(
                (0u32..64, 0u64..(3 * RING_LEN as u64)), 1..200),
        ) {
            let mut arena = ThinkArena::new(1, 64);
            let mut naive = NaiveTimers::default();
            let mut parked: Vec<(u64, u32)> = Vec::new();
            let now = t(0);
            for (slot, tick) in ops {
                if parked.iter().any(|&(_, s)| s == slot) {
                    continue; // closed loop: one timer per user
                }
                prop_assert_eq!(
                    arena.schedule(now, slot, tick),
                    naive.schedule(slot, tick),
                    "wake decision diverged at slot {} tick {}", slot, tick
                );
                parked.push((tick, slot));
            }
            // Fire every distinct tick in time order, comparing drains.
            let mut ticks: Vec<u64> = parked.iter().map(|&(t, _)| t).collect();
            ticks.sort_unstable();
            ticks.dedup();
            prop_assert_eq!(arena.occupied_buckets(), ticks.len());
            for tick in ticks {
                prop_assert_eq!(drain(&mut arena, tick), naive.drain(tick));
            }
            prop_assert!(arena.is_empty());
        }
    }
}
