//! Piecewise-constant request-rate traces.

use serde::{Deserialize, Serialize};
use simnet::{RngStream, SimDuration, SimTime};

/// A piecewise-constant req/s series.
///
/// Segment `i` covers `[i * step, (i+1) * step)`. Queries beyond the last
/// segment return the last rate (so sources do not die at trace end).
///
/// # Example
///
/// ```
/// use simnet::{SimDuration, SimTime};
/// use workload::RateTrace;
///
/// let trace = RateTrace::new(SimDuration::from_secs(10), vec![100.0, 500.0]);
/// assert_eq!(trace.rate_at(SimTime::from_secs(3)), 100.0);
/// assert_eq!(trace.rate_at(SimTime::from_secs(12)), 500.0);
/// assert_eq!(trace.rate_at(SimTime::from_secs(99)), 500.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateTrace {
    step: SimDuration,
    rates: Vec<f64>,
}

impl RateTrace {
    /// Creates a trace with the given segment length and per-segment rates.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero, `rates` is empty, or any rate is negative
    /// or non-finite.
    pub fn new(step: SimDuration, rates: Vec<f64>) -> Self {
        assert!(!step.is_zero(), "trace step must be positive");
        assert!(!rates.is_empty(), "trace needs at least one segment");
        assert!(
            rates.iter().all(|r| r.is_finite() && *r >= 0.0),
            "rates must be finite and non-negative"
        );
        RateTrace { step, rates }
    }

    /// A constant-rate trace.
    pub fn constant(rate: f64) -> Self {
        Self::new(SimDuration::from_secs(1), vec![rate])
    }

    /// Re-synthesis of the "Large Variation" bursty workload trace
    /// (Gandhi et al., used in Fig 15): the rate performs large random
    /// swings between `lo` and `hi` req/s with 30 s segments over
    /// `duration`, alternating ramps and plateaus.
    pub fn large_variation(seed: u64, duration: SimDuration, lo: f64, hi: f64) -> Self {
        assert!(lo >= 0.0 && hi > lo, "need 0 <= lo < hi");
        let step = SimDuration::from_secs(30);
        let segments = (duration.as_micros() / step.as_micros()).max(1) as usize;
        let mut rng = RngStream::from_label(seed, "trace/large-variation");
        let mut rates = Vec::with_capacity(segments);
        let mut current = rng.uniform(lo, hi);
        for _ in 0..segments {
            // Alternate between big jumps (bursts) and small drifts.
            if rng.chance(0.4) {
                current = rng.uniform(lo, hi);
            } else {
                let drift = (hi - lo) * 0.1;
                current = (current + rng.uniform(-drift, drift)).clamp(lo, hi);
            }
            rates.push(current);
        }
        RateTrace { step, rates }
    }

    /// The rate at time `t` (req/s).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let idx = (t.as_micros() / self.step.as_micros()) as usize;
        self.rates[idx.min(self.rates.len() - 1)]
    }

    /// Segment length.
    pub fn step(&self) -> SimDuration {
        self.step
    }

    /// The per-segment rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Total trace duration (segments × step).
    pub fn duration(&self) -> SimDuration {
        self.step * self.rates.len() as u64
    }

    /// Largest rate in the trace.
    pub fn peak(&self) -> f64 {
        self.rates.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_everywhere() {
        let t = RateTrace::constant(250.0);
        assert_eq!(t.rate_at(SimTime::ZERO), 250.0);
        assert_eq!(t.rate_at(SimTime::from_secs(3600)), 250.0);
    }

    #[test]
    fn segments_index_by_time() {
        let t = RateTrace::new(SimDuration::from_secs(5), vec![1.0, 2.0, 3.0]);
        assert_eq!(t.rate_at(SimTime::from_secs(0)), 1.0);
        assert_eq!(t.rate_at(SimTime::from_secs(5)), 2.0);
        assert_eq!(t.rate_at(SimTime::from_secs(14)), 3.0);
        assert_eq!(t.duration(), SimDuration::from_secs(15));
    }

    #[test]
    fn large_variation_stays_in_bounds() {
        let t = RateTrace::large_variation(7, SimDuration::from_secs(1200), 1000.0, 6000.0);
        assert_eq!(t.rates().len(), 40);
        for &r in t.rates() {
            assert!((1000.0..=6000.0).contains(&r), "rate {r} out of bounds");
        }
        // It actually varies (not a constant line).
        let min = t.rates().iter().copied().fold(f64::MAX, f64::min);
        assert!(t.peak() - min > 1000.0, "trace should swing widely");
    }

    #[test]
    fn large_variation_is_deterministic() {
        let a = RateTrace::large_variation(9, SimDuration::from_secs(600), 1000.0, 6000.0);
        let b = RateTrace::large_variation(9, SimDuration::from_secs(600), 1000.0, 6000.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "trace step must be positive")]
    fn zero_step_rejected() {
        RateTrace::new(SimDuration::ZERO, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_rate_rejected() {
        RateTrace::new(SimDuration::from_secs(1), vec![-1.0]);
    }
}
