//! Open-loop Poisson traffic sources.

use microsim::{Agent, Origin, SimCtx};
use simnet::{RngStream, SimDuration, SimTime};

use crate::mix::RequestMix;
use crate::trace::RateTrace;

/// An open-loop source: requests arrive as a (possibly non-homogeneous)
/// Poisson process whose instantaneous rate follows a [`RateTrace`], with
/// types drawn from a [`RequestMix`].
///
/// Open-loop means arrivals do not wait for responses — the standard model
/// for aggregate traffic from a large user base, and the natural fit for
/// experiments specified in req/s (Fig 15).
#[derive(Debug, Clone)]
pub struct PoissonSource {
    mix: RequestMix,
    trace: RateTrace,
    stop_at: SimTime,
    rng: RngStream,
    ip_base: u32,
    sessions: u64,
    next_session: u64,
}

impl PoissonSource {
    /// Creates a source emitting until `stop_at`.
    ///
    /// `seed` drives arrival times, type choices and session assignment.
    pub fn new(mix: RequestMix, trace: RateTrace, stop_at: SimTime, seed: u64) -> Self {
        PoissonSource {
            mix,
            trace,
            stop_at,
            rng: RngStream::from_label(seed, "workload/poisson"),
            ip_base: 0x0A00_0000, // 10.0.0.0/8 block for legit users
            sessions: 50_000,
            next_session: 0,
        }
    }

    /// Constant-rate convenience constructor.
    pub fn at_rate(mix: RequestMix, rate: f64, stop_at: SimTime, seed: u64) -> Self {
        Self::new(mix, RateTrace::constant(rate), stop_at, seed)
    }

    /// Overrides the number of distinct user sessions the traffic is
    /// spread over (affects only IDS-visible identity, not timing).
    pub fn with_sessions(mut self, sessions: u64) -> Self {
        self.sessions = sessions.max(1);
        self
    }

    fn schedule_next(&mut self, ctx: &mut SimCtx<'_>) {
        let now = ctx.now();
        if now >= self.stop_at {
            return;
        }
        let rate = self.trace.rate_at(now).max(1e-9);
        let gap = self.rng.exp(1.0 / rate);
        ctx.schedule_wake(SimDuration::from_secs_f64(gap), 0);
    }
}

impl Agent for PoissonSource {
    fn start(&mut self, ctx: &mut SimCtx<'_>) {
        self.schedule_next(ctx);
    }

    fn on_wake(&mut self, ctx: &mut SimCtx<'_>, _token: u64) {
        if ctx.now() >= self.stop_at {
            return;
        }
        let rt = self.mix.sample(&mut self.rng);
        let session = self.next_session % self.sessions;
        self.next_session += 1;
        let origin = Origin::legit(self.ip_base + (session as u32 & 0xFFFF), session);
        ctx.submit(rt, origin);
        self.schedule_next(ctx);
    }

    fn snapshot(&self) -> Option<microsim::AgentState> {
        Some(microsim::AgentState::of(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use callgraph::{RequestTypeId, ServiceSpec, TopologyBuilder};
    use microsim::{SimConfig, Simulation};

    fn topo() -> callgraph::Topology {
        let mut b = TopologyBuilder::new();
        let gw = b.add_service(ServiceSpec::new("gw").threads(256).demand_cv(0.0));
        b.add_request_type("r", vec![(gw, SimDuration::from_micros(100))]);
        b.build()
    }

    #[test]
    fn rate_is_approximately_honoured() {
        let mut sim = Simulation::new(topo(), SimConfig::default());
        sim.add_agent(Box::new(PoissonSource::at_rate(
            RequestMix::single(RequestTypeId::new(0)),
            200.0,
            SimTime::from_secs(10),
            1,
        )));
        sim.run_until(SimTime::from_secs(11));
        let n = sim.metrics().request_log().len() as f64;
        assert!((n - 2000.0).abs() < 200.0, "sent {n} requests");
    }

    #[test]
    fn stops_at_deadline() {
        let mut sim = Simulation::new(topo(), SimConfig::default());
        sim.add_agent(Box::new(PoissonSource::at_rate(
            RequestMix::single(RequestTypeId::new(0)),
            100.0,
            SimTime::from_secs(2),
            2,
        )));
        sim.run_until(SimTime::from_secs(10));
        let last = sim
            .metrics()
            .access_log()
            .iter()
            .map(|e| e.at)
            .max()
            .unwrap();
        assert!(last <= SimTime::from_secs(2));
    }

    #[test]
    fn sessions_rotate() {
        let mut sim = Simulation::new(topo(), SimConfig::default());
        sim.add_agent(Box::new(
            PoissonSource::at_rate(
                RequestMix::single(RequestTypeId::new(0)),
                500.0,
                SimTime::from_secs(2),
                3,
            )
            .with_sessions(10),
        ));
        sim.run_until(SimTime::from_secs(3));
        let sessions: std::collections::HashSet<u64> = sim
            .metrics()
            .access_log()
            .iter()
            .map(|e| e.origin.session)
            .collect();
        assert_eq!(sessions.len(), 10);
    }

    #[test]
    fn trace_modulates_rate() {
        let mut sim = Simulation::new(topo(), SimConfig::default());
        let trace = RateTrace::new(SimDuration::from_secs(5), vec![50.0, 500.0]);
        sim.add_agent(Box::new(PoissonSource::new(
            RequestMix::single(RequestTypeId::new(0)),
            trace,
            SimTime::from_secs(10),
            4,
        )));
        sim.run_until(SimTime::from_secs(11));
        let log = sim.metrics().access_log();
        let first: usize = log.iter().filter(|e| e.at < SimTime::from_secs(5)).count();
        let second = log.len() - first;
        assert!(
            second > first * 5,
            "second half ({second}) should far exceed first ({first})"
        );
    }
}
