//! Property-based tests of the workload generators' invariants.

use callgraph::RequestTypeId;
use proptest::prelude::*;
use simnet::{RngStream, SimDuration, SimTime};
use workload::{BrowsingModel, RateTrace, RequestMix};

proptest! {
    /// Traces: lookups always return one of the configured rates; queries
    /// beyond the end return the final rate.
    #[test]
    fn trace_lookup_total(
        step_s in 1u64..120,
        rates in prop::collection::vec(0.0f64..10_000.0, 1..50),
        t in 0u64..100_000,
    ) {
        let trace = RateTrace::new(SimDuration::from_secs(step_s), rates.clone());
        let r = trace.rate_at(SimTime::from_secs(t));
        prop_assert!(rates.contains(&r));
        let beyond = trace.rate_at(SimTime::from_secs(step_s * rates.len() as u64 + t));
        prop_assert_eq!(beyond, *rates.last().expect("non-empty"));
        prop_assert!(trace.peak() >= r);
    }

    /// The Large Variation generator respects its bounds and is
    /// deterministic per seed.
    #[test]
    fn large_variation_bounded(
        seed in any::<u64>(),
        lo in 0.0f64..1_000.0,
        span in 1.0f64..10_000.0,
    ) {
        let hi = lo + span;
        let t1 = RateTrace::large_variation(seed, SimDuration::from_secs(600), lo, hi);
        let t2 = RateTrace::large_variation(seed, SimDuration::from_secs(600), lo, hi);
        prop_assert_eq!(&t1, &t2);
        for &r in t1.rates() {
            prop_assert!((lo..=hi).contains(&r), "rate {r} outside [{lo}, {hi}]");
        }
    }

    /// Request mixes only ever sample types that are actually in the mix,
    /// with positive weight.
    #[test]
    fn mix_samples_its_support(
        seed in any::<u64>(),
        weights in prop::collection::vec(0.0f64..5.0, 1..10),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let entries: Vec<(RequestTypeId, f64)> = weights
            .iter()
            .enumerate()
            .map(|(i, w)| (RequestTypeId::new(i as u32), *w))
            .collect();
        let mix = RequestMix::new(entries.clone());
        let mut rng = RngStream::from_seed(seed);
        for _ in 0..100 {
            let rt = mix.sample(&mut rng);
            let w = entries[rt.index()].1;
            prop_assert!(w > 0.0, "sampled zero-weight type {rt}");
        }
    }

    /// Browsing models are structurally sound for any valid shape: state
    /// count matches, every state maps to its request type.
    #[test]
    fn browsing_model_structure(n in 1usize..8) {
        let types: Vec<RequestTypeId> = (0..n as u32).map(RequestTypeId::new).collect();
        let model = BrowsingModel::uniform(types.clone());
        prop_assert_eq!(model.num_states(), n);
        for (i, rt) in types.iter().enumerate() {
            prop_assert_eq!(model.request_type(i), *rt);
        }
    }
}
