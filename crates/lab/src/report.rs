//! Markdown report assembly for experiment outputs.

use std::fmt::Write as _;
use std::path::Path;

/// A markdown report: a title, prose paragraphs, tables and series dumps.
///
/// # Example
///
/// ```
/// let mut r = lab::Report::new("demo", "Demo experiment");
/// r.paragraph("One line of context.");
/// r.table(&["x", "y"], vec![vec!["1".into(), "2".into()]]);
/// assert!(r.to_markdown().contains("| x | y |"));
/// ```
#[derive(Debug, Clone)]
pub struct Report {
    name: String,
    title: String,
    sections: Vec<String>,
    /// Structured copies of every series block, for CSV export.
    series_data: Vec<SeriesBlock>,
}

/// A structured series block: `(slug, headers, rows)`.
pub type SeriesBlock = (String, Vec<String>, Vec<Vec<String>>);

impl Report {
    /// Creates an empty report; `name` becomes the output file stem.
    pub fn new(name: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            name: name.into(),
            title: title.into(),
            sections: Vec::new(),
            series_data: Vec::new(),
        }
    }

    /// The file stem used by [`Report::write_to_dir`].
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a prose paragraph.
    pub fn paragraph(&mut self, text: impl Into<String>) {
        self.sections.push(text.into());
    }

    /// Appends a subsection heading.
    pub fn heading(&mut self, text: impl Into<String>) {
        self.sections.push(format!("## {}", text.into()));
    }

    /// Appends a markdown table.
    pub fn table(&mut self, headers: &[&str], rows: Vec<Vec<String>>) {
        let mut s = String::new();
        let _ = writeln!(s, "| {} |", headers.join(" | "));
        let _ = writeln!(
            s,
            "|{}|",
            headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in rows {
            let _ = writeln!(s, "| {} |", row.join(" | "));
        }
        self.sections.push(s);
    }

    /// Appends a CSV-style series block (fenced in the markdown, and also
    /// exported as a standalone `.csv` by [`Report::write_to_dir`]).
    pub fn series(&mut self, caption: &str, headers: &[&str], rows: Vec<Vec<String>>) {
        let mut s = String::new();
        let _ = writeln!(s, "{caption}");
        let _ = writeln!(s, "```csv");
        let _ = writeln!(s, "{}", headers.join(","));
        for row in &rows {
            let _ = writeln!(s, "{}", row.join(","));
        }
        let _ = writeln!(s, "```");
        self.sections.push(s);
        let slug = format!("{}_s{}", self.name, self.series_data.len() + 1);
        self.series_data.push((
            slug,
            headers
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows,
        ));
    }

    /// The structured series blocks collected so far: `(slug, headers,
    /// rows)`.
    pub fn series_data(&self) -> &[SeriesBlock] {
        &self.series_data
    }

    /// Renders every series block exactly as [`Report::write_to_dir`]
    /// exports it: `(file stem, CSV content)` pairs.
    pub fn csv_exports(&self) -> Vec<(String, String)> {
        self.series_data
            .iter()
            .map(|(slug, headers, rows)| {
                let mut out = String::new();
                let _ = writeln!(out, "{}", headers.join(","));
                for row in rows {
                    let _ = writeln!(out, "{}", row.join(","));
                }
                (slug.clone(), out)
            })
            .collect()
    }

    /// Renders the whole report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("# {}\n\n", self.title);
        for s in &self.sections {
            out.push_str(s);
            out.push_str("\n\n");
        }
        out
    }

    /// Writes the report to `<dir>/<name>.md` plus one
    /// `<dir>/csv/<name>_sN.csv` per series block (plot-ready).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to_dir(&self, dir: impl AsRef<Path>) -> std::io::Result<std::path::PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.md", self.name));
        std::fs::write(&path, self.to_markdown())?;
        let exports = self.csv_exports();
        if !exports.is_empty() {
            let csv_dir = dir.join("csv");
            std::fs::create_dir_all(&csv_dir)?;
            for (slug, content) in exports {
                std::fs::write(csv_dir.join(format!("{slug}.csv")), content)?;
            }
        }
        Ok(path)
    }
}

/// Formats a float with the given number of decimals (helper for table
/// cells).
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_tables_and_series() {
        let mut r = Report::new("t", "Title");
        r.heading("Head");
        r.paragraph("para");
        r.table(&["a", "b"], vec![vec!["1".into(), "2".into()]]);
        r.series("s", &["x"], vec![vec!["9".into()]]);
        let md = r.to_markdown();
        assert!(md.starts_with("# Title"));
        assert!(md.contains("## Head"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("```csv"));
        assert!(md.contains("9"));
    }

    #[test]
    fn writes_markdown_and_csvs_to_disk() {
        let dir = std::env::temp_dir().join("grunt-lab-test");
        let mut r = Report::new("unit", "U");
        r.series("s", &["x", "y"], vec![vec!["1".into(), "2".into()]]);
        let path = r.write_to_dir(&dir).expect("write");
        assert!(path.exists());
        let csv = dir.join("csv").join("unit_s1.csv");
        assert!(csv.exists());
        let content = std::fs::read_to_string(&csv).expect("read");
        assert_eq!(content, "x,y\n1,2\n");
        std::fs::remove_file(path).ok();
        std::fs::remove_file(csv).ok();
        assert_eq!(r.series_data().len(), 1);
    }

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(1.2345, 2), "1.23");
        assert_eq!(fmt(10.0, 0), "10");
    }
}
