//! Shared scenario plumbing: deploy an application, run baseline + attack,
//! collect the measurements every experiment needs.

use apps::SocialNetwork;
use callgraph::Topology;
use grunt::{CampaignConfig, CommanderConfig, GruntCampaign, ProfilerConfig, ProfilerOutcome};
use microsim::{Metrics, PlatformProfile, SimConfig, SimSnapshot, Simulation};
use simnet::{SimDuration, SimTime};
use telemetry::{LatencySummary, Traffic};
use workload::{BrowsingModel, ClosedLoopUsers};

/// A deployable scenario: an application plus the user population driving
/// it.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display label (e.g. `"EC2-7K"`).
    pub label: String,
    /// The application topology.
    pub topology: Topology,
    /// The browsing model of the legitimate population.
    pub browsing: BrowsingModel,
    /// Number of closed-loop users actually driving the system.
    pub users: usize,
    /// Platform profile.
    pub platform: PlatformProfile,
    /// Simulation seed.
    pub seed: u64,
}

impl Scenario {
    /// A SocialNetwork scenario on the given platform, provisioned for
    /// `provision_users` but driven by `users` (the paper runs two
    /// workload levels against one deployment per cloud).
    pub fn social_network(
        label: &str,
        platform: PlatformProfile,
        users: usize,
        provision_users: usize,
        seed: u64,
    ) -> Self {
        let app = SocialNetwork::new(provision_users);
        Scenario {
            label: label.to_string(),
            topology: app.topology().clone(),
            browsing: app.browsing_model(),
            users,
            platform,
            seed,
        }
    }

    /// Builds the simulation with the user population registered.
    pub fn build(&self) -> Simulation {
        let cfg = SimConfig::default()
            .seed(self.seed)
            .platform(self.platform.clone());
        self.build_with(cfg)
    }

    /// Builds with a custom [`SimConfig`] (platform/seed fields are
    /// overridden by the scenario's).
    pub fn build_with(&self, cfg: SimConfig) -> Simulation {
        let cfg = cfg.seed(self.seed).platform(self.platform.clone());
        let mut sim = Simulation::new(self.topology.clone(), cfg);
        sim.add_agent(Box::new(ClosedLoopUsers::new(
            self.users,
            self.browsing.clone(),
            simnet::derive_seed(self.seed, "scenario/users"),
        )));
        sim
    }

    /// Builds, warms up and measures the baseline window once, returning a
    /// forkable [`WarmBase`]. See [`WarmBase::new`].
    pub fn warm_base(&self, baseline: SimDuration) -> WarmBase {
        WarmBase::new(self, baseline)
    }
}

/// The standard warm-up every scenario runs before measuring anything.
pub const WARMUP: SimDuration = SimDuration::from_secs(10);

/// A scenario advanced through warm-up and its baseline window, frozen as
/// a forkable snapshot.
///
/// Every cell of a sweep that shares the scenario and baseline length can
/// fork from the same `WarmBase` instead of re-simulating the prefix. A
/// forked run is bit-identical to a cold run that executed the same prefix
/// inline, so sharing never changes results (asserted in
/// `tests/determinism.rs`).
#[derive(Debug, Clone)]
pub struct WarmBase {
    /// Scenario label.
    pub label: String,
    /// The frozen state at the end of the baseline window.
    pub snapshot: SimSnapshot,
    /// `[base_from, base_to)` interval for baseline measurements.
    pub baseline_window: (SimTime, SimTime),
}

impl WarmBase {
    /// Builds the scenario, runs the standard warm-up plus `baseline`, and
    /// checkpoints. This is exactly the prefix [`AttackRun::execute`] runs
    /// cold.
    pub fn new(scenario: &Scenario, baseline: SimDuration) -> WarmBase {
        let mut sim = scenario.build();
        sim.run_until(SimTime::ZERO + WARMUP);
        let base_from = sim.now();
        sim.run_until(base_from + baseline);
        let base_to = sim.now();
        let snapshot = sim
            .checkpoint()
            .expect("scenario agents support snapshotting");
        WarmBase {
            label: scenario.label.clone(),
            snapshot,
            baseline_window: (base_from, base_to),
        }
    }

    /// Forks a live simulation resuming at the end of the baseline window.
    pub fn fork(&self) -> Simulation {
        Simulation::from_snapshot(&self.snapshot)
    }

    /// Runs the Grunt profiling phase once on a fork of this base and
    /// freezes the profiled state, ready to fork per attack variant.
    pub fn profiled(&self, profiler: ProfilerConfig) -> WarmProfiled {
        let mut sim = self.fork();
        let profile = GruntCampaign::profile(&mut sim, profiler);
        let snapshot = sim
            .checkpoint()
            .expect("profiled agents support snapshotting");
        WarmProfiled {
            label: self.label.clone(),
            snapshot,
            baseline_window: self.baseline_window,
            profile,
        }
    }
}

/// A scenario profiled by Grunt: warm-up, baseline *and* the whole
/// profiling phase are simulated once; each attack variant forks from
/// here. This is the dominant saving for attack-parameter sweeps, where
/// cells differ only in [`CommanderConfig`].
#[derive(Debug, Clone)]
pub struct WarmProfiled {
    /// Scenario label.
    pub label: String,
    /// The frozen state at the instant profiling finished.
    pub snapshot: SimSnapshot,
    /// `[base_from, base_to)` interval for baseline measurements.
    pub baseline_window: (SimTime, SimTime),
    /// What the profiler learned.
    pub profile: ProfilerOutcome,
}

impl WarmProfiled {
    /// Warm-up + baseline + profiling in one go. Equivalent to
    /// `scenario.warm_base(baseline).profiled(profiler)`.
    pub fn new(scenario: &Scenario, profiler: ProfilerConfig, baseline: SimDuration) -> Self {
        WarmBase::new(scenario, baseline).profiled(profiler)
    }

    /// Forks a live simulation resuming at the instant profiling finished.
    pub fn fork(&self) -> Simulation {
        Simulation::from_snapshot(&self.snapshot)
    }
}

/// Results of one baseline+attack run.
#[derive(Debug)]
pub struct AttackRun {
    /// Scenario label.
    pub label: String,
    /// The simulation (holds the metrics).
    pub sim: Simulation,
    /// The campaign (profile + report).
    pub campaign: GruntCampaign,
    /// `[base_from, base_to)` interval used for baseline measurements.
    pub baseline_window: (SimTime, SimTime),
    /// `[attack_from, attack_to)` interval used for attack measurements
    /// (excludes ramp-up).
    pub attack_window: (SimTime, SimTime),
    /// Burst pacing length used by the commander (for P_MB correction).
    pub pacing: SimDuration,
}

impl AttackRun {
    /// Runs warm-up, baseline measurement, Grunt profiling and the attack
    /// window, forking from a warm snapshot by default (byte-identical to
    /// the cold path; see [`AttackRun::execute_opts`]).
    pub fn execute(
        scenario: &Scenario,
        config: CampaignConfig,
        baseline: SimDuration,
        attack: SimDuration,
    ) -> AttackRun {
        Self::execute_opts(scenario, config, baseline, attack, true)
    }

    /// [`AttackRun::execute`] with an explicit snapshot switch.
    ///
    /// With `snapshots` the prefix (warm-up, baseline, profiling) runs via
    /// [`WarmProfiled`] and the attack runs on a fork; without, everything
    /// runs inline on one simulation (`lab --no-snapshot`, for debugging
    /// the snapshot path itself). Both paths produce byte-identical
    /// results — `tests/determinism.rs` asserts it.
    pub fn execute_opts(
        scenario: &Scenario,
        config: CampaignConfig,
        baseline: SimDuration,
        attack: SimDuration,
        snapshots: bool,
    ) -> AttackRun {
        if snapshots {
            let warm = WarmProfiled::new(scenario, config.profiler, baseline);
            return Self::forked(&warm, config.commander, attack);
        }
        let pacing = config.commander.burst_length;
        let mut sim = scenario.build();
        sim.run_until(SimTime::ZERO + WARMUP);
        let base_from = sim.now();
        sim.run_until(base_from + baseline);
        let base_to = sim.now();
        let campaign = GruntCampaign::run(&mut sim, config, attack);
        let ramp = SimDuration::from_secs(20).min(attack / 4);
        let attack_window = (
            campaign.attack_started + ramp,
            campaign.attack_started + attack,
        );
        AttackRun {
            label: scenario.label.clone(),
            sim,
            campaign,
            baseline_window: (base_from, base_to),
            attack_window,
            pacing,
        }
    }

    /// Forks the profiled warm state and runs just the attack window with
    /// the given commander variant — the per-cell step of an
    /// attack-parameter sweep.
    pub fn forked(warm: &WarmProfiled, commander: CommanderConfig, attack: SimDuration) -> Self {
        let pacing = commander.burst_length;
        let mut sim = warm.fork();
        let campaign =
            GruntCampaign::attack_with(&mut sim, warm.profile.clone(), commander, attack);
        let ramp = SimDuration::from_secs(20).min(attack / 4);
        let attack_window = (
            campaign.attack_started + ramp,
            campaign.attack_started + attack,
        );
        AttackRun {
            label: warm.label.clone(),
            sim,
            campaign,
            baseline_window: warm.baseline_window,
            attack_window,
            pacing,
        }
    }

    /// The run's metrics.
    pub fn metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    /// Baseline latency summary (legit traffic).
    pub fn baseline_latency(&self) -> LatencySummary {
        LatencySummary::compute(
            self.metrics(),
            Traffic::Legit,
            None,
            self.baseline_window.0,
            self.baseline_window.1,
        )
    }

    /// Attack-window latency summary (legit traffic).
    pub fn attack_latency(&self) -> LatencySummary {
        LatencySummary::compute(
            self.metrics(),
            Traffic::Legit,
            None,
            self.attack_window.0,
            self.attack_window.1,
        )
    }

    /// Mean gateway traffic (MB/s) over a window.
    pub fn network_mbps(&self, from: SimTime, to: SimTime) -> f64 {
        let w = self.metrics().window();
        let per_sec = 1.0 / w.as_secs_f64();
        let lo = (from.as_micros() / w.as_micros()) as usize;
        let hi = ((to.as_micros() / w.as_micros()) as usize).min(self.metrics().num_windows());
        if hi <= lo {
            return 0.0;
        }
        // Indexed sum over exactly the windows `[lo, hi)`, in time order —
        // bit-identical to the slice sum this replaced.
        let total: f64 = self.metrics().network_total_mb(lo, hi);
        total * per_sec / (hi - lo) as f64
    }

    /// Mean CPU utilisation of a representative bottleneck service over a
    /// window: the most-utilised service during the attack window,
    /// excluding the frontend.
    pub fn bottleneck_cpu(&self, from: SimTime, to: SimTime) -> f64 {
        let m = self.metrics();
        let topo = self.sim.topology();
        let mut best = 0.0f64;
        for s in 0..m.num_services() {
            let svc = callgraph::ServiceId::new(s as u32);
            if !topo.service(svc).blockable {
                continue;
            }
            let u = m.mean_utilization(svc, from, to);
            best = best.max(u);
        }
        best
    }

    /// Mean of the attacker's millibottleneck-length estimates, with the
    /// burst pacing removed (ms) — the `P_MB` column of Table III.
    pub fn mean_pmb_ms(&self) -> f64 {
        self.campaign.report.mean_pmb().map_or(0.0, |d| {
            (d.as_millis_f64() - self.pacing.as_millis_f64()).max(0.0)
        })
    }
}
