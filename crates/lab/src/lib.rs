//! The experiment laboratory: one runner per table and figure of the paper.
//!
//! Each experiment in [`experiments`] reproduces one artifact of the
//! evaluation section (see DESIGN.md for the full index):
//!
//! | Runner | Paper artifact |
//! |---|---|
//! | [`experiments::fig1`] | Fig 1 — bottleneck utilisation + RT timeline |
//! | [`experiments::table1`] | Tables I & III — damage across cloud settings |
//! | [`experiments::fig11`] | Fig 11 — pairwise interference profiling curves |
//! | [`experiments::fig12`] | Fig 12 — dependency graph, profiling, groups |
//! | [`experiments::fig13`] | Fig 13 — 100 ms zoom-in under attack |
//! | [`experiments::fig14`] | Fig 14 — 1 s CloudWatch view, no scaling |
//! | [`experiments::fig15`] | Fig 15 — bursty trace with auto-scaling |
//! | [`experiments::fig16`] | Fig 16 — profiler accuracy vs baseline load |
//! | [`experiments::table4`] | Table IV — live attacks on µBench apps |
//! | [`experiments::ablations`] | §VII — Tail attack / brute force comparison |
//! | [`experiments::model_check`] | §III — analytic model vs simulator |
//!
//! Run them through the `lab` binary:
//!
//! ```text
//! cargo run --release -p lab --bin lab -- all --fast
//! cargo run --release -p lab --bin lab -- table1
//! ```
//!
//! Every runner returns a markdown [`report::Report`] and writes it under
//! `results/`.

pub mod experiments;
pub mod report;
pub mod scenario;
pub mod sweep;

pub use report::Report;
pub use scenario::{AttackRun, Scenario, WarmBase, WarmProfiled};

/// How to execute experiments: duration scaling, sweep parallelism, and
/// whether sweep cells fork from shared warm snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOpts {
    /// Duration scaling.
    pub fidelity: Fidelity,
    /// Max sweep cells in flight (see [`sweep::map_cells`]).
    pub jobs: usize,
    /// Fork cells from shared warm snapshots (default). Disabling
    /// (`lab --no-snapshot`) re-simulates every cell's warm-up prefix
    /// inline; output is byte-identical either way.
    pub snapshots: bool,
}

impl RunOpts {
    /// Serial, snapshot-forking run at the given fidelity.
    pub fn new(fidelity: Fidelity) -> Self {
        RunOpts {
            fidelity,
            jobs: 1,
            snapshots: true,
        }
    }

    /// Sets the worker count.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Enables or disables warm-snapshot forking.
    pub fn snapshots(mut self, on: bool) -> Self {
        self.snapshots = on;
        self
    }
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts::new(Fidelity::Full)
    }
}

/// Controls experiment duration: `Full` uses paper-scale windows (20-minute
/// attacks), `Fast` shrinks everything for smoke tests and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Paper-scale durations.
    Full,
    /// Shortened durations for CI / benches.
    Fast,
}

impl Fidelity {
    /// Scales a duration in seconds.
    pub fn secs(self, full: u64, fast: u64) -> simnet::SimDuration {
        match self {
            Fidelity::Full => simnet::SimDuration::from_secs(full),
            Fidelity::Fast => simnet::SimDuration::from_secs(fast),
        }
    }

    /// Picks between two values.
    pub fn pick<T>(self, full: T, fast: T) -> T {
        match self {
            Fidelity::Full => full,
            Fidelity::Fast => fast,
        }
    }
}
