//! Deterministic parallel sweep executor.
//!
//! Experiment tables are sweeps over independent cells (scenario × workload
//! level × seed): each cell builds its own `Simulation`, so cells share no
//! mutable state and can run on separate OS threads. Determinism is
//! preserved by construction:
//!
//! 1. every simulation is single-threaded and seeded per cell, so a cell's
//!    result does not depend on which thread runs it or when;
//! 2. results are collected into a slot indexed by the cell's position, so
//!    the returned `Vec` is in cell order regardless of completion order.
//!
//! Consequently the reports emitted with `--jobs N` are byte-identical to
//! the serial (`--jobs 1`) output — only the wall clock changes. The
//! `determinism` integration test asserts exactly this.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Maps `f` over `cells`, running up to `jobs` cells concurrently, and
/// returns the results **in cell order**.
///
/// `f` is called as `f(index, &cell)`. With `jobs <= 1` (or fewer than two
/// cells) this is a plain in-order loop on the calling thread — the serial
/// path and the parallel path produce identical output either way.
///
/// Workers claim cells from a shared atomic counter (work stealing keeps
/// threads busy even when cell costs are skewed, as with the paper's mixed
/// workload levels) and send `(index, result)` back over a channel.
///
/// # Panics
///
/// Propagates a panic from `f` after the remaining in-flight cells finish.
pub fn map_cells<C, T, F>(jobs: usize, cells: &[C], f: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(usize, &C) -> T + Sync,
{
    let jobs = jobs.max(1).min(cells.len().max(1));
    if jobs <= 1 {
        return cells.iter().enumerate().map(|(i, c)| f(i, c)).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut slots: Vec<Option<T>> = Vec::with_capacity(cells.len());
    slots.resize_with(cells.len(), || None);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let result = f(i, cell);
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Ends when every worker has dropped its sender (normally or by
        // panicking; scope exit re-raises worker panics).
        for (i, result) in rx {
            slots[i] = Some(result);
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.expect("every cell delivered exactly once"))
        .collect()
}

/// The default worker count: `LAB_JOBS` if set to a positive integer,
/// otherwise 1 (serial). Parallel sweeps are opt-in via `lab --jobs N` so
/// that plain invocations keep the familiar serial timing profile.
pub fn default_jobs() -> usize {
    // Worker-count selection only: any jobs value yields byte-identical
    // reports (the determinism test asserts it). simlint: allow(nondet-source)
    std::env::var("LAB_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// A reasonable `--jobs auto` value: the machine's available parallelism,
/// with an explicit serial fallback on single-CPU hosts — see
/// [`auto_jobs_with`].
pub fn auto_jobs() -> usize {
    auto_jobs_with(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

/// [`auto_jobs`] for a host with `available` CPUs (pure, for testing).
///
/// With a single CPU, worker threads cannot actually run concurrently and
/// only add spawn/channel/scheduling overhead on top of the serial work —
/// BENCH_kernel.json records the two-cell table1 slice at no speedup with
/// `--jobs 2` on a 1-CPU host — so `auto` picks the plain in-order loop.
pub fn auto_jobs_with(available: usize) -> usize {
    if available <= 1 {
        1
    } else {
        available
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let cells: Vec<u64> = (0..37).collect();
        let square = |i: usize, c: &u64| (i as u64, c * c);
        let serial = map_cells(1, &cells, square);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(map_cells(jobs, &cells, square), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_cell_sweeps() {
        let none: Vec<u32> = Vec::new();
        assert!(map_cells(4, &none, |_, c| *c).is_empty());
        assert_eq!(map_cells(4, &[9u32], |_, c| c + 1), vec![10]);
    }

    #[test]
    fn uneven_cell_costs_still_ordered() {
        // Early cells sleep longest, so completion order inverts cell
        // order under parallelism; collection must restore it.
        let cells: Vec<u64> = (0..8).collect();
        let out = map_cells(4, &cells, |i, c| {
            std::thread::sleep(std::time::Duration::from_millis(8 - i as u64));
            *c
        });
        assert_eq!(out, cells);
    }

    #[test]
    fn auto_jobs_falls_back_to_serial_on_one_cpu() {
        assert_eq!(auto_jobs_with(0), 1);
        assert_eq!(auto_jobs_with(1), 1);
        assert_eq!(auto_jobs_with(2), 2);
        assert_eq!(auto_jobs_with(16), 16);
        assert!(auto_jobs() >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            map_cells(2, &[1u32, 2, 3, 4], |_, c| {
                if *c == 3 {
                    panic!("boom");
                }
                *c
            })
        });
        assert!(result.is_err());
    }
}
