//! Fig 1: the headline timeline — bottleneck CPU utilisation and response
//! time at 1 s granularity, before and during a Grunt attack.

use callgraph::ServiceId;
use grunt::CampaignConfig;
use simnet::SimDuration;
use telemetry::{CoarseMonitor, LatencySeries, Traffic};

use crate::report::fmt;
use crate::{AttackRun, Fidelity, Report, RunOpts, Scenario};

/// Runs the experiment.
pub fn run(fidelity: Fidelity) -> Report {
    run_opts(RunOpts::new(fidelity))
}

/// Runs the experiment with full execution options.
pub fn run_opts(opts: RunOpts) -> Report {
    let fidelity = opts.fidelity;
    let baseline = fidelity.secs(60, 30);
    let attack = fidelity.secs(300, 120);
    let scenario = Scenario::social_network(
        "EC2-12K",
        microsim::PlatformProfile::ec2(),
        12_000,
        12_000,
        0xF160,
    );
    let run = AttackRun::execute_opts(
        &scenario,
        CampaignConfig::default(),
        baseline,
        attack,
        opts.snapshots,
    );

    let mut report = Report::new(
        "fig1_overview",
        "Fig 1 — bottleneck utilisation and response time under Grunt (1 s metrics)",
    );
    let m = run.metrics();
    let coarse = CoarseMonitor::new(m, SimDuration::from_secs(1));

    // Representative bottleneck: the busiest blockable service during the
    // attack window.
    let topo = run.sim.topology();
    let bottleneck = (0..m.num_services())
        .map(|i| ServiceId::new(i as u32))
        .filter(|s| topo.service(*s).blockable)
        .max_by(|a, b| {
            let ua = m.mean_utilization(*a, run.attack_window.0, run.attack_window.1);
            let ub = m.mean_utilization(*b, run.attack_window.0, run.attack_window.1);
            ua.partial_cmp(&ub).expect("utilisation not NaN")
        })
        .expect("services exist");
    report.paragraph(format!(
        "Representative bottleneck microservice: `{}`. The attack starts at {}.",
        topo.service(bottleneck).name,
        run.campaign.attack_started,
    ));

    let horizon = run.attack_window.1;
    let rt = LatencySeries::compute(m, Traffic::Legit, SimDuration::from_secs(1), horizon);
    let util = coarse.series(bottleneck);
    let rows: Vec<Vec<String>> = util
        .iter()
        .zip(rt.points())
        .map(|(u, (t, rt_ms, n))| {
            vec![
                fmt(t.as_secs_f64(), 0),
                fmt(u.utilization * 100.0, 1),
                fmt(*rt_ms, 1),
                n.to_string(),
            ]
        })
        .collect();
    report.series(
        "Per-second bottleneck CPU and mean legitimate RT:",
        &["t_s", "cpu_pct", "avg_rt_ms", "completions"],
        rows,
    );

    let base = run.baseline_latency();
    let att = run.attack_latency();
    report.paragraph(format!(
        "Baseline avg RT {:.0} ms -> attack avg RT {:.0} ms ({:.1}x); 1 s CPU of the \
         bottleneck stays at {:.0}% mean / {:.0}% peak during the attack — no \
         sustained saturation visible at monitoring granularity.",
        base.avg_ms,
        att.avg_ms,
        att.avg_ms / base.avg_ms.max(1.0),
        coarse.mean_utilization(bottleneck, run.attack_window.0, run.attack_window.1) * 100.0,
        coarse.peak_utilization(bottleneck) * 100.0,
    ));
    report
}
