//! §VII ablations: Grunt vs the single-path Tail attack vs brute force —
//! damage, traffic volume and detectability side by side.

use baselines::{BruteForce, TailAttack, TailAttackConfig};
use defense::{AlertKind, Ids, IdsConfig, RateShield};
use grunt::{CampaignConfig, ProfilerConfig};
use microsim::{Metrics, Simulation};
use simnet::{SimDuration, SimTime};
use telemetry::{LatencySummary, Traffic};

use crate::report::fmt;
use crate::{AttackRun, Fidelity, Report, RunOpts, Scenario};

struct Row {
    label: String,
    attack_requests: u64,
    attack_mb: f64,
    damage_avg_ms: f64,
    damage_p95_ms: f64,
    write_path_ms: f64,
    interval_alerts: usize,
    resource_alerts: usize,
    blocked_ips: usize,
}

fn write_path_ms(metrics: &Metrics, topo: &callgraph::Topology, from: SimTime, to: SimTime) -> f64 {
    LatencySummary::compute(
        metrics,
        Traffic::Legit,
        topo.request_type_by_name("compose-post"),
        from,
        to,
    )
    .avg_ms
}

fn detect(metrics: &Metrics) -> (usize, usize, usize) {
    let report = Ids::new(IdsConfig::default()).analyze(metrics);
    let interval = report
        .of_kind(AlertKind::IntervalViolation)
        .filter(|a| a.hit_attacker)
        .count();
    let resource = report.of_kind(AlertKind::ResourceSaturation).count();
    let blocked = RateShield::paper_default().blocked_count(metrics);
    (interval, resource, blocked)
}

fn attack_bytes(metrics: &Metrics, from: SimTime, to: SimTime) -> (u64, f64) {
    let mut n = 0u64;
    let mut bytes = 0u64;
    for e in metrics.access_log() {
        if e.origin.is_attack && e.at >= from && e.at < to {
            n += 1;
            bytes += e.bytes;
        }
    }
    (n, bytes as f64 / 1e6)
}

/// Runs the experiment.
pub fn run(fidelity: Fidelity) -> Report {
    run_opts(RunOpts::new(fidelity))
}

/// Runs the experiment with full execution options.
///
/// All four rows attack the same scenario after the same 40 s warm prefix
/// (10 s warm-up + 30 s baseline), and the two Grunt rows additionally
/// share the profiling phase. With `opts.snapshots` those shared prefixes
/// are simulated once and every row forks from the frozen state; without,
/// each row re-simulates its prefix cold. Rows are byte-identical either
/// way.
pub fn run_opts(opts: RunOpts) -> Report {
    let fidelity = opts.fidelity;
    let users = fidelity.pick(7_000, 3_000);
    let window = fidelity.secs(300, 120);
    let baseline = SimDuration::from_secs(30);
    let scenario = Scenario::social_network(
        "EC2",
        microsim::PlatformProfile::ec2(),
        users,
        7_000,
        0xAB1A,
    );

    let base = opts.snapshots.then(|| scenario.warm_base(baseline));
    let profiled = base.as_ref().map(|b| b.profiled(ProfilerConfig::default()));
    // A Grunt campaign run: fork the shared profiled state, or replay the
    // whole prefix inline when snapshots are off.
    let grunt_run = |config: CampaignConfig| match &profiled {
        Some(warm) => AttackRun::forked(warm, config.commander, window),
        None => AttackRun::execute_opts(&scenario, config, baseline, window, false),
    };
    // A warmed simulation at t = 40 s for the baseline attacks: fork the
    // shared base, or warm up a fresh simulation inline.
    let warmed_sim = || match &base {
        Some(b) => b.fork(),
        None => {
            let mut sim = scenario.build();
            sim.run_until(SimTime::from_secs(40));
            sim
        }
    };

    let mut rows: Vec<Row> = Vec::new();

    // ---- Grunt ----
    {
        let run = grunt_run(CampaignConfig::default());
        let att = run.attack_latency();
        let (n, mb) = attack_bytes(
            run.metrics(),
            run.campaign.attack_started,
            run.attack_window.1,
        );
        let (interval, resource, blocked) = detect(run.metrics());
        let wp = write_path_ms(
            run.metrics(),
            &scenario.topology,
            run.attack_window.0,
            run.attack_window.1,
        );
        rows.push(Row {
            label: "Grunt (multi-path alternating)".into(),
            attack_requests: n,
            attack_mb: mb,
            damage_avg_ms: att.avg_ms,
            damage_p95_ms: att.p95_ms,
            write_path_ms: wp,
            interval_alerts: interval,
            resource_alerts: resource,
            blocked_ips: blocked,
        });
    }

    // ---- Grunt with frozen parameters (no Kalman feedback) ----
    {
        let config = CampaignConfig {
            commander: grunt::CommanderConfig {
                adaptive: false,
                ..grunt::CommanderConfig::default()
            },
            ..CampaignConfig::default()
        };
        let run = grunt_run(config);
        let att = run.attack_latency();
        let (n, mb) = attack_bytes(
            run.metrics(),
            run.campaign.attack_started,
            run.attack_window.1,
        );
        let (interval, resource, blocked) = detect(run.metrics());
        let wp = write_path_ms(
            run.metrics(),
            &scenario.topology,
            run.attack_window.0,
            run.attack_window.1,
        );
        rows.push(Row {
            label: "Grunt (frozen parameters)".into(),
            attack_requests: n,
            attack_mb: mb,
            damage_avg_ms: att.avg_ms,
            damage_p95_ms: att.p95_ms,
            write_path_ms: wp,
            interval_alerts: interval,
            resource_alerts: resource,
            blocked_ips: blocked,
        });
    }

    // ---- Tail attack (single path) ----
    {
        let mut sim: Simulation = warmed_sim();
        let target = scenario
            .topology
            .request_type_by_name("compose-rich-post")
            .expect("known type");
        let a0 = sim.now();
        sim.add_agent(Box::new(TailAttack::new(TailAttackConfig::comparable(
            target,
            a0 + window,
        ))));
        sim.run_until(a0 + window);
        let att = LatencySummary::compute(
            sim.metrics(),
            Traffic::Legit,
            None,
            a0 + SimDuration::from_secs(20),
            a0 + window,
        );
        let (n, mb) = attack_bytes(sim.metrics(), a0, a0 + window);
        let (interval, resource, blocked) = detect(sim.metrics());
        let wp = write_path_ms(
            sim.metrics(),
            &scenario.topology,
            a0 + SimDuration::from_secs(20),
            a0 + window,
        );
        rows.push(Row {
            label: "Tail attack (single path)".into(),
            attack_requests: n,
            attack_mb: mb,
            damage_avg_ms: att.avg_ms,
            damage_p95_ms: att.p95_ms,
            write_path_ms: wp,
            interval_alerts: interval,
            resource_alerts: resource,
            blocked_ips: blocked,
        });
    }

    // ---- Brute force ----
    {
        let mut sim: Simulation = warmed_sim();
        let a0 = sim.now();
        let app = apps::social_network(7_000);
        // Sized against the *provisioned* capacity (7k users), not the
        // current load — brute force must overwhelm the deployment.
        let provisioned_rate = 7_000.0 / 7.0;
        sim.add_agent(Box::new(BruteForce::new(
            app.request_mix(),
            provisioned_rate * 3.0,
            300,
            a0 + window,
            3,
        )));
        sim.run_until(a0 + window);
        let att = LatencySummary::compute(
            sim.metrics(),
            Traffic::Legit,
            None,
            a0 + SimDuration::from_secs(20),
            a0 + window,
        );
        let (n, mb) = attack_bytes(sim.metrics(), a0, a0 + window);
        let (interval, resource, blocked) = detect(sim.metrics());
        let wp = write_path_ms(
            sim.metrics(),
            &scenario.topology,
            a0 + SimDuration::from_secs(20),
            a0 + window,
        );
        rows.push(Row {
            label: "Brute force (3x capacity flood)".into(),
            attack_requests: n,
            attack_mb: mb,
            damage_avg_ms: att.avg_ms,
            damage_p95_ms: att.p95_ms,
            write_path_ms: wp,
            interval_alerts: interval,
            resource_alerts: resource,
            blocked_ips: blocked,
        });
    }

    let mut report = Report::new(
        "ablation_baselines",
        "§VII ablation — Grunt vs Tail attack vs brute force",
    );
    report.paragraph(format!(
        "SocialNetwork at {users} users, {window} attack window each. Damage is the \
         legitimate users' latency; detection columns count attacker-attributed \
         IDS interval alerts, 1 s resource-saturation alerts, and IPs the \
         per-IP rate shield would block."
    ));
    report.table(
        &[
            "Attack",
            "Requests",
            "Volume (MB)",
            "Avg RT (ms)",
            "p95 RT (ms)",
            "Write-path RT (ms)",
            "Interval alerts",
            "Resource alerts",
            "Blocked IPs",
        ],
        rows.iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    r.attack_requests.to_string(),
                    fmt(r.attack_mb, 1),
                    fmt(r.damage_avg_ms, 0),
                    fmt(r.damage_p95_ms, 0),
                    fmt(r.write_path_ms, 0),
                    r.interval_alerts.to_string(),
                    r.resource_alerts.to_string(),
                    r.blocked_ips.to_string(),
                ]
            })
            .collect(),
    );
    report.paragraph(
        "Expected shape: Grunt achieves system-wide damage with zero identity-keyed \
         alerts; the single-path Tail attack damages only its own dependency group \
         (low system-wide averages); brute force maximises damage but lights up \
         every detector and needs a multiple of Grunt's traffic.",
    );
    report
}
