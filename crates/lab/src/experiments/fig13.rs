//! Fig 13: fine-grained (100 ms) zoom-in on one dependency group under
//! attack — request rates, alternating millibottlenecks, the persistent
//! queue at the shared upstream microservice, and the resulting response
//! times.

use callgraph::ServiceId;
use grunt::CampaignConfig;
use simnet::SimDuration;
use telemetry::{millibottleneck_stats, FineMonitor, LatencySeries, Traffic};

use crate::report::fmt;
use crate::{AttackRun, Fidelity, Report, RunOpts, Scenario};

/// Runs the experiment.
pub fn run(fidelity: Fidelity) -> Report {
    run_opts(RunOpts::new(fidelity))
}

/// Runs the experiment with full execution options.
pub fn run_opts(opts: RunOpts) -> Report {
    let fidelity = opts.fidelity;
    let baseline = fidelity.secs(60, 30);
    let attack = fidelity.secs(240, 120);
    let scenario = Scenario::social_network(
        "EC2-12K",
        microsim::PlatformProfile::ec2(),
        12_000,
        12_000,
        0xF13,
    );
    let run = AttackRun::execute_opts(
        &scenario,
        CampaignConfig::default(),
        baseline,
        attack,
        opts.snapshots,
    );
    let m = run.metrics();
    let topo = run.sim.topology();
    let fine = FineMonitor::new(m);

    let mut report = Report::new(
        "fig13_zoom",
        "Fig 13 — 100 ms zoom-in on the write dependency group under attack",
    );

    // Zoom window: 20 s of steady attack.
    let z0 = run.attack_window.0;
    let z1 = z0 + fidelity.secs(20, 10);
    let in_zoom = |t: simnet::SimTime| t >= z0 && t < z1;

    // (a) attacker vs normal request rate at the gateway.
    let window_s = m.window().as_secs_f64();
    let mut rate_rows = Vec::new();
    {
        // Bucket the access log by window.
        let w_us = m.window().as_micros();
        let lo = (z0.as_micros() / w_us) as usize;
        let hi = (z1.as_micros() / w_us) as usize;
        let mut attack = vec![0u32; hi - lo];
        let mut legit = vec![0u32; hi - lo];
        for e in m.access_log() {
            if in_zoom(e.at) {
                let idx = (e.at.as_micros() / w_us) as usize - lo;
                if e.origin.is_attack {
                    attack[idx] += 1;
                } else {
                    legit[idx] += 1;
                }
            }
        }
        for i in 0..attack.len() {
            rate_rows.push(vec![
                fmt((lo + i) as f64 * window_s, 1),
                fmt(f64::from(legit[i]) / window_s, 0),
                fmt(f64::from(attack[i]) / window_s, 0),
            ]);
        }
    }
    report.series(
        "(a) request rates at the gateway (100 ms windows):",
        &["t_s", "legit_rps", "attack_rps"],
        rate_rows,
    );

    // (b) alternating millibottlenecks among the write group's services.
    let watch = [
        "post-storage",
        "media-service",
        "url-shorten-service",
        "compose-post",
    ];
    let ids: Vec<ServiceId> = watch
        .iter()
        .map(|n| topo.service_by_name(n).expect("known service"))
        .collect();
    let mut util_rows = Vec::new();
    let series: Vec<Vec<(simnet::SimTime, f64)>> = ids
        .iter()
        .map(|s| {
            fine.utilization_series(*s)
                .into_iter()
                .filter(|(t, _)| in_zoom(*t))
                .collect()
        })
        .collect();
    for i in 0..series[0].len() {
        let mut row = vec![fmt(series[0][i].0.as_secs_f64(), 1)];
        for s in &series {
            row.push(fmt(s[i].1 * 100.0, 0));
        }
        util_rows.push(row);
    }
    report.series(
        "(b) per-service CPU utilisation, 100 ms windows (millibottlenecks \
         alternate among the group's bottleneck services):",
        &["t_s", watch[0], watch[1], watch[2], watch[3]],
        util_rows,
    );
    let mbs = telemetry::find_millibottlenecks(m, 0.95);
    let in_window: Vec<_> = mbs
        .iter()
        .filter(|mb| mb.start >= run.attack_window.0 && ids.contains(&mb.service))
        .copied()
        .collect();
    let stats = millibottleneck_stats(&in_window, None);
    report.paragraph(format!(
        "{} millibottlenecks on the group's services during the attack, mean \
         length {}, max {} — individually sub-second, only visible at 100 ms \
         granularity.",
        stats.count, stats.mean_length, stats.max_length,
    ));

    // (c) queue at the shared upstream microservice (compose-post).
    let hub = topo.service_by_name("compose-post").expect("hub");
    let queue_rows: Vec<Vec<String>> = fine
        .queue_series(hub)
        .into_iter()
        .filter(|(t, _)| in_zoom(*t))
        .map(|(t, q)| vec![fmt(t.as_secs_f64(), 1), q.to_string()])
        .collect();
    report.series(
        "(c) queued requests at the shared upstream microservice (compose-post):",
        &["t_s", "queued"],
        queue_rows,
    );

    // (d) legitimate response times.
    let rt = LatencySeries::compute(m, Traffic::Legit, SimDuration::from_millis(500), z1);
    let rt_rows: Vec<Vec<String>> = rt
        .points()
        .iter()
        .filter(|(t, _, _)| in_zoom(*t))
        .map(|(t, ms, n)| vec![fmt(t.as_secs_f64(), 1), fmt(*ms, 0), n.to_string()])
        .collect();
    report.series(
        "(d) mean legitimate response time (500 ms windows):",
        &["t_s", "avg_rt_ms", "n"],
        rt_rows,
    );

    let att = run.attack_latency();
    report.paragraph(format!(
        "Attack-window damage: avg RT {} ms, p95 {} ms.",
        fmt(att.avg_ms, 0),
        fmt(att.p95_ms, 0)
    ));
    report
}
