//! Resilience ablation: identical Grunt campaigns against an unprotected
//! deployment, a defensively configured one, and a retry-amplifying one.
//!
//! The resilience layer is a double-edged sword the paper's §VI mitigation
//! discussion hints at: deadlines plus bounded queues and circuit breakers
//! convert millibottleneck queueing into fast, bounded failures (goodput
//! under attack recovers), while aggressive platform retries *feed* the
//! attack — every timed-out request is resubmitted up to `max_attempts`
//! times, multiplying the very load spikes the Grunts manufacture. The
//! experiment pins both configurations with measured numbers.

use apps::SocialNetwork;
use grunt::{CampaignConfig, GruntCampaign};
use microsim::{
    BreakerPolicy, Outcome, RequestFilter, ResilienceConfig, ResiliencePolicy, RetryPolicy,
    SimConfig, Simulation,
};
use simnet::{SimDuration, SimTime, Welford};
use workload::ClosedLoopUsers;

use crate::report::fmt;
use crate::scenario::WARMUP;
use crate::{Fidelity, Report};

/// Probability an emulated user re-issues a failed request after a fresh
/// think time (identical across cells, so goodput differences come from
/// the platform policies alone).
const USER_RETRY: f64 = 0.5;

/// One resilience configuration under test.
struct Cell {
    label: &'static str,
    config: ResilienceConfig,
}

fn cells() -> Vec<Cell> {
    vec![
        Cell {
            label: "unprotected",
            config: ResilienceConfig::disabled(),
        },
        Cell {
            label: "mitigating (deadline+shed+breaker)",
            config: ResilienceConfig::uniform(ResiliencePolicy {
                deadline: Some(SimDuration::from_secs(2)),
                retry: RetryPolicy::disabled(),
                breaker: BreakerPolicy {
                    failure_threshold: 50,
                    probe_interval: SimDuration::from_secs(2),
                },
                queue_bound: Some(200),
            }),
        },
        Cell {
            label: "retry storm (deadline+4 attempts)",
            config: ResilienceConfig::uniform(ResiliencePolicy {
                deadline: Some(SimDuration::from_millis(800)),
                retry: RetryPolicy {
                    max_attempts: 4,
                    backoff_base: SimDuration::from_millis(50),
                    jitter: 0.1,
                },
                breaker: BreakerPolicy::disabled(),
                queue_bound: None,
            }),
        },
    ]
}

/// Everything one resilience cell is judged on.
#[derive(Debug, Clone, Copy)]
pub struct CellStats {
    /// Successful legit completions per second over the baseline window.
    pub base_goodput: f64,
    /// Successful legit completions per second over the attack window.
    pub attack_goodput: f64,
    /// Mean RT of successful legit requests in the attack window (ms).
    pub ok_avg_ms: f64,
    /// Platform resilience counters over the whole run.
    pub counters: microsim::ResilienceCounters,
    /// Total attempts divided by original submissions.
    pub amplification: f64,
    /// Failed responses users re-issued.
    pub user_retries: u64,
    /// Failed responses users gave up on.
    pub abandoned: u64,
    /// Pending kernel wheel events at the end of the run.
    pub pending_events: usize,
}

/// Successful (`Outcome::Ok`) legit completions per second in `[from, to)`.
fn goodput(sim: &Simulation, from: SimTime, to: SimTime) -> f64 {
    let filter = RequestFilter {
        is_attack: Some(false),
        request_type: None,
        outcome: Some(Outcome::Ok),
    };
    let n = sim.metrics().request_log().count_matching(from, to, filter);
    n as f64 / to.saturating_since(from).as_secs_f64().max(1e-9)
}

/// Runs one baseline + Grunt campaign under `config` and measures it.
pub fn run_cell(
    users: usize,
    config: ResilienceConfig,
    baseline: SimDuration,
    attack: SimDuration,
    seed: u64,
) -> CellStats {
    let app = SocialNetwork::new(users);
    let cfg = SimConfig::default().seed(seed).resilience(config);
    let mut sim = Simulation::new(app.topology().clone(), cfg);
    let users_id = sim.add_agent(Box::new(
        ClosedLoopUsers::new(
            users,
            app.browsing_model(),
            simnet::derive_seed(seed, "scenario/users"),
        )
        .with_retry(USER_RETRY),
    ));
    sim.run_until(SimTime::ZERO + WARMUP);
    let base_from = sim.now();
    sim.run_until(base_from + baseline);
    let base_to = sim.now();
    let campaign = GruntCampaign::run(&mut sim, CampaignConfig::default(), attack);
    let ramp = SimDuration::from_secs(20).min(attack / 4);
    let (att_from, att_to) = (
        campaign.attack_started + ramp,
        campaign.attack_started + attack,
    );

    let ok_filter = RequestFilter {
        is_attack: Some(false),
        request_type: None,
        outcome: Some(Outcome::Ok),
    };
    let mut ok_lat = Welford::new();
    sim.metrics()
        .request_log()
        .for_each_matching(att_from, att_to, ok_filter, |rec| {
            ok_lat.push(rec.latency().as_millis_f64());
        });
    let counters = *sim.metrics().resilience();
    // Every resolved attempt — success or failure — leaves one request-log
    // record, so original submissions = records minus retry attempts.
    let resolved = sim.metrics().request_log().len() as u64;
    let first_attempts = resolved.saturating_sub(counters.retries);
    let pop: &ClosedLoopUsers = sim.agent_as(users_id).expect("population registered");
    CellStats {
        base_goodput: goodput(&sim, base_from, base_to),
        attack_goodput: goodput(&sim, att_from, att_to),
        ok_avg_ms: ok_lat.mean(),
        counters,
        amplification: counters.retry_amplification(first_attempts),
        user_retries: pop.user_retries(),
        abandoned: pop.abandoned(),
        pending_events: sim.pending_events(),
    }
}

/// Runs the experiment.
pub fn run(fidelity: Fidelity) -> Report {
    let users = fidelity.pick(5_000, 2_000);
    let baseline = fidelity.secs(60, 30);
    let attack = fidelity.secs(300, 90);

    let mut report = Report::new(
        "resilience_policies",
        "Resilience layer — grunt attacks vs. deadlines, breakers, shedding and retries",
    );
    report.paragraph(format!(
        "Identical Grunt campaigns ({attack} attack window, {users} closed-loop users, \
         {USER_RETRY} user retry probability) against three resilience configurations of \
         the same SocialNetwork deployment: no policies, a defensive set (2 s deadlines, \
         200-deep bounded queues, 50-failure circuit breakers, no platform retries), and \
         an aggressive one (800 ms deadlines with up to 4 attempts at 50 ms exponential \
         backoff, 10% jitter). Goodput counts only successful legitimate completions."
    ));

    let mut rows = Vec::new();
    for (i, cell) in cells().into_iter().enumerate() {
        let s = run_cell(users, cell.config, baseline, attack, 0x5E51 + i as u64);
        rows.push(vec![
            cell.label.to_string(),
            fmt(s.base_goodput, 0),
            fmt(s.attack_goodput, 0),
            fmt(s.ok_avg_ms, 0),
            s.counters.timed_out.to_string(),
            s.counters.shed.to_string(),
            s.counters.rejected.to_string(),
            s.counters.breaker_opens.to_string(),
            fmt(s.amplification, 2),
            s.user_retries.to_string(),
            s.abandoned.to_string(),
        ]);
    }
    report.table(
        &[
            "Config",
            "Base goodput (req/s)",
            "Attack goodput (req/s)",
            "Ok avg RT (ms)",
            "Timed out",
            "Shed",
            "Rejected",
            "Breaker opens",
            "Retry amp.",
            "User retries",
            "Abandoned",
        ],
        rows,
    );
    report.paragraph(
        "Expected shape: the unprotected deployment rides out the attack with \
         inflated latencies but no failures (amplification 1.0). The mitigating \
         configuration fails attack-inflated requests fast — timeouts, sheds and \
         breaker rejections replace multi-second queueing, and successful-request \
         RT stays near baseline. The retry-storm configuration also bounds \
         latency, but every timed-out request (legitimate or attack) is \
         resubmitted up to 4 times: the amplification factor rises above 1 and \
         the extra attempts feed the very bottleneck the Grunts target — the \
         classic retry-storm failure mode resilience tuning must avoid.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite guard: a 100k-user population against a *shedding*
    /// topology must keep pending wheel events bounded — deadline timers
    /// are per-class (one `DeadlineCheck` event per distinct duration, not
    /// per in-flight request) and expired entries are compacted, never
    /// leaked.
    #[test]
    fn hundred_k_users_shedding_keeps_pending_events_bounded() {
        let users = 100_000;
        let app = SocialNetwork::new(users);
        let config = ResilienceConfig::uniform(ResiliencePolicy {
            deadline: Some(SimDuration::from_millis(500)),
            retry: RetryPolicy::disabled(),
            breaker: BreakerPolicy::disabled(),
            queue_bound: Some(50),
        });
        let cfg = SimConfig::default()
            .seed(0xCE11)
            .access_log(false)
            .resilience(config);
        let mut sim = Simulation::new(app.topology().clone(), cfg);
        sim.add_agent(Box::new(
            ClosedLoopUsers::new(
                users,
                app.browsing_model(),
                simnet::derive_seed(0xCE11, "megacell/users"),
            )
            .with_retry(1.0),
        ));
        // 4 sim-seconds: past the 3 s think floor, so the first request
        // wave has hit the bounded queues and its deadline entries have
        // been armed, resolved and compacted.
        sim.run_until(SimTime::from_secs(4));
        let requests = sim.metrics().request_log().len();
        assert!(
            requests > 1_000,
            "population must be actively requesting, got {requests}"
        );
        assert!(
            sim.pending_events() < 10_000,
            "pending wheel events must stay under 10k with deadlines armed, got {}",
            sim.pending_events()
        );
        // The off-wheel deadline FIFOs track only live in-flight attempts.
        assert!(
            sim.pending_deadlines() <= users,
            "deadline entries must not leak past the in-flight population, got {}",
            sim.pending_deadlines()
        );
    }

    /// The three configurations behave as the report claims: disabled
    /// policies never fail anything, the defensive set sheds or times out
    /// under attack without platform retries, and the retry-storm set
    /// amplifies attempts.
    #[test]
    fn cells_produce_their_signature_outcomes() {
        let baseline = SimDuration::from_secs(5);
        let attack = SimDuration::from_secs(20);
        let all = cells();
        let unprotected = run_cell(600, all[0].config.clone(), baseline, attack, 0x5E51);
        assert_eq!(unprotected.counters.timed_out, 0);
        assert_eq!(unprotected.counters.shed, 0);
        assert_eq!(unprotected.amplification, 1.0);
        assert_eq!(unprotected.user_retries + unprotected.abandoned, 0);

        let storm = run_cell(600, all[2].config.clone(), baseline, attack, 0x5E51 + 2);
        assert!(
            storm.counters.timed_out > 0,
            "800 ms deadlines under attack must expire some requests"
        );
        assert!(
            storm.amplification > 1.0,
            "platform retries must amplify attempts, got {}",
            storm.amplification
        );
    }
}
