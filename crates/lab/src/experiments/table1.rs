//! Tables I & III: Grunt damage across cloud settings.
//!
//! Six settings — two workload levels on each of EC2, Azure and CloudLab —
//! each running a full profile + attack campaign. Table I reports the
//! user-perceived damage (avg / p95 RT, gateway traffic, bottleneck CPU);
//! Table III adds the attacker-side columns (bots, P_MB).

use grunt::CampaignConfig;
use microsim::PlatformProfile;

use crate::report::fmt;
use crate::{sweep, AttackRun, Fidelity, Report, RunOpts, Scenario, WarmProfiled};

/// One sweep cell: (label, platform, users, provisioned-for).
pub type Setting = (String, PlatformProfile, usize, usize);

/// The two table rows a cell produces.
#[derive(Debug)]
pub struct CellRows {
    /// Table I row (user-perceived damage).
    pub row1: Vec<String>,
    /// Table III row (attacker-side parameters).
    pub row3: Vec<String>,
}

/// The six paper settings: (label, platform, users, provisioned-for).
/// Each cloud hosts one deployment provisioned for its heavier workload.
pub fn settings() -> Vec<Setting> {
    vec![
        ("EC2-7K".into(), PlatformProfile::ec2(), 7_000, 12_000),
        ("EC2-12K".into(), PlatformProfile::ec2(), 12_000, 12_000),
        ("Azure-4K".into(), PlatformProfile::azure(), 4_000, 9_000),
        ("Azure-9K".into(), PlatformProfile::azure(), 9_000, 9_000),
        (
            "CloudLab-5K".into(),
            PlatformProfile::cloudlab(),
            5_000,
            11_000,
        ),
        (
            "CloudLab-11K".into(),
            PlatformProfile::cloudlab(),
            11_000,
            11_000,
        ),
    ]
}

/// Runs one cell: full profile + attack campaign on a fresh, per-cell
/// seeded simulation. Cells are independent, so the sweep executor can run
/// them on separate threads without changing any cell's result.
pub fn run_cell(
    setting: &Setting,
    baseline: simnet::SimDuration,
    attack: simnet::SimDuration,
) -> CellRows {
    run_cell_opts(setting, baseline, attack, true)
}

/// [`run_cell`] with an explicit warm-snapshot switch (both paths produce
/// byte-identical rows; see `tests/determinism.rs`).
pub fn run_cell_opts(
    setting: &Setting,
    baseline: simnet::SimDuration,
    attack: simnet::SimDuration,
    snapshots: bool,
) -> CellRows {
    let (label, platform, users, provision) = setting;
    let scenario = Scenario::social_network(
        label,
        platform.clone(),
        *users,
        *provision,
        0x7AB1 ^ *users as u64,
    );
    let run = AttackRun::execute_opts(
        &scenario,
        CampaignConfig::default(),
        baseline,
        attack,
        snapshots,
    );
    rows_for(label, &run)
}

fn rows_for(label: &str, run: &AttackRun) -> CellRows {
    let base = run.baseline_latency();
    let att = run.attack_latency();
    let net_b = run.network_mbps(run.baseline_window.0, run.baseline_window.1);
    let net_a = run.network_mbps(run.attack_window.0, run.attack_window.1);
    let cpu_b = run.bottleneck_cpu(run.baseline_window.0, run.baseline_window.1);
    let cpu_a = run.bottleneck_cpu(run.attack_window.0, run.attack_window.1);
    CellRows {
        row1: vec![
            label.to_string(),
            fmt(base.avg_ms, 0),
            fmt(att.avg_ms, 0),
            fmt(base.p95_ms, 0),
            fmt(att.p95_ms, 0),
            fmt(net_b, 1),
            fmt(net_a, 1),
            fmt(cpu_b * 100.0, 0),
            fmt(cpu_a * 100.0, 0),
        ],
        row3: vec![
            label.to_string(),
            run.campaign.bots_used.to_string(),
            fmt(run.mean_pmb_ms(), 0),
            fmt(base.avg_ms, 0),
            fmt(att.avg_ms, 0),
            fmt(att.avg_ms / base.avg_ms.max(1.0), 1),
        ],
    }
}

/// Runs the experiment serially.
pub fn run(fidelity: Fidelity) -> Report {
    run_jobs(fidelity, 1)
}

/// Runs the experiment with up to `jobs` cells in parallel.
pub fn run_jobs(fidelity: Fidelity, jobs: usize) -> Report {
    report_for(&settings(), fidelity, jobs)
}

/// Runs the experiment with full execution options.
pub fn run_opts(opts: RunOpts) -> Report {
    report_for_opts(&settings(), opts)
}

/// Builds the Tables I & III report for an arbitrary settings slice —
/// the determinism test runs a two-cell slice both serially and in
/// parallel and compares the rendered reports byte for byte.
pub fn report_for(settings: &[Setting], fidelity: Fidelity, jobs: usize) -> Report {
    report_for_opts(settings, RunOpts::new(fidelity).jobs(jobs))
}

/// [`report_for`] with full execution options.
pub fn report_for_opts(settings: &[Setting], opts: RunOpts) -> Report {
    let fidelity = opts.fidelity;
    let baseline = fidelity.secs(120, 40);
    let attack = fidelity.secs(1_200, 180);

    let mut report = Report::new(
        "table1_damage",
        "Tables I & III — Grunt damage across cloud settings",
    );
    report.paragraph(format!(
        "SocialNetwork under {attack} of attack per setting; damage goal avg RT >= 1 s, \
         stealth goal P_MB <= 500 ms. `Base.` columns measure the pre-attack window, \
         `Att.` the attack window (20 s ramp excluded)."
    ));

    let cells = sweep::map_cells(opts.jobs, settings, |_, s| {
        run_cell_opts(s, baseline, attack, opts.snapshots)
    });
    let mut rows1 = Vec::with_capacity(cells.len());
    let mut rows3 = Vec::with_capacity(cells.len());
    for cell in cells {
        rows1.push(cell.row1);
        rows3.push(cell.row3);
    }

    report.heading("Table I — long response time damage");
    report.table(
        &[
            "Setting",
            "Avg RT base (ms)",
            "Avg RT att (ms)",
            "p95 base (ms)",
            "p95 att (ms)",
            "Net base (MB/s)",
            "Net att (MB/s)",
            "CPU base (%)",
            "CPU att (%)",
        ],
        rows1,
    );
    report.heading("Table III — attack parameters and outcome");
    report.table(
        &[
            "Setting",
            "Bots",
            "P_MB (ms)",
            "Avg RT base (ms)",
            "Avg RT att (ms)",
            "Damage factor",
        ],
        rows3,
    );
    report
}

/// Damage-goal variants of the attack-parameter sweep slice.
pub const PARAM_SWEEP_GOALS: [f64; 4] = [600.0, 800.0, 1_000.0, 1_200.0];

/// The attack-parameter sweep the warm-fork subsystem exists for: one
/// scenario (EC2-7K), one profiling run, four commander variants that
/// differ only in the damage goal.
///
/// All four cells share an identical warm-up + baseline + profiling
/// prefix. With `opts.snapshots` that prefix is simulated once and frozen
/// as a [`WarmProfiled`]; each cell (on whichever worker thread claims it)
/// forks the shared snapshot and simulates only its attack window. Without
/// snapshots every cell re-simulates the prefix cold. Both paths emit
/// byte-identical reports; `bench_kernel` times them and records the
/// speedup in BENCH_kernel.json.
pub fn param_sweep_report(opts: RunOpts) -> Report {
    let fidelity = opts.fidelity;
    let baseline = fidelity.secs(120, 40);
    let attack = fidelity.secs(1_200, 180);
    let (label, platform, users, provision) = &settings()[0];
    let scenario = Scenario::social_network(
        label,
        platform.clone(),
        *users,
        *provision,
        0x7AB1 ^ *users as u64,
    );
    let config = CampaignConfig::default();

    let mut report = Report::new(
        "table1_param_sweep",
        "Table I slice — damage-goal sweep on EC2-7K",
    );
    report.paragraph(format!(
        "One profiled EC2-7K deployment attacked with {} damage-goal variants \
         ({} attack window each). Cells share the warm-up + baseline + profiling \
         prefix, which warm-snapshot forking simulates exactly once.",
        PARAM_SWEEP_GOALS.len(),
        attack
    ));

    let row = |goal: f64, run: &AttackRun| {
        let base = run.baseline_latency();
        let att = run.attack_latency();
        vec![
            fmt(goal, 0),
            run.campaign.bots_used.to_string(),
            fmt(run.mean_pmb_ms(), 0),
            fmt(base.avg_ms, 0),
            fmt(att.avg_ms, 0),
            fmt(att.avg_ms / base.avg_ms.max(1.0), 1),
        ]
    };
    let rows: Vec<Vec<String>> = if opts.snapshots {
        let warm = WarmProfiled::new(&scenario, config.profiler.clone(), baseline);
        sweep::map_cells(opts.jobs, &PARAM_SWEEP_GOALS, |_, goal| {
            let commander = grunt::CommanderConfig {
                damage_goal_ms: *goal,
                ..config.commander.clone()
            };
            row(*goal, &AttackRun::forked(&warm, commander, attack))
        })
    } else {
        sweep::map_cells(opts.jobs, &PARAM_SWEEP_GOALS, |_, goal| {
            let cell_config = CampaignConfig {
                commander: grunt::CommanderConfig {
                    damage_goal_ms: *goal,
                    ..config.commander.clone()
                },
                ..config.clone()
            };
            row(
                *goal,
                &AttackRun::execute_opts(&scenario, cell_config, baseline, attack, false),
            )
        })
    };

    report.table(
        &[
            "Damage goal (ms)",
            "Bots",
            "P_MB (ms)",
            "Avg RT base (ms)",
            "Avg RT att (ms)",
            "Damage factor",
        ],
        rows,
    );
    report
}
