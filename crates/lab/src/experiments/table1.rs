//! Tables I & III: Grunt damage across cloud settings.
//!
//! Six settings — two workload levels on each of EC2, Azure and CloudLab —
//! each running a full profile + attack campaign. Table I reports the
//! user-perceived damage (avg / p95 RT, gateway traffic, bottleneck CPU);
//! Table III adds the attacker-side columns (bots, P_MB).

use grunt::CampaignConfig;
use microsim::PlatformProfile;

use crate::report::fmt;
use crate::{sweep, AttackRun, Fidelity, Report, Scenario};

/// One sweep cell: (label, platform, users, provisioned-for).
pub type Setting = (String, PlatformProfile, usize, usize);

/// The two table rows a cell produces.
pub struct CellRows {
    /// Table I row (user-perceived damage).
    pub row1: Vec<String>,
    /// Table III row (attacker-side parameters).
    pub row3: Vec<String>,
}

/// The six paper settings: (label, platform, users, provisioned-for).
/// Each cloud hosts one deployment provisioned for its heavier workload.
pub fn settings() -> Vec<Setting> {
    vec![
        ("EC2-7K".into(), PlatformProfile::ec2(), 7_000, 12_000),
        ("EC2-12K".into(), PlatformProfile::ec2(), 12_000, 12_000),
        ("Azure-4K".into(), PlatformProfile::azure(), 4_000, 9_000),
        ("Azure-9K".into(), PlatformProfile::azure(), 9_000, 9_000),
        (
            "CloudLab-5K".into(),
            PlatformProfile::cloudlab(),
            5_000,
            11_000,
        ),
        (
            "CloudLab-11K".into(),
            PlatformProfile::cloudlab(),
            11_000,
            11_000,
        ),
    ]
}

/// Runs one cell: full profile + attack campaign on a fresh, per-cell
/// seeded simulation. Cells are independent, so the sweep executor can run
/// them on separate threads without changing any cell's result.
pub fn run_cell(
    setting: &Setting,
    baseline: simnet::SimDuration,
    attack: simnet::SimDuration,
) -> CellRows {
    let (label, platform, users, provision) = setting;
    let scenario = Scenario::social_network(
        label,
        platform.clone(),
        *users,
        *provision,
        0x7AB1 ^ *users as u64,
    );
    let run = AttackRun::execute(&scenario, CampaignConfig::default(), baseline, attack);
    let base = run.baseline_latency();
    let att = run.attack_latency();
    let net_b = run.network_mbps(run.baseline_window.0, run.baseline_window.1);
    let net_a = run.network_mbps(run.attack_window.0, run.attack_window.1);
    let cpu_b = run.bottleneck_cpu(run.baseline_window.0, run.baseline_window.1);
    let cpu_a = run.bottleneck_cpu(run.attack_window.0, run.attack_window.1);
    CellRows {
        row1: vec![
            label.clone(),
            fmt(base.avg_ms, 0),
            fmt(att.avg_ms, 0),
            fmt(base.p95_ms, 0),
            fmt(att.p95_ms, 0),
            fmt(net_b, 1),
            fmt(net_a, 1),
            fmt(cpu_b * 100.0, 0),
            fmt(cpu_a * 100.0, 0),
        ],
        row3: vec![
            label.clone(),
            run.campaign.bots_used.to_string(),
            fmt(run.mean_pmb_ms(), 0),
            fmt(base.avg_ms, 0),
            fmt(att.avg_ms, 0),
            fmt(att.avg_ms / base.avg_ms.max(1.0), 1),
        ],
    }
}

/// Runs the experiment serially.
pub fn run(fidelity: Fidelity) -> Report {
    run_jobs(fidelity, 1)
}

/// Runs the experiment with up to `jobs` cells in parallel.
pub fn run_jobs(fidelity: Fidelity, jobs: usize) -> Report {
    report_for(&settings(), fidelity, jobs)
}

/// Builds the Tables I & III report for an arbitrary settings slice —
/// the determinism test runs a two-cell slice both serially and in
/// parallel and compares the rendered reports byte for byte.
pub fn report_for(settings: &[Setting], fidelity: Fidelity, jobs: usize) -> Report {
    let baseline = fidelity.secs(120, 40);
    let attack = fidelity.secs(1_200, 180);

    let mut report = Report::new(
        "table1_damage",
        "Tables I & III — Grunt damage across cloud settings",
    );
    report.paragraph(format!(
        "SocialNetwork under {} of attack per setting; damage goal avg RT >= 1 s, \
         stealth goal P_MB <= 500 ms. `Base.` columns measure the pre-attack window, \
         `Att.` the attack window (20 s ramp excluded).",
        attack
    ));

    let cells = sweep::map_cells(jobs, settings, |_, s| run_cell(s, baseline, attack));
    let mut rows1 = Vec::with_capacity(cells.len());
    let mut rows3 = Vec::with_capacity(cells.len());
    for cell in cells {
        rows1.push(cell.row1);
        rows3.push(cell.row3);
    }

    report.heading("Table I — long response time damage");
    report.table(
        &[
            "Setting",
            "Avg RT base (ms)",
            "Avg RT att (ms)",
            "p95 base (ms)",
            "p95 att (ms)",
            "Net base (MB/s)",
            "Net att (MB/s)",
            "CPU base (%)",
            "CPU att (%)",
        ],
        rows1,
    );
    report.heading("Table III — attack parameters and outcome");
    report.table(
        &[
            "Setting",
            "Bots",
            "P_MB (ms)",
            "Avg RT base (ms)",
            "Avg RT att (ms)",
            "Damage factor",
        ],
        rows3,
    );
    report
}
