//! §VI mitigation: reduce sharing of hotspot microservices.
//!
//! The paper's second defense direction: if critical paths do not overlap,
//! blocking effects cannot propagate. We attack the standard SocialNetwork
//! and a *decoupled* variant (every shared non-frontend microservice split
//! into per-request-type instances) with identical Grunt campaigns and
//! compare damage, attacker effort and deployment cost.

use apps::SocialNetwork;
use grunt::CampaignConfig;
use telemetry::GroundTruth;

use crate::report::fmt;
use crate::{AttackRun, Fidelity, Report, RunOpts, Scenario};

/// Runs the experiment.
pub fn run(fidelity: Fidelity) -> Report {
    run_opts(RunOpts::new(fidelity))
}

/// Runs the experiment with full execution options.
pub fn run_opts(opts: RunOpts) -> Report {
    let fidelity = opts.fidelity;
    let users = fidelity.pick(7_000, 3_000);
    let baseline = fidelity.secs(60, 30);
    let attack = fidelity.secs(600, 120);

    let mut report = Report::new(
        "mitigation_sharing",
        "§VI mitigation — reducing hotspot sharing removes the attack surface",
    );
    report.paragraph(format!(
        "Identical Grunt campaigns ({attack} attack window, {users} users) against the \
         standard SocialNetwork and a decoupled variant where every shared \
         non-frontend microservice is split into per-request-type instances."
    ));

    let mut rows = Vec::new();
    for (label, app) in [
        ("shared (standard)", SocialNetwork::new(users)),
        ("decoupled (mitigated)", SocialNetwork::decoupled(users)),
    ] {
        let scenario = Scenario {
            label: label.to_string(),
            topology: app.topology().clone(),
            browsing: app.browsing_model(),
            users,
            platform: microsim::PlatformProfile::ec2(),
            seed: 0x716A,
        };
        let run = AttackRun::execute_opts(
            &scenario,
            CampaignConfig::default(),
            baseline,
            attack,
            opts.snapshots,
        );
        let base = run.baseline_latency();
        let att = run.attack_latency();
        let gt = GroundTruth::from_topology(app.topology());
        rows.push(vec![
            label.to_string(),
            app.topology().num_services().to_string(),
            gt.groups().multi_member_groups().count().to_string(),
            fmt(base.avg_ms, 0),
            fmt(att.avg_ms, 0),
            fmt(att.avg_ms / base.avg_ms.max(1.0), 1),
            run.campaign.report.bursts.len().to_string(),
            run.campaign.report.requests_sent.to_string(),
        ]);
    }
    report.table(
        &[
            "Deployment",
            "Services",
            "Attackable groups",
            "Base avg RT (ms)",
            "Attack avg RT (ms)",
            "Damage factor",
            "Bursts",
            "Attack requests",
        ],
        rows,
    );
    report.paragraph(
        "Expected shape: the decoupled deployment exposes zero multi-member \
         dependency groups, so the Commander has nothing to alternate over and \
         the damage factor collapses — the mitigation works, at the cost of \
         roughly twice the number of deployed services and the loss of \
         resource pooling across paths (the trade-off Section VI discusses).",
    );
    report
}
