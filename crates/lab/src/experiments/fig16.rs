//! Fig 16: profiler accuracy (precision / recall / F-score) across
//! baseline workload levels for the three µBench applications.

use apps::{UBench, UBenchConfig};
use grunt::{Profiler, ProfilerConfig};
use simnet::{SimDuration, SimTime};
use telemetry::{GroundTruth, ProfilerScore};
use workload::ClosedLoopUsers;

use crate::report::fmt;
use crate::{Fidelity, Report};

/// Profiles one app at one workload and scores against ground truth.
fn profile_at(app: &UBench, users: usize, seed: u64) -> ProfilerScore {
    let mut sim = microsim::Simulation::new(
        app.topology().clone(),
        microsim::SimConfig::default().seed(seed).access_log(false),
    );
    if users > 0 {
        sim.add_agent(Box::new(ClosedLoopUsers::new(
            users,
            app.browsing_model(),
            simnet::derive_seed(seed, "fig16/users"),
        )));
    }
    sim.run_until(SimTime::from_secs(10));
    let id = sim.add_agent(Box::new(Profiler::new(ProfilerConfig {
        seed,
        ..ProfilerConfig::default()
    })));
    loop {
        let next = sim.now() + SimDuration::from_secs(30);
        sim.run_until(next);
        if sim.agent_as::<Profiler>(id).expect("registered").is_done() {
            break;
        }
        assert!(sim.now() < SimTime::from_secs(4 * 3_600), "profiler stuck");
    }
    let outcome = sim
        .agent_as::<Profiler>(id)
        .expect("registered")
        .outcome()
        .expect("done")
        .clone();
    let gt = GroundTruth::from_topology(app.topology());
    let members: Vec<_> = outcome.catalog.iter().map(|(id, _)| *id).collect();
    ProfilerScore::compute(&members, &gt, &outcome.groups)
}

/// Runs the experiment.
pub fn run(fidelity: Fidelity) -> Report {
    let mut report = Report::new(
        "fig16_accuracy",
        "Fig 16 — profiler accuracy vs baseline workload (three µBench apps)",
    );
    report.paragraph(
        "Each application is provisioned for its nominal population; the baseline \
         workload is then swept from far below to well above nominal. Expected \
         shape: recall dips at low load (stealth-capped bursts cannot fill \
         queues without background traffic helping), precision dips at high \
         load (background congestion masquerades as interference); F > 0.9 in \
         the moderate middle.",
    );

    // (nominal users, app factory)
    let apps: Vec<(&str, UBench, usize)> = {
        let mut v = Vec::new();
        let configs = fidelity.pick(
            vec![
                ("App.1 (62 svcs)", UBenchConfig::app1(4_000), 4_000),
                ("App.2 (118 svcs)", UBenchConfig::app2(8_000), 8_000),
                ("App.3 (196 svcs)", UBenchConfig::app3(16_000), 16_000),
            ],
            vec![("App.1 (62 svcs)", UBenchConfig::app1(4_000), 4_000)],
        );
        for (label, cfg, nominal) in configs {
            v.push((label, UBench::generate(cfg), nominal));
        }
        v
    };

    let fractions: Vec<f64> = fidelity.pick(
        vec![0.125, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.8],
        vec![0.25, 1.0, 1.8],
    );

    for (label, app, nominal) in &apps {
        let rows: Vec<Vec<String>> = fractions
            .iter()
            .map(|f| {
                let users = ((*nominal as f64) * f) as usize;
                let score = profile_at(app, users, 0xF16 ^ users as u64);
                vec![
                    users.to_string(),
                    fmt(score.precision(), 2),
                    fmt(score.recall(), 2),
                    fmt(score.f_score(), 2),
                ]
            })
            .collect();
        report.heading(*label);
        report.table(&["baseline users", "precision", "recall", "F-score"], rows);
    }
    report
}
