//! Fig 11: pairwise dependency profiling curves.
//!
//! Reproduces the two illustrative probes of the paper: a *parallel* pair
//! (interference appears only above a volume threshold, in both orders)
//! and a *sequential* pair (one order interferes persistently, the other
//! needs volume). We sweep profiling volumes on two SocialNetwork pairs
//! and report the victim-probe response times per volume and order.

use callgraph::RequestTypeId;
use microsim::{Agent, Origin, Response, SimConfig, SimCtx};
use simnet::{SegSamples, SimDuration, SimTime};

use crate::report::fmt;
use crate::{Fidelity, Report, Scenario};

/// A one-shot probing agent: sends a paced burst of `attacker` requests
/// and `probes` delayed probes of `victim`, recording the probe RTs.
#[derive(Debug, Clone)]
struct PairProbe {
    attacker: RequestTypeId,
    victim: RequestTypeId,
    volume: u32,
    burst_length: SimDuration,
    probes: u32,
    chunk_remaining: u32,
    probe_rts: SegSamples,
    bot: u32,
}

const WAKE_CHUNK: u64 = 1;
const WAKE_PROBE: u64 = 2;
const CHUNK_GAP: SimDuration = SimDuration::from_millis(20);

impl PairProbe {
    fn new(attacker: RequestTypeId, victim: RequestTypeId, volume: u32) -> Self {
        PairProbe {
            attacker,
            victim,
            volume,
            burst_length: SimDuration::from_millis(400),
            probes: 6,
            chunk_remaining: 0,
            probe_rts: SegSamples::new(),
            bot: 0,
        }
    }

    fn origin(&mut self) -> Origin {
        self.bot += 1;
        Origin::attack(0xCC00_0000 + self.bot, 4_000_000 + u64::from(self.bot))
    }

    fn submit_chunk(&mut self, ctx: &mut SimCtx<'_>) {
        let chunks = (self.burst_length.as_micros() / CHUNK_GAP.as_micros()).max(1) as u32;
        let per_chunk = self.volume.div_ceil(chunks);
        let n = self.chunk_remaining.min(per_chunk);
        for _ in 0..n {
            let o = self.origin();
            ctx.submit(self.attacker, o);
        }
        self.chunk_remaining -= n;
        if self.chunk_remaining > 0 {
            ctx.schedule_wake(CHUNK_GAP, WAKE_CHUNK);
        }
    }
}

impl Agent for PairProbe {
    fn start(&mut self, ctx: &mut SimCtx<'_>) {
        self.chunk_remaining = self.volume;
        self.submit_chunk(ctx);
        for p in 0..self.probes {
            ctx.schedule_wake(SimDuration::from_millis(120) * u64::from(p + 1), WAKE_PROBE);
        }
    }

    fn on_wake(&mut self, ctx: &mut SimCtx<'_>, token: u64) {
        match token {
            WAKE_CHUNK => self.submit_chunk(ctx),
            WAKE_PROBE => {
                let o = self.origin();
                ctx.submit(self.victim, o);
            }
            _ => {}
        }
    }

    fn on_response(&mut self, _ctx: &mut SimCtx<'_>, response: &Response) {
        if response.request_type == self.victim {
            self.probe_rts.push(response.latency_ms());
        }
    }

    fn snapshot(&self) -> Option<microsim::AgentState> {
        Some(microsim::AgentState::of(self))
    }
}

/// Measures the median victim-probe RT for one `(attacker, victim,
/// volume)` combination on a freshly warmed system.
fn probe_once(
    scenario: &Scenario,
    attacker: RequestTypeId,
    victim: RequestTypeId,
    volume: u32,
) -> f64 {
    let mut sim = scenario.build_with(SimConfig::default().access_log(false));
    sim.run_until(SimTime::from_secs(10));
    let id = sim.add_agent(Box::new(PairProbe::new(attacker, victim, volume)));
    sim.run_until(SimTime::from_secs(18));
    let probe: &mut PairProbe = sim.agent_as_mut(id).expect("registered");
    if probe.probe_rts.is_empty() {
        f64::NAN
    } else {
        probe.probe_rts.percentile(0.5)
    }
}

/// Runs the experiment.
pub fn run(fidelity: Fidelity) -> Report {
    let users = fidelity.pick(7_000, 3_000);
    let scenario =
        Scenario::social_network("EC2", microsim::PlatformProfile::ec2(), users, 7_000, 0xF11);
    let topo = &scenario.topology;
    let by_name = |n: &str| topo.request_type_by_name(n).expect("known type");

    // Parallel pair: compose-post (a) vs upload-media (b), different
    // bottlenecks behind the shared compose hub.
    let a = by_name("compose-post");
    let b = by_name("upload-media");
    // Sequential pair: browse-hot-posts (d, bottleneck = shared
    // home-timeline) vs read-home-timeline (c).
    let d = by_name("browse-hot-posts");
    let c = by_name("read-home-timeline");

    let volumes: Vec<u32> = fidelity.pick(vec![30, 60, 120, 240, 400], vec![60, 160, 320]);

    let mut report = Report::new(
        "fig11_profiling",
        "Fig 11 — pairwise dependency profiling curves",
    );
    report.paragraph(format!(
        "Median victim-probe response time (ms) while bursting the attacker path at \
         each volume; system at {users} users. Interference = probe RT well above its \
         ~40-70 ms baseline."
    ));

    for (title, x, y) in [
        (
            "parallel pair: burst compose-post, probe upload-media",
            a,
            b,
        ),
        (
            "parallel pair reversed: burst upload-media, probe compose-post",
            b,
            a,
        ),
        (
            "sequential pair: burst browse-hot-posts, probe read-home-timeline",
            d,
            c,
        ),
        (
            "sequential pair reversed: burst read-home-timeline, probe browse-hot-posts",
            c,
            d,
        ),
    ] {
        let rows: Vec<Vec<String>> = volumes
            .iter()
            .map(|&v| {
                let rt = probe_once(&scenario, x, y, v);
                vec![v.to_string(), fmt(rt, 1)]
            })
            .collect();
        report.heading(title);
        report.table(&["burst volume (req)", "median probe RT (ms)"], rows);
    }

    report.paragraph(
        "Expected shape: the parallel pair shows interference only at the larger \
         volumes in both directions (cross-tier overflow must fill the queues \
         below the shared hub); the sequential pair interferes from the smallest \
         saturating volume in the forward direction (browse-hot-posts saturates \
         the shared home-timeline directly) but needs volume in reverse.",
    );
    report
}
