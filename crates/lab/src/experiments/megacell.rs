//! Mega-cell: a 100k+ user closed-loop population on the paper topology.
//!
//! The deep-population regime the flat-arena engine was built for: one
//! SocialNetwork cell provisioned for and driven by 100 000 emulated users
//! at the paper's 7 s mean think time (~14 000 req/s nominal demand; the
//! saturated cell settles lower as latency joins the closed loop). The
//! report pins the engine's scaling claims with measured numbers: the run
//! completes, and the kernel wheel carries O(occupied think buckets)
//! pending events — thousands — instead of one timer per sleeping user.

use apps::social_network;
use microsim::{SimConfig, Simulation};
use simnet::SimTime;
use workload::ClosedLoopUsers;

use crate::report::fmt;
use crate::{Fidelity, Report};

/// Everything one mega-cell run is judged on.
#[derive(Debug, Clone, Copy)]
pub struct CellStats {
    /// Population size.
    pub users: usize,
    /// Simulated horizon in seconds.
    pub sim_secs: f64,
    /// Completed requests.
    pub requests: usize,
    /// Closed-loop throughput over the horizon.
    pub req_per_s: f64,
    /// Mean client-side latency in ms.
    pub mean_ms: f64,
    /// Pending kernel wheel events at the end of the run.
    pub pending_events: usize,
    /// Occupied think buckets at the end of the run.
    pub think_buckets: usize,
    /// The arena's bucket granularity in microseconds.
    pub tick_micros: u64,
}

/// Runs one closed-loop mega-cell to `horizon` and measures it.
pub fn run_cell(users: usize, horizon: SimTime, seed: u64) -> CellStats {
    let app = social_network(users);
    let mut sim = Simulation::new(
        app.topology().clone(),
        SimConfig::default().seed(seed).access_log(false),
    );
    let id = sim.add_agent(Box::new(ClosedLoopUsers::new(
        users,
        app.browsing_model(),
        simnet::derive_seed(seed, "megacell/users"),
    )));
    sim.run_until(horizon);
    let pop: &ClosedLoopUsers = sim.agent_as(id).expect("population registered");
    let sim_secs = horizon.as_micros() as f64 / 1e6;
    let requests = sim.metrics().request_log().len();
    CellStats {
        users,
        sim_secs,
        requests,
        req_per_s: requests as f64 / sim_secs,
        mean_ms: pop.latency_stats().mean(),
        pending_events: sim.pending_events(),
        think_buckets: pop.pending_think_buckets(),
        tick_micros: pop.think_tick_micros(),
    }
}

/// Runs the experiment.
pub fn run(fidelity: Fidelity) -> Report {
    let mut report = Report::new(
        "megacell_population",
        "Mega-cell — 100k-user closed-loop population on the paper topology",
    );
    report.paragraph(
        "One SocialNetwork cell provisioned for and driven by a 100k-user \
         closed-loop population (7 s mean think time — ~14k req/s nominal \
         demand; measured closed-loop throughput is lower because latency \
         joins the think-request loop). The user slab tags requests with \
         the slot index for O(1) response dispatch, and sleeping users \
         share bucketed think timers: the kernel wheel carries one event \
         per occupied bucket, so pending events stay in the low thousands \
         where a per-user timer design would hold 100k.",
    );

    let users = 100_000;
    let horizon = fidelity.secs(60, 4);
    let stats = run_cell(users, SimTime::ZERO + horizon, 0xCE11);
    assert!(
        stats.pending_events < 10_000,
        "mega-cell must keep pending wheel events under 10k, got {}",
        stats.pending_events
    );

    report.table(
        &[
            "users",
            "sim s",
            "requests",
            "req/s",
            "mean ms",
            "pending wheel events",
            "think buckets",
            "arena tick µs",
        ],
        vec![vec![
            stats.users.to_string(),
            fmt(stats.sim_secs, 0),
            stats.requests.to_string(),
            fmt(stats.req_per_s, 0),
            fmt(stats.mean_ms, 2),
            stats.pending_events.to_string(),
            stats.think_buckets.to_string(),
            stats.tick_micros.to_string(),
        ]],
    );
    report.paragraph(format!(
        "The cell ran to completion with {} pending wheel events for {} \
         sleeping-or-active users ({} occupied think buckets at a {} µs \
         tick) — the acceptance bound is < 10 000.",
        stats.pending_events, stats.users, stats.think_buckets, stats.tick_micros
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance criterion at full population, debug-feasible horizon:
    /// a 100k-user cell runs to completion and the wheel carries O(think
    /// buckets) events — under 10k — not O(users).
    #[test]
    fn hundred_k_users_keep_pending_events_bounded() {
        // 4 sim-seconds: the 3 s think floor has elapsed, so the first
        // request wave (and its re-parks) has gone through the arena.
        let stats = run_cell(100_000, SimTime::from_secs(4), 0xCE11);
        assert_eq!(stats.users, 100_000);
        assert!(
            stats.requests > 1_000,
            "population must be actively requesting, got {}",
            stats.requests
        );
        assert!(
            stats.pending_events < 10_000,
            "pending wheel events must stay under 10k, got {}",
            stats.pending_events
        );
        assert!(
            stats.think_buckets <= stats.pending_events,
            "every occupied bucket holds exactly one pending wakeup"
        );
    }
}
