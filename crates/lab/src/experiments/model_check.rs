//! §III model validation: the analytic queueing equations against the
//! simulator.
//!
//! A minimal chain (gateway → bottleneck) is driven with controlled bursts
//! and the measured queue build-up, damage latency and millibottleneck
//! length are compared with Equations (1), (4) and (5). Linearity of
//! `P_MB` in the burst length `L` — the property the Kalman feedback
//! relies on — is checked across a sweep.

use callgraph::{RequestTypeId, ServiceSpec, TopologyBuilder};
use microsim::agents::FixedRate;
use microsim::{SimConfig, Simulation};
use queueing::{damage_latency, execution_queue, millibottleneck_length, BurstPlan};
use simnet::{SimDuration, SimTime};
use telemetry::find_millibottlenecks;

use crate::report::fmt;
use crate::{Fidelity, Report};

/// Capacity of the test bottleneck (req/s): 1 core at 10 ms demand.
const CAPACITY: f64 = 100.0;

fn measure(burst: BurstPlan, lambda: f64) -> (f64, f64) {
    let mut b = TopologyBuilder::new();
    let gw = b.add_service(
        ServiceSpec::new("gw")
            .threads(4096)
            .cores(8)
            .blockable(false)
            .demand_cv(0.0),
    );
    let svc = b.add_service(ServiceSpec::new("svc").threads(512).cores(1).demand_cv(0.0));
    b.add_request_type(
        "r",
        vec![
            (gw, SimDuration::from_micros(100)),
            (svc, SimDuration::from_millis(10)),
        ],
    );
    let mut sim = Simulation::new(b.build(), SimConfig::default());
    // Background load.
    if lambda > 0.0 {
        let gap = SimDuration::from_secs_f64(1.0 / lambda);
        sim.add_agent(Box::new(FixedRate::new(
            RequestTypeId::new(0),
            gap,
            (lambda * 30.0) as u64,
        )));
    }
    sim.run_until(SimTime::from_secs(5));
    // The burst, paced over its length.
    let gap = burst.inter_request_gap();
    let count = burst.request_count();
    sim.add_agent(Box::new(
        FixedRate::new(RequestTypeId::new(0), gap, count)
            .with_origin(microsim::Origin::attack(1, 1)),
    ));
    sim.run_until(SimTime::from_secs(20));

    let m = sim.metrics();
    // Measured millibottleneck length on the bottleneck service, from
    // burst start.
    let mbs = find_millibottlenecks(m, 0.99);
    let pmb = mbs
        .iter()
        .filter(|mb| {
            mb.service == callgraph::ServiceId::new(1) && mb.start >= SimTime::from_secs(5)
        })
        .map(|mb| mb.length().as_secs_f64())
        .fold(0.0, f64::max);
    // Measured damage: worst attack-request latency (the last queued
    // request waits the full drain).
    let worst = m
        .request_log()
        .iter()
        .filter(|r| r.origin.is_attack)
        .map(|r| r.latency().as_secs_f64())
        .fold(0.0, f64::max);
    (pmb, worst)
}

/// Runs the experiment.
pub fn run(fidelity: Fidelity) -> Report {
    let mut report = Report::new(
        "model_check",
        "§III model validation — analytic equations vs simulator",
    );
    report.paragraph(format!(
        "Single bottleneck (capacity C = {CAPACITY} req/s), burst rate B = 300 req/s. \
         Equations (1)/(4) predict the queue and damage latency; Equation (5) the \
         millibottleneck length. The simulator measures white-box saturation \
         intervals (100 ms windows) and the worst burst-request latency."
    ));

    let lambdas = fidelity.pick(vec![0.0, 30.0, 60.0], vec![0.0, 60.0]);
    let lengths = fidelity.pick(vec![0.1, 0.2, 0.4, 0.6], vec![0.2, 0.4]);

    let mut rows = Vec::new();
    let mut pmb_points: Vec<(f64, f64)> = Vec::new();
    for &lambda in &lambdas {
        for &length in &lengths {
            let burst = BurstPlan::new(300.0, length);
            let q_pred = execution_queue(burst, lambda, CAPACITY);
            let damage_pred = damage_latency(q_pred, CAPACITY);
            let pmb_pred = millibottleneck_length(burst, CAPACITY, lambda, CAPACITY);
            let (pmb_meas, damage_meas) = measure(burst, lambda);
            if lambda == lambdas[0] {
                pmb_points.push((length, pmb_meas));
            }
            rows.push(vec![
                fmt(lambda, 0),
                fmt(length, 1),
                fmt(q_pred, 0),
                fmt(damage_pred * 1e3, 0),
                fmt(damage_meas * 1e3, 0),
                fmt(pmb_pred * 1e3, 0),
                fmt(pmb_meas * 1e3, 0),
            ]);
        }
    }
    report.table(
        &[
            "lambda (req/s)",
            "L (s)",
            "Q_B pred (req)",
            "t_damage pred (ms)",
            "t_damage meas (ms)",
            "P_MB pred (ms)",
            "P_MB meas (ms)",
        ],
        rows,
    );

    // Linearity check of P_MB in L.
    if pmb_points.len() >= 2 {
        let (l0, p0) = pmb_points[0];
        let (l1, p1) = pmb_points[pmb_points.len() - 1];
        let slope = (p1 - p0) / (l1 - l0);
        report.paragraph(format!(
            "P_MB vs L slope (no background load): {} ms per 100 ms of L — the \
             linear relationship the Commander's Kalman feedback exploits.",
            fmt(slope * 100.0, 0),
        ));
    }
    report
}
