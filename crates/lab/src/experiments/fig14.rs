//! Fig 14: the CloudWatch view of the same attack — 1 s CPU metrics of the
//! attacked services, with auto-scaling enabled. No scaling action may
//! fire: sub-second millibottlenecks average out below every threshold.

use callgraph::ServiceId;
use grunt::CampaignConfig;
use microsim::{AutoScalePolicy, SimConfig};
use simnet::{SimDuration, SimTime};
use telemetry::CoarseMonitor;

use crate::report::fmt;
use crate::{Fidelity, Report, Scenario};

/// Runs the experiment.
pub fn run(fidelity: Fidelity) -> Report {
    let attack = fidelity.secs(300, 120);
    let scenario = Scenario::social_network(
        "EC2-12K",
        microsim::PlatformProfile::ec2(),
        12_000,
        12_000,
        0xF14,
    );
    // Auto-scaling on — the paper's policy.
    let mut sim =
        scenario.build_with(SimConfig::default().autoscale(AutoScalePolicy::paper_default()));
    sim.run_until(SimTime::from_secs(30));
    let campaign = grunt::GruntCampaign::run(&mut sim, CampaignConfig::default(), attack);

    let mut report = Report::new(
        "fig14_stealth",
        "Fig 14 — 1 s CloudWatch CPU during the attack; auto-scaling stays silent",
    );
    let m = sim.metrics();
    let topo = sim.topology();
    let coarse = CoarseMonitor::new(m, SimDuration::from_secs(1));

    let a0 = campaign.attack_started;
    let a1 = a0 + attack;
    let watch = [
        "compose-post",
        "post-storage",
        "media-service",
        "home-timeline",
        "social-graph",
        "memcached-post",
    ];
    let mut rows = Vec::new();
    for name in watch {
        let svc = topo.service_by_name(name).expect("known service");
        let mean = coarse.mean_utilization(svc, a0, a1) * 100.0;
        let peak = coarse
            .series(svc)
            .iter()
            .filter(|s| s.start >= a0 && s.start < a1)
            .map(|s| s.utilization)
            .fold(0.0, f64::max)
            * 100.0;
        rows.push(vec![name.to_string(), fmt(mean, 0), fmt(peak, 0)]);
    }
    report.table(&["service", "mean 1 s CPU (%)", "peak 1 s CPU (%)"], rows);

    // Scaling actions during the attack.
    let actions: Vec<_> = m.scaling_actions().iter().filter(|a| a.at >= a0).collect();
    report.paragraph(format!(
        "Auto-scaling actions during the attack window: {} (the paper's claim: \
         the 70%-for-30 s policy never fires because millibottlenecks average \
         out at 1 s granularity).",
        actions.len()
    ));
    if !actions.is_empty() {
        let rows: Vec<Vec<String>> = actions
            .iter()
            .map(|a| {
                vec![
                    a.at.to_string(),
                    topo.service(a.service).name.clone(),
                    format!("{:?}", a.direction),
                    a.replicas_after.to_string(),
                ]
            })
            .collect();
        report.table(&["time", "service", "direction", "replicas after"], rows);
    }

    // Sample 1 s utilisation series of the hottest service for plotting.
    let hottest = watch
        .iter()
        .map(|n| topo.service_by_name(n).expect("known service"))
        .max_by(|a, b| {
            coarse
                .mean_utilization(*a, a0, a1)
                .partial_cmp(&coarse.mean_utilization(*b, a0, a1))
                .expect("not NaN")
        })
        .expect("non-empty");
    let series_rows: Vec<Vec<String>> = coarse
        .series(hottest)
        .iter()
        .filter(|s| s.start >= a0 && s.start < a1)
        .map(|s| {
            vec![
                fmt(s.start.as_secs_f64(), 0),
                fmt(s.utilization * 100.0, 1),
                s.replicas.to_string(),
            ]
        })
        .collect();
    report.series(
        format!(
            "1 s CPU of the hottest service (`{}`) during the attack:",
            topo.service(hottest).name
        )
        .as_str(),
        &["t_s", "cpu_pct", "replicas"],
        series_rows,
    );
    let _ = ServiceId::new(0);
    report
}
