//! Fig 15: Grunt under a real-world-style bursty baseline ("Large
//! Variation" trace) with auto-scaling enabled — the Commander must track
//! workload swings and scaling actions while holding the damage goal.

use callgraph::ServiceId;
use grunt::CampaignConfig;
use microsim::{AutoScalePolicy, SimConfig, Simulation};
use simnet::{SimDuration, SimTime};
use telemetry::{CoarseMonitor, LatencySeries, Traffic};
use workload::{PoissonSource, RateTrace};

use crate::report::fmt;
use crate::{Fidelity, Report, Scenario};

/// Runs the experiment.
pub fn run(fidelity: Fidelity) -> Report {
    // Open-loop bursty workload between 1k and 6k req/s; the deployment is
    // provisioned for the mid-range and auto-scaling covers the peaks.
    let duration = fidelity.secs(1_200, 240);
    let scenario = Scenario::social_network(
        "EC2-bursty",
        microsim::PlatformProfile::ec2(),
        1, // the closed-loop population is unused here
        24_000,
        0xF15,
    );
    let trace =
        RateTrace::large_variation(7, duration + SimDuration::from_secs(600), 1_000.0, 6_000.0);

    let mut sim = Simulation::new(
        scenario.topology.clone(),
        SimConfig::default()
            .seed(scenario.seed)
            .autoscale(AutoScalePolicy::paper_default()),
    );
    let app = apps::social_network(24_000);
    sim.add_agent(Box::new(PoissonSource::new(
        app.request_mix(),
        trace.clone(),
        SimTime::FAR_FUTURE,
        99,
    )));
    sim.run_until(SimTime::from_secs(40));
    let campaign = grunt::GruntCampaign::run(&mut sim, CampaignConfig::default(), duration);

    let mut report = Report::new(
        "fig15_bursty",
        "Fig 15 — attack under the Large Variation bursty workload with auto-scaling",
    );
    let m = sim.metrics();
    let topo = sim.topology();
    let a0 = campaign.attack_started;
    let a1 = a0 + duration;

    // (a) the workload trace.
    let trace_rows: Vec<Vec<String>> = trace
        .rates()
        .iter()
        .enumerate()
        .take((duration.as_secs_f64() / trace.step().as_secs_f64()) as usize + 1)
        .map(|(i, r)| vec![fmt(i as f64 * trace.step().as_secs_f64(), 0), fmt(*r, 0)])
        .collect();
    report.series(
        "(a) baseline workload trace (req/s, 30 s segments):",
        &["t_s", "req_per_s"],
        trace_rows,
    );

    // (b) scaling actions + CPU of a representative service.
    let hub = topo.service_by_name("compose-post").expect("hub");
    let coarse = CoarseMonitor::new(m, SimDuration::from_secs(1));
    let cpu_rows: Vec<Vec<String>> = coarse
        .series(hub)
        .iter()
        .filter(|s| s.start >= a0 && s.start < a1)
        .step_by(5)
        .map(|s| {
            vec![
                fmt(s.start.as_secs_f64(), 0),
                fmt(s.utilization * 100.0, 1),
                s.replicas.to_string(),
            ]
        })
        .collect();
    report.series(
        "(b) compose-post CPU (1 s samples, 5 s stride) and replica count:",
        &["t_s", "cpu_pct", "replicas"],
        cpu_rows,
    );
    let actions: Vec<_> = m.scaling_actions().iter().filter(|a| a.at >= a0).collect();
    report.paragraph(format!(
        "{} scaling actions during the attack window (the system scales with the \
         workload, not with the attack).",
        actions.len()
    ));

    // (c) attack volume adjusted by the Commander (write group).
    let vol_rows: Vec<Vec<String>> = campaign
        .report
        .volume_series
        .iter()
        .filter(|(t, g, _)| *g == 0 && *t >= a0 && *t < a1)
        .step_by(4)
        .map(|(t, _, v)| vec![fmt(t.as_secs_f64(), 0), v.to_string()])
        .collect();
    report.series(
        "(c) per-burst attack volume for the write group, Commander-adapted:",
        &["t_s", "volume_req"],
        vol_rows,
    );

    // (d) legitimate latency.
    let rt = LatencySeries::compute(m, Traffic::Legit, SimDuration::from_secs(5), a1);
    let rt_rows: Vec<Vec<String>> = rt
        .points()
        .iter()
        .filter(|(t, _, n)| *t >= a0 && *n > 0)
        .map(|(t, ms, _)| vec![fmt(t.as_secs_f64(), 0), fmt(*ms, 0)])
        .collect();
    report.series(
        "(d) mean legitimate response time (5 s windows):",
        &["t_s", "avg_rt_ms"],
        rt_rows,
    );
    report.paragraph(format!(
        "Attack-window mean legitimate RT: {} ms (goal: persistently above 1 s \
         where the adapted volume can sustain it across workload swings).",
        fmt(rt.mean_over(a0, a1), 0)
    ));
    let _ = ServiceId::new(0);
    report
}
