//! One module per reproduced table / figure.

pub mod ablations;
pub mod fig1;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod megacell;
pub mod mitigation;
pub mod model_check;
pub mod resilience;
pub mod table1;
pub mod table4;

use crate::{Fidelity, Report, RunOpts};

/// All experiment names, in a sensible execution order.
pub const ALL: &[&str] = &[
    "model_check",
    "fig11",
    "fig12",
    "fig1",
    "table1",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "table4",
    "megacell",
    "ablations",
    "mitigation",
    "resilience",
];

/// Runs one experiment by name, serially.
///
/// # Panics
///
/// Panics on an unknown name (the CLI validates first).
pub fn run(name: &str, fidelity: Fidelity) -> Report {
    run_jobs(name, fidelity, 1)
}

/// Runs one experiment by name with up to `jobs` sweep cells in parallel.
///
/// The table sweeps (independent cells) fan out over `jobs` threads; the
/// timeline experiments are single runs and ignore `jobs`. Output is
/// byte-identical for every `jobs` value.
///
/// # Panics
///
/// Panics on an unknown name (the CLI validates first).
pub fn run_jobs(name: &str, fidelity: Fidelity, jobs: usize) -> Report {
    run_with(name, RunOpts::new(fidelity).jobs(jobs))
}

/// Runs one experiment by name with full execution options (fidelity,
/// parallelism, warm-snapshot forking).
///
/// Every combination of options produces byte-identical output for a given
/// fidelity — `jobs` and `snapshots` only change the wall clock.
///
/// # Panics
///
/// Panics on an unknown name (the CLI validates first).
pub fn run_with(name: &str, opts: RunOpts) -> Report {
    let fidelity = opts.fidelity;
    match name {
        "fig1" => fig1::run_opts(opts),
        "table1" => table1::run_opts(opts),
        "fig11" => fig11::run(fidelity),
        "fig12" => fig12::run(fidelity),
        "fig13" => fig13::run_opts(opts),
        "fig14" => fig14::run(fidelity),
        "fig15" => fig15::run(fidelity),
        "fig16" => fig16::run(fidelity),
        "table4" => table4::run_opts(opts),
        "megacell" => megacell::run(fidelity),
        "ablations" => ablations::run_opts(opts),
        "mitigation" => mitigation::run_opts(opts),
        "model_check" => model_check::run(fidelity),
        "resilience" => resilience::run(fidelity),
        other => panic!("unknown experiment {other:?}; known: {ALL:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_are_unique_and_known() {
        let set: std::collections::HashSet<_> = ALL.iter().collect();
        assert_eq!(set.len(), ALL.len(), "duplicate experiment names");
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_name_panics() {
        run("nonsense", Fidelity::Fast);
    }
}
