//! Fig 12: the administrator's view vs the attacker's view of
//! SocialNetwork's dependency structure.
//!
//! (a) the service dependency graph, (b) representative pairwise profiling
//! outcomes, (c) the dependency groups the blackbox profiler constructs —
//! scored against ground truth.

use grunt::{Profiler, ProfilerConfig};
use simnet::{SimDuration, SimTime};
use telemetry::{GroundTruth, ProfilerScore};

use crate::report::fmt;
use crate::{Fidelity, Report, Scenario};

/// Runs the experiment.
pub fn run(fidelity: Fidelity) -> Report {
    let users = fidelity.pick(7_000, 3_000);
    let scenario =
        Scenario::social_network("EC2", microsim::PlatformProfile::ec2(), users, 7_000, 0xF12);
    let topo = scenario.topology.clone();

    let mut report = Report::new(
        "fig12_groups",
        "Fig 12 — dependency graph, pairwise profiling and dependency groups",
    );

    // (a) administrator's view: the service dependency graph.
    report.heading("(a) Administrator's view: service dependency graph");
    let dg = topo.dependency_graph();
    let rows: Vec<Vec<String>> = dg
        .edges()
        .map(|(u, d)| vec![topo.service(u).name.clone(), topo.service(d).name.clone()])
        .collect();
    report.paragraph(format!(
        "{} services, {} request types, {} call edges; shared (hotspot) services: {}.",
        topo.num_services(),
        topo.num_request_types(),
        dg.num_edges(),
        dg.shared_services()
            .iter()
            .map(|s| topo.service(*s).name.clone())
            .collect::<Vec<_>>()
            .join(", "),
    ));
    report.table(&["upstream", "downstream"], rows);

    // Run the blackbox profiler.
    let mut sim = scenario.build();
    sim.run_until(SimTime::from_secs(10));
    let id = sim.add_agent(Box::new(Profiler::new(ProfilerConfig::default())));
    loop {
        let next = sim.now() + SimDuration::from_secs(10);
        sim.run_until(next);
        if sim.agent_as::<Profiler>(id).expect("registered").is_done() {
            break;
        }
        assert!(sim.now() < SimTime::from_secs(7_200), "profiler stuck");
    }
    let outcome = sim
        .agent_as::<Profiler>(id)
        .expect("registered")
        .outcome()
        .expect("done")
        .clone();

    // (b) pairwise profiling outcomes.
    report.heading("(b) Attacker's view: pairwise profiling outcomes");
    let name = |rt: callgraph::RequestTypeId| topo.request_type(rt).name.clone();
    let rows: Vec<Vec<String>> = outcome
        .groups
        .pairs()
        .filter(|(_, _, d)| d.is_dependent())
        .map(|(a, b, d)| vec![name(a), name(b), format!("{d:?}")])
        .collect();
    report.table(&["path A", "path B", "classification"], rows);

    // (c) groups vs ground truth.
    report.heading("(c) Dependency groups: attacker vs ground truth");
    let gt = GroundTruth::from_topology(&topo);
    let render = |groups: &callgraph::DependencyGroups| {
        groups
            .groups()
            .iter()
            .map(|g| {
                format!(
                    "{{{}}}",
                    g.iter().map(|rt| name(*rt)).collect::<Vec<_>>().join(", ")
                )
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    report.paragraph(format!("Attacker-estimated: {}", render(&outcome.groups)));
    report.paragraph(format!("Ground truth:       {}", render(gt.groups())));
    let members: Vec<_> = outcome.catalog.iter().map(|(id, _)| *id).collect();
    let score = ProfilerScore::compute(&members, &gt, &outcome.groups);
    report.paragraph(format!(
        "Profiler precision {} / recall {} / F-score {} over {} request pairs \
         ({} profiling requests sent).",
        fmt(score.precision(), 2),
        fmt(score.recall(), 2),
        fmt(score.f_score(), 2),
        members.len() * (members.len() - 1) / 2,
        outcome.requests_sent,
    ));
    report
}
