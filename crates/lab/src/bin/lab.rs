//! Experiment runner CLI.
//!
//! ```text
//! lab <experiment|all> [--fast] [--out <dir>] [--jobs <N|auto>] [--no-snapshot]
//! ```
//!
//! `--jobs` runs independent sweep cells (table experiments) on up to `N`
//! OS threads; results are emitted in cell order, so the written reports
//! are byte-identical to a serial run. Defaults to `LAB_JOBS` or 1.
//! `--jobs auto` uses the machine's available parallelism, falling back to
//! serial on single-CPU hosts.
//!
//! `--no-snapshot` disables warm-state snapshot forking: every run
//! re-simulates its warm-up/baseline/profiling prefix inline. Reports are
//! byte-identical with or without it — the flag exists for debugging the
//! snapshot path itself and for benchmarking the saving.
//!
//! Known experiments: see `lab::experiments::ALL`.

use lab::{experiments, sweep, Fidelity, RunOpts};

fn main() {
    // CLI harness: argv selects which simulations run, never what they
    // compute. simlint: allow(nondet-source)
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: lab <experiment|all> [--fast] [--out <dir>] [--jobs <N|auto>] [--no-snapshot]"
        );
        eprintln!("experiments: {}", experiments::ALL.join(", "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let which = args[0].clone();
    let fidelity = if args.iter().any(|a| a == "--fast") {
        Fidelity::Fast
    } else {
        Fidelity::Full
    };
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results".to_string());
    let jobs = match args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
    {
        None => sweep::default_jobs(),
        Some(v) if v == "auto" => sweep::auto_jobs(),
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                eprintln!("--jobs expects a positive integer or `auto`, got {v:?}");
                std::process::exit(2);
            }),
    };
    let snapshots = !args.iter().any(|a| a == "--no-snapshot");

    let names: Vec<&str> = if which == "all" {
        experiments::ALL.to_vec()
    } else if experiments::ALL.contains(&which.as_str()) {
        vec![experiments::ALL
            .iter()
            .find(|n| **n == which)
            .copied()
            .expect("checked")]
    } else {
        eprintln!(
            "unknown experiment {which:?}; known: {}",
            experiments::ALL.join(", ")
        );
        std::process::exit(2);
    };

    for name in names {
        // Wall-clock progress echo on stderr; reports never include it.
        let started = std::time::Instant::now(); // simlint: allow(nondet-source)
        eprintln!(
            "== running {name} ({fidelity:?}, jobs={jobs}{}) ==",
            if snapshots { "" } else { ", no-snapshot" }
        );
        let opts = RunOpts::new(fidelity).jobs(jobs).snapshots(snapshots);
        let report = experiments::run_with(name, opts);
        let path = match report.write_to_dir(&out_dir) {
            Ok(path) => path,
            Err(e) => {
                eprintln!("error: writing report for {name} to {out_dir:?}: {e}");
                std::process::exit(1);
            }
        };
        eprintln!(
            "   wrote {} ({:.1}s wall)",
            path.display(),
            started.elapsed().as_secs_f64()
        );
        println!("{}", report.to_markdown());
    }
}
