//! Integration tests for the blocking mechanics the Grunt attack exploits.
//!
//! These validate, at the platform level, the phenomena of Section II of
//! the paper: execution blocking, cross-tier queue overflow, millibottleneck
//! visibility at different monitoring granularities, and determinism.

use callgraph::{RequestTypeId, ServiceId, ServiceSpec, TopologyBuilder};
use microsim::agents::{FixedRate, OneShot};
use microsim::{AutoScalePolicy, Origin, SimConfig, Simulation};
use simnet::{SimDuration, SimTime};

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// gateway -> {a, b}: two request types sharing only the gateway.
/// Service `a` is slow (10 ms), `b` is fast (2 ms). Gateway has a small
/// thread pool so overflow is reachable.
fn shared_gateway_topology(gw_threads: u32, a_threads: u32) -> callgraph::Topology {
    let mut t = TopologyBuilder::new();
    let gw = t.add_service(
        ServiceSpec::new("gateway")
            .threads(gw_threads)
            .demand_cv(0.0),
    );
    let a = t.add_service(ServiceSpec::new("a").threads(a_threads).demand_cv(0.0));
    let b = t.add_service(ServiceSpec::new("b").threads(64).demand_cv(0.0));
    t.add_request_type("ra", vec![(gw, ms(1)), (a, ms(10))]);
    t.add_request_type("rb", vec![(gw, ms(1)), (b, ms(2))]);
    t.build()
}

const RA: RequestTypeId = RequestTypeId::new(0);
const RB: RequestTypeId = RequestTypeId::new(1);
const GW: ServiceId = ServiceId::new(0);
const A: ServiceId = ServiceId::new(1);

#[test]
fn idle_system_latency_is_demand_plus_network() {
    let mut sim = Simulation::new(shared_gateway_topology(32, 16), SimConfig::default());
    sim.add_agent(Box::new(OneShot::new(RB)));
    sim.run_until(SimTime::from_secs(1));
    let lat = sim.metrics().request_log()[0].latency().as_millis_f64();
    // 1 ms gw + 2 ms b + 4 hops * 0.25 ms = 4 ms.
    assert!((lat - 4.0).abs() < 0.2, "latency {lat} ms");
}

#[test]
fn cross_tier_overflow_blocks_sibling_path() {
    // Small gateway pool (8) and tiny `a` pool (4). A burst of 200
    // back-to-back `ra` requests saturates `a` (10 ms each), fills a's
    // thread pool, then overflows into the gateway pool: `rb` requests
    // arriving during the bottleneck must wait for gateway threads even
    // though service `b` itself is idle.
    let mut sim = Simulation::new(shared_gateway_topology(8, 4), SimConfig::default());
    // Attack-ish burst on ra: 200 requests, one per ms.
    sim.add_agent(Box::new(FixedRate::new(
        RA,
        SimDuration::from_micros(1000),
        200,
    )));
    // Probe rb during the bottleneck window.
    let mut probe = FixedRate::new(RB, ms(20), 20);
    probe = probe.with_origin(Origin::legit(7, 7));
    sim.add_agent(Box::new(probe));
    sim.run_until(SimTime::from_secs(10));

    let rb_lat: Vec<f64> = sim
        .metrics()
        .request_log()
        .iter()
        .filter(|r| r.request_type == RB)
        .map(|r| r.latency().as_millis_f64())
        .collect();
    assert_eq!(rb_lat.len(), 20);
    let worst = rb_lat.iter().copied().fold(0.0, f64::max);
    // Unblocked rb takes ~4 ms; blocked-at-gateway rb should exceed 10x.
    assert!(
        worst > 40.0,
        "expected rb to be blocked at shared gateway, worst {worst} ms"
    );
}

#[test]
fn no_overflow_without_shared_upstream_saturation() {
    // Same burst but with a huge gateway pool: a saturates, but the
    // gateway never runs out of threads, so rb flows freely (Fig 9b).
    let mut sim = Simulation::new(shared_gateway_topology(512, 4), SimConfig::default());
    sim.add_agent(Box::new(FixedRate::new(
        RA,
        SimDuration::from_micros(1000),
        200,
    )));
    sim.add_agent(Box::new(
        FixedRate::new(RB, ms(20), 20).with_origin(Origin::legit(7, 7)),
    ));
    sim.run_until(SimTime::from_secs(10));
    let worst = sim
        .metrics()
        .request_log()
        .iter()
        .filter(|r| r.request_type == RB)
        .map(|r| r.latency().as_millis_f64())
        .fold(0.0, f64::max);
    assert!(
        worst < 20.0,
        "rb should not be blocked when gateway pool is large, worst {worst} ms"
    );
}

#[test]
fn millibottleneck_visible_at_100ms_not_at_1s() {
    // A burst of 40 requests in ~40 ms saturates `a` for ~400 ms
    // (40 * 10 ms on one core): the 100 ms windows during the bottleneck
    // show ~100% utilisation while the 1 s average stays under 70%.
    let mut sim = Simulation::new(shared_gateway_topology(64, 64), SimConfig::default());
    sim.add_agent(Box::new(FixedRate::new(
        RA,
        SimDuration::from_micros(1000),
        40,
    )));
    sim.run_until(SimTime::from_secs(2));

    let m = sim.metrics();
    let window = m.window();
    let fine_peak = m
        .service_series(A)
        .map(|w| w.utilization(window))
        .fold(0.0, f64::max);
    assert!(fine_peak > 0.95, "fine-grained peak {fine_peak}");

    let coarse = m.mean_utilization(A, SimTime::ZERO, SimTime::from_secs(1));
    assert!(coarse < 0.7, "1 s average {coarse} should stay under radar");
}

/// Like [`shared_gateway_topology`] but with demand jitter enabled, so
/// seeds actually matter.
fn jittered_topology() -> callgraph::Topology {
    let mut t = TopologyBuilder::new();
    let gw = t.add_service(ServiceSpec::new("gateway").threads(8).demand_cv(0.2));
    let a = t.add_service(ServiceSpec::new("a").threads(4).demand_cv(0.2));
    let b = t.add_service(ServiceSpec::new("b").threads(64).demand_cv(0.2));
    t.add_request_type("ra", vec![(gw, ms(1)), (a, ms(10))]);
    t.add_request_type("rb", vec![(gw, ms(1)), (b, ms(2))]);
    t.build()
}

#[test]
fn same_seed_same_run() {
    let run = |seed: u64| {
        let mut sim = Simulation::new(jittered_topology(), SimConfig::default().seed(seed));
        sim.add_agent(Box::new(FixedRate::new(RA, ms(1), 100)));
        sim.add_agent(Box::new(FixedRate::new(RB, ms(7), 30)));
        sim.run_until(SimTime::from_secs(5));
        sim.metrics()
            .request_log()
            .iter()
            .map(|r| (r.request_type, r.submitted_at, r.completed_at))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43), "different seeds should differ (jitter)");
}

#[test]
fn sustained_overload_triggers_scale_up_but_bursts_do_not() {
    let policy = AutoScalePolicy {
        sustain_secs: 3,
        provision_delay: SimDuration::from_secs(1),
        ..AutoScalePolicy::paper_default()
    };

    // Sustained: 120 req/s of ra (10 ms demand each) = 120% of one core.
    let topo = shared_gateway_topology(256, 256);
    let mut sim = Simulation::new(topo, SimConfig::default().autoscale(policy));
    sim.add_agent(Box::new(FixedRate::new(
        RA,
        SimDuration::from_micros(8_333),
        1200,
    )));
    sim.run_until(SimTime::from_secs(12));
    assert!(
        !sim.metrics().scaling_actions().is_empty(),
        "sustained overload must scale up"
    );
    assert!(sim.active_replicas(A) > 1);

    // Bursty: the same request volume compressed into 300 ms bursts once
    // per 2 s — every 1 s window averages well under 70%.
    let topo = shared_gateway_topology(256, 256);
    let mut sim = Simulation::new(topo, SimConfig::default().autoscale(policy));
    for burst in 0..6u64 {
        // 30 requests back-to-back at the start of every 2 s period:
        // ~300 ms of saturation then quiet.
        let mut agent = FixedRate::new(RA, SimDuration::from_micros(500), 30);
        agent = agent.with_origin(Origin::attack(100 + burst as u32, burst));
        // Stagger via a wrapper: FixedRate starts at t=0, so instead give
        // each burst its own simulation start by scheduling through
        // run_until increments.
        sim.add_agent(Box::new(agent));
        sim.run_until(SimTime::from_secs(2 * (burst + 1)));
    }
    let ups = sim
        .metrics()
        .scaling_actions()
        .iter()
        .filter(|a| a.direction == microsim::ScalingDirection::Up)
        .count();
    assert_eq!(ups, 0, "sub-second bursts must not trigger scaling");
}

#[test]
fn traces_record_span_trees() {
    let mut sim = Simulation::new(
        shared_gateway_topology(32, 16),
        SimConfig::default().trace_sampling(1.0),
    );
    sim.add_agent(Box::new(FixedRate::new(RA, ms(10), 5)));
    sim.run_until(SimTime::from_secs(2));
    let traces = sim.metrics().traces();
    assert_eq!(traces.len(), 5);
    for (rt, hist) in traces {
        assert_eq!(*rt, RA);
        let cp = hist.critical_path().expect("root span");
        assert_eq!(cp.services(), vec![GW, A]);
        // The 10 ms step dominates: bottleneck attribution must find `a`.
        assert_eq!(cp.bottleneck_service(), A);
    }
}

#[test]
fn access_log_captures_all_submissions() {
    let mut sim = Simulation::new(shared_gateway_topology(32, 16), SimConfig::default());
    sim.add_agent(Box::new(FixedRate::new(RA, ms(5), 10)));
    sim.add_agent(Box::new(
        FixedRate::new(RB, ms(5), 10).with_origin(Origin::attack(9, 9)),
    ));
    sim.run_until(SimTime::from_secs(2));
    let log = sim.metrics().access_log();
    assert_eq!(log.len(), 20);
    assert_eq!(log.iter().filter(|e| e.origin.is_attack).count(), 10);
}

#[test]
fn network_accounting_tracks_bytes() {
    let mut sim = Simulation::new(shared_gateway_topology(32, 16), SimConfig::default());
    sim.add_agent(Box::new(FixedRate::new(RA, ms(5), 10)));
    sim.run_until(SimTime::from_secs(2));
    let total_in: u64 = sim.metrics().network_windows().map(|w| w.bytes_in).sum();
    let total_out: u64 = sim.metrics().network_windows().map(|w| w.bytes_out).sum();
    // 10 requests * (1024 + 220) bytes in, 10 * (8192 + 220) out.
    assert_eq!(total_in, 10 * 1244);
    assert_eq!(total_out, 10 * 8412);
}
