//! Property-based tests of snapshot/fork equivalence: for random
//! topologies and agent mixes, `checkpoint → fork → run_until(T)` must
//! match an uninterrupted `run_until(T)` on every recorded metric, the
//! pending event count, and the final RNG stream positions.

use callgraph::{RequestTypeId, ServiceSpec, Topology, TopologyBuilder};
use microsim::agents::FixedRate;
use microsim::{SimConfig, Simulation};
use proptest::prelude::*;
use simnet::{SimDuration, SimTime};
use workload::{BrowsingModel, ClosedLoopUsers};

/// A random small application: 2-5 services, 1-3 chain request types.
#[derive(Debug, Clone)]
struct RandomApp {
    services: Vec<(u32, u32)>,      // (threads, cores)
    chains: Vec<Vec<(usize, u64)>>, // (service index, demand ms)
}

fn app_strategy() -> impl Strategy<Value = RandomApp> {
    let services = prop::collection::vec((1u32..48, 1u32..4), 2..6);
    services.prop_flat_map(|services| {
        let n = services.len();
        let chain = prop::collection::vec((0..n, 1u64..12), 1..4).prop_map(move |raw| {
            // Visit each service at most once per chain.
            let mut seen = std::collections::HashSet::new();
            raw.into_iter()
                .filter(|(s, _)| seen.insert(*s))
                .collect::<Vec<_>>()
        });
        let chains = prop::collection::vec(chain, 1..4);
        (Just(services), chains).prop_map(|(services, chains)| RandomApp {
            services,
            chains: chains.into_iter().filter(|c| !c.is_empty()).collect(),
        })
    })
}

fn build(app: &RandomApp) -> Option<Topology> {
    if app.chains.is_empty() {
        return None;
    }
    let mut b = TopologyBuilder::new();
    let ids: Vec<_> = app
        .services
        .iter()
        .enumerate()
        .map(|(i, (threads, cores))| {
            b.add_service(
                ServiceSpec::new(format!("s{i}"))
                    .threads(*threads)
                    .cores(*cores)
                    .demand_cv(0.2),
            )
        })
        .collect();
    for (i, chain) in app.chains.iter().enumerate() {
        b.add_request_type(
            format!("r{i}"),
            chain
                .iter()
                .map(|(s, d)| (ids[*s], SimDuration::from_millis(*d)))
                .collect(),
        );
    }
    Some(b.build())
}

/// A random agent mix to register on the simulation: a closed-loop user
/// population plus one `FixedRate` source per request type subset.
#[derive(Debug, Clone)]
struct AgentMix {
    users: usize,
    fixed_sources: Vec<(u64, u64)>, // (interval ms, count) per request type
}

fn mix_strategy() -> impl Strategy<Value = AgentMix> {
    (
        1usize..30,
        prop::collection::vec((5u64..40, 10u64..60), 0..3),
    )
        .prop_map(|(users, fixed_sources)| AgentMix {
            users,
            fixed_sources,
        })
}

fn populate(sim: &mut Simulation, topo: &Topology, mix: &AgentMix, seed: u64) {
    let types: Vec<RequestTypeId> = (0..topo.num_request_types())
        .map(|t| RequestTypeId::new(t as u32))
        .collect();
    sim.add_agent(Box::new(ClosedLoopUsers::new(
        mix.users,
        BrowsingModel::uniform(types.iter().copied()),
        seed ^ 0x5EED,
    )));
    for (i, (interval, count)) in mix.fixed_sources.iter().enumerate() {
        sim.add_agent(Box::new(FixedRate::new(
            types[i % types.len()],
            SimDuration::from_millis(*interval),
            *count,
        )));
    }
}

/// Everything we compare between the forked and the uninterrupted run.
fn observe(sim: &Simulation) -> (usize, (u64, u64), Vec<(u64, u64)>) {
    (
        sim.pending_events(),
        sim.rng_fingerprint(),
        sim.metrics()
            .request_log()
            .iter()
            .map(|r| (r.submitted_at.as_micros(), r.completed_at.as_micros()))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `checkpoint` at T1, fork, run both to T2: the fork and the original
    /// must stay in lockstep on metrics, event counts and RNG positions.
    #[test]
    fn fork_matches_uninterrupted_run(
        app in app_strategy(),
        mix in mix_strategy(),
        seed in any::<u64>(),
        t1_s in 1u64..8,
    ) {
        let Some(topo) = build(&app) else { return Ok(()); };
        let mut sim = Simulation::new(topo.clone(), SimConfig::default().seed(seed));
        populate(&mut sim, &topo, &mix, seed);

        let t1 = SimTime::from_secs(t1_s);
        let t2 = t1 + SimDuration::from_secs(10);
        sim.run_until(t1);
        let snapshot = sim.checkpoint().expect("test agents support snapshotting");
        let mut fork = Simulation::from_snapshot(&snapshot);

        // The snapshot froze the exact live state.
        prop_assert_eq!(fork.now(), sim.now());
        prop_assert_eq!(fork.pending_events(), sim.pending_events());
        prop_assert_eq!(fork.rng_fingerprint(), sim.rng_fingerprint());
        prop_assert_eq!(fork.metrics(), sim.metrics());

        // ...and both continuations stay in lockstep.
        sim.run_until(t2);
        fork.run_until(t2);
        prop_assert_eq!(observe(&fork), observe(&sim));
        prop_assert_eq!(fork.metrics(), sim.metrics());
    }

    /// Agent-internal sample stores survive the fork: a `FixedRate`
    /// source's recorded latencies — held in a copy-on-write `SegSamples`
    /// with sealed segments shared between fork and original — are
    /// logically identical at the checkpoint, stay isolated while only one
    /// side runs on, and re-converge bit-for-bit when both reach the same
    /// simulated time.
    #[test]
    fn fork_preserves_agent_sample_state(seed in any::<u64>(), t1_s in 2u64..5) {
        let mut b = TopologyBuilder::new();
        let svc = b.add_service(ServiceSpec::new("api").threads(32).cores(2).demand_cv(0.2));
        b.add_request_type("r", vec![(svc, SimDuration::from_millis(2))]);
        let mut sim = Simulation::new(b.build(), SimConfig::default().seed(seed));
        // 1 ms interval: enough completions by t1 to seal at least one
        // 1024-sample segment, so the shared-spine path is exercised.
        let id = sim.add_agent(Box::new(FixedRate::new(
            RequestTypeId::new(0),
            SimDuration::from_millis(1),
            100_000,
        )));

        let t1 = SimTime::from_secs(t1_s);
        let t2 = t1 + SimDuration::from_secs(3);
        sim.run_until(t1);
        let snapshot = sim.checkpoint().expect("FixedRate supports snapshotting");
        let mut fork = Simulation::from_snapshot(&snapshot);

        let stats = |s: &Simulation| {
            let lat = s
                .agent_as::<FixedRate>(id)
                .expect("agent survives the fork")
                .latencies_ms();
            (lat.len(), lat.mean().to_bits(), lat.max().to_bits())
        };
        let at_t1 = stats(&sim);
        prop_assert!(at_t1.0 > 1024, "want a sealed segment, got {} samples", at_t1.0);
        prop_assert_eq!(stats(&fork), at_t1);
        let p99 = |s: &mut Simulation| {
            s.agent_as_mut::<FixedRate>(id)
                .expect("agent survives the fork")
                .latencies_ms_mut()
                .percentile(0.99)
                .to_bits()
        };
        prop_assert_eq!(p99(&mut fork), p99(&mut sim));

        // Running only the original leaves the fork's store untouched.
        sim.run_until(t2);
        prop_assert_eq!(stats(&fork), at_t1);
        prop_assert!(stats(&sim).0 > at_t1.0, "original kept recording");

        // Catching the fork up re-converges every statistic bit-for-bit.
        fork.run_until(t2);
        prop_assert_eq!(stats(&fork), stats(&sim));
        prop_assert_eq!(p99(&mut fork), p99(&mut sim));
    }

    /// The snapshot is immutable: running one fork does not disturb a
    /// sibling forked from the same snapshot later.
    #[test]
    fn sibling_forks_are_independent(
        app in app_strategy(),
        mix in mix_strategy(),
        seed in any::<u64>(),
    ) {
        let Some(topo) = build(&app) else { return Ok(()); };
        let mut sim = Simulation::new(topo.clone(), SimConfig::default().seed(seed));
        populate(&mut sim, &topo, &mix, seed);
        sim.run_until(SimTime::from_secs(3));
        let snapshot = sim.checkpoint().expect("test agents support snapshotting");
        drop(sim);

        let t2 = SimTime::from_secs(9);
        let mut first = Simulation::from_snapshot(&snapshot);
        first.run_until(t2);
        let mut second = Simulation::from_snapshot(&snapshot);
        second.run_until(t2);
        prop_assert_eq!(observe(&first), observe(&second));
        prop_assert_eq!(first.metrics(), second.metrics());
    }
}
