//! Property-based tests of snapshot/fork equivalence: for random
//! topologies and agent mixes, `checkpoint → fork → run_until(T)` must
//! match an uninterrupted `run_until(T)` on every recorded metric, the
//! pending event count, and the final RNG stream positions.

use callgraph::{RequestTypeId, ServiceSpec, Topology, TopologyBuilder};
use microsim::agents::FixedRate;
use microsim::{
    BreakerPolicy, ResilienceConfig, ResiliencePolicy, RetryPolicy, SimConfig, Simulation,
};
use proptest::prelude::*;
use simnet::{SimDuration, SimTime};
use workload::{BrowsingModel, ClosedLoopUsers};

/// A random small application: 2-5 services, 1-3 chain request types.
#[derive(Debug, Clone)]
struct RandomApp {
    services: Vec<(u32, u32)>,      // (threads, cores)
    chains: Vec<Vec<(usize, u64)>>, // (service index, demand ms)
}

fn app_strategy() -> impl Strategy<Value = RandomApp> {
    let services = prop::collection::vec((1u32..48, 1u32..4), 2..6);
    services.prop_flat_map(|services| {
        let n = services.len();
        let chain = prop::collection::vec((0..n, 1u64..12), 1..4).prop_map(move |raw| {
            // Visit each service at most once per chain.
            let mut seen = std::collections::HashSet::new();
            raw.into_iter()
                .filter(|(s, _)| seen.insert(*s))
                .collect::<Vec<_>>()
        });
        let chains = prop::collection::vec(chain, 1..4);
        (Just(services), chains).prop_map(|(services, chains)| RandomApp {
            services,
            chains: chains.into_iter().filter(|c| !c.is_empty()).collect(),
        })
    })
}

fn build(app: &RandomApp) -> Option<Topology> {
    if app.chains.is_empty() {
        return None;
    }
    let mut b = TopologyBuilder::new();
    let ids: Vec<_> = app
        .services
        .iter()
        .enumerate()
        .map(|(i, (threads, cores))| {
            b.add_service(
                ServiceSpec::new(format!("s{i}"))
                    .threads(*threads)
                    .cores(*cores)
                    .demand_cv(0.2),
            )
        })
        .collect();
    for (i, chain) in app.chains.iter().enumerate() {
        b.add_request_type(
            format!("r{i}"),
            chain
                .iter()
                .map(|(s, d)| (ids[*s], SimDuration::from_millis(*d)))
                .collect(),
        );
    }
    Some(b.build())
}

/// A random agent mix to register on the simulation: a closed-loop user
/// population plus one `FixedRate` source per request type subset.
#[derive(Debug, Clone)]
struct AgentMix {
    users: usize,
    fixed_sources: Vec<(u64, u64)>, // (interval ms, count) per request type
}

fn mix_strategy() -> impl Strategy<Value = AgentMix> {
    (
        1usize..30,
        prop::collection::vec((5u64..40, 10u64..60), 0..3),
    )
        .prop_map(|(users, fixed_sources)| AgentMix {
            users,
            fixed_sources,
        })
}

fn populate(sim: &mut Simulation, topo: &Topology, mix: &AgentMix, seed: u64, retry_prob: f64) {
    let types: Vec<RequestTypeId> = (0..topo.num_request_types())
        .map(|t| RequestTypeId::new(t as u32))
        .collect();
    sim.add_agent(Box::new(
        ClosedLoopUsers::new(
            mix.users,
            BrowsingModel::uniform(types.iter().copied()),
            seed ^ 0x5EED,
        )
        .with_retry(retry_prob),
    ));
    for (i, (interval, count)) in mix.fixed_sources.iter().enumerate() {
        sim.add_agent(Box::new(FixedRate::new(
            types[i % types.len()],
            SimDuration::from_millis(*interval),
            *count,
        )));
    }
}

/// A random resilience configuration. Deadlines are deliberately tight
/// against the 1-12 ms step demands and the queue bounds small against the
/// thread counts, so a good fraction of cases checkpoint with live
/// deadline timers, tripped breakers and shed jobs.
#[derive(Debug, Clone)]
struct RandomResilience {
    deadline_ms: Option<u64>,
    max_attempts: u32,
    jitter: bool,
    breaker_threshold: u32,
    queue_bound: Option<u32>,
}

impl RandomResilience {
    fn config(&self) -> ResilienceConfig {
        ResilienceConfig::uniform(ResiliencePolicy {
            deadline: self.deadline_ms.map(SimDuration::from_millis),
            retry: RetryPolicy {
                max_attempts: self.max_attempts,
                backoff_base: SimDuration::from_millis(5),
                jitter: if self.jitter { 0.2 } else { 0.0 },
            },
            breaker: BreakerPolicy {
                failure_threshold: self.breaker_threshold,
                probe_interval: SimDuration::from_millis(50),
            },
            queue_bound: self.queue_bound,
        })
    }
}

fn resilience_strategy() -> impl Strategy<Value = RandomResilience> {
    // Raw integer draws folded into the option/off cases: deadline 0-3 →
    // no deadline, breaker 0-1 → breakers off, bound 0 → unbounded.
    (0u64..60, 1u32..4, 0u32..2, 0u32..20, 0u32..24).prop_map(
        |(deadline_raw, max_attempts, jitter, breaker_raw, bound_raw)| RandomResilience {
            deadline_ms: (deadline_raw >= 4).then_some(deadline_raw),
            max_attempts,
            jitter: jitter == 1,
            breaker_threshold: if breaker_raw < 2 { 0 } else { breaker_raw },
            queue_bound: (bound_raw >= 1).then_some(bound_raw),
        },
    )
}

/// Everything we compare between the forked and the uninterrupted run.
fn observe(sim: &Simulation) -> (usize, (u64, u64), Vec<(u64, u64)>) {
    (
        sim.pending_events(),
        sim.rng_fingerprint(),
        sim.metrics()
            .request_log()
            .iter()
            .map(|r| (r.submitted_at.as_micros(), r.completed_at.as_micros()))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `checkpoint` at T1, fork, run both to T2: the fork and the original
    /// must stay in lockstep on metrics, event counts and RNG positions.
    #[test]
    fn fork_matches_uninterrupted_run(
        app in app_strategy(),
        mix in mix_strategy(),
        seed in any::<u64>(),
        t1_s in 1u64..8,
    ) {
        let Some(topo) = build(&app) else { return Ok(()); };
        let mut sim = Simulation::new(topo.clone(), SimConfig::default().seed(seed));
        populate(&mut sim, &topo, &mix, seed, 0.0);

        let t1 = SimTime::from_secs(t1_s);
        let t2 = t1 + SimDuration::from_secs(10);
        sim.run_until(t1);
        let snapshot = sim.checkpoint().expect("test agents support snapshotting");
        let mut fork = Simulation::from_snapshot(&snapshot);

        // The snapshot froze the exact live state.
        prop_assert_eq!(fork.now(), sim.now());
        prop_assert_eq!(fork.pending_events(), sim.pending_events());
        prop_assert_eq!(fork.rng_fingerprint(), sim.rng_fingerprint());
        prop_assert_eq!(fork.metrics(), sim.metrics());

        // ...and both continuations stay in lockstep.
        sim.run_until(t2);
        fork.run_until(t2);
        prop_assert_eq!(observe(&fork), observe(&sim));
        prop_assert_eq!(fork.metrics(), sim.metrics());
    }

    /// Agent-internal sample stores survive the fork: a `FixedRate`
    /// source's recorded latencies — held in a copy-on-write `SegSamples`
    /// with sealed segments shared between fork and original — are
    /// logically identical at the checkpoint, stay isolated while only one
    /// side runs on, and re-converge bit-for-bit when both reach the same
    /// simulated time.
    #[test]
    fn fork_preserves_agent_sample_state(seed in any::<u64>(), t1_s in 2u64..5) {
        let mut b = TopologyBuilder::new();
        let svc = b.add_service(ServiceSpec::new("api").threads(32).cores(2).demand_cv(0.2));
        b.add_request_type("r", vec![(svc, SimDuration::from_millis(2))]);
        let mut sim = Simulation::new(b.build(), SimConfig::default().seed(seed));
        // 1 ms interval: enough completions by t1 to seal at least one
        // 1024-sample segment, so the shared-spine path is exercised.
        let id = sim.add_agent(Box::new(FixedRate::new(
            RequestTypeId::new(0),
            SimDuration::from_millis(1),
            100_000,
        )));

        let t1 = SimTime::from_secs(t1_s);
        let t2 = t1 + SimDuration::from_secs(3);
        sim.run_until(t1);
        let snapshot = sim.checkpoint().expect("FixedRate supports snapshotting");
        let mut fork = Simulation::from_snapshot(&snapshot);

        let stats = |s: &Simulation| {
            let lat = s
                .agent_as::<FixedRate>(id)
                .expect("agent survives the fork")
                .latencies_ms();
            (lat.len(), lat.mean().to_bits(), lat.max().to_bits())
        };
        let at_t1 = stats(&sim);
        prop_assert!(at_t1.0 > 1024, "want a sealed segment, got {} samples", at_t1.0);
        prop_assert_eq!(stats(&fork), at_t1);
        let p99 = |s: &mut Simulation| {
            s.agent_as_mut::<FixedRate>(id)
                .expect("agent survives the fork")
                .latencies_ms_mut()
                .percentile(0.99)
                .to_bits()
        };
        prop_assert_eq!(p99(&mut fork), p99(&mut sim));

        // Running only the original leaves the fork's store untouched.
        sim.run_until(t2);
        prop_assert_eq!(stats(&fork), at_t1);
        prop_assert!(stats(&sim).0 > at_t1.0, "original kept recording");

        // Catching the fork up re-converges every statistic bit-for-bit.
        fork.run_until(t2);
        prop_assert_eq!(stats(&fork), stats(&sim));
        prop_assert_eq!(p99(&mut fork), p99(&mut sim));
    }

    /// Resilience state is part of the snapshot: with random deadlines,
    /// retries, breakers and queue bounds active, the checkpoint can land
    /// with pending deadline timers, open breakers and retry backoffs in
    /// flight — and the fork must still stay in lockstep with the
    /// uninterrupted original, down to the off-wheel deadline FIFOs and the
    /// `"kernel/retry"` stream position.
    #[test]
    fn resilient_fork_matches_uninterrupted_run(
        app in app_strategy(),
        mix in mix_strategy(),
        res in resilience_strategy(),
        seed in any::<u64>(),
        t1_s in 1u64..6,
    ) {
        let Some(topo) = build(&app) else { return Ok(()); };
        let mut sim = Simulation::new(
            topo.clone(),
            SimConfig::default().seed(seed).resilience(res.config()),
        );
        populate(&mut sim, &topo, &mix, seed, 0.4);

        let t1 = SimTime::from_secs(t1_s);
        let t2 = t1 + SimDuration::from_secs(8);
        sim.run_until(t1);
        let snapshot = sim.checkpoint().expect("test agents support snapshotting");
        let mut fork = Simulation::from_snapshot(&snapshot);

        prop_assert_eq!(fork.now(), sim.now());
        prop_assert_eq!(fork.pending_events(), sim.pending_events());
        prop_assert_eq!(fork.pending_deadlines(), sim.pending_deadlines());
        prop_assert_eq!(fork.rng_fingerprint(), sim.rng_fingerprint());
        prop_assert_eq!(fork.metrics(), sim.metrics());

        sim.run_until(t2);
        fork.run_until(t2);
        prop_assert_eq!(observe(&fork), observe(&sim));
        prop_assert_eq!(fork.pending_deadlines(), sim.pending_deadlines());
        prop_assert_eq!(fork.metrics(), sim.metrics());
    }

    /// The snapshot is immutable: running one fork does not disturb a
    /// sibling forked from the same snapshot later.
    #[test]
    fn sibling_forks_are_independent(
        app in app_strategy(),
        mix in mix_strategy(),
        seed in any::<u64>(),
    ) {
        let Some(topo) = build(&app) else { return Ok(()); };
        let mut sim = Simulation::new(topo.clone(), SimConfig::default().seed(seed));
        populate(&mut sim, &topo, &mix, seed, 0.0);
        sim.run_until(SimTime::from_secs(3));
        let snapshot = sim.checkpoint().expect("test agents support snapshotting");
        drop(sim);

        let t2 = SimTime::from_secs(9);
        let mut first = Simulation::from_snapshot(&snapshot);
        first.run_until(t2);
        let mut second = Simulation::from_snapshot(&snapshot);
        second.run_until(t2);
        prop_assert_eq!(observe(&first), observe(&second));
        prop_assert_eq!(first.metrics(), second.metrics());
    }
}

/// A deliberately saturated cell where the random strategies only
/// *sometimes* land: at the checkpoint there are provably live deadline
/// timers (the long-deadline request type), already-tripped breakers, shed
/// and timed-out attempts and platform retries in flight. All of that
/// state must fork bit-identically and both continuations must stay in
/// lockstep.
#[test]
fn saturated_resilient_checkpoint_forks_bit_identically() {
    let mut b = TopologyBuilder::new();
    let hot = b.add_service(ServiceSpec::new("hot").threads(4).cores(1).demand_cv(0.1));
    let calm = b.add_service(ServiceSpec::new("calm").threads(8).cores(2).demand_cv(0.1));
    b.add_request_type("burst", vec![(hot, SimDuration::from_millis(5))]);
    b.add_request_type("slow", vec![(calm, SimDuration::from_millis(2))]);
    // Default policy: tight 15 ms deadline (the 4-deep wait queue alone is
    // worth ~40 ms), 3 attempts with jittered backoff, a hair-trigger
    // breaker, 4-entry queue bound. The "slow" type overrides with a 500 ms
    // deadline that never expires on the uncontended service — its entries
    // sit in their deadline class for 500 ms, so the checkpoint at 600 ms
    // is guaranteed to hold pending timers.
    let resilience = ResilienceConfig::uniform(ResiliencePolicy {
        deadline: Some(SimDuration::from_millis(15)),
        retry: RetryPolicy {
            max_attempts: 3,
            backoff_base: SimDuration::from_millis(10),
            jitter: 0.5,
        },
        breaker: BreakerPolicy {
            failure_threshold: 3,
            probe_interval: SimDuration::from_millis(50),
        },
        queue_bound: Some(4),
    })
    .set_type(
        1,
        ResiliencePolicy {
            deadline: Some(SimDuration::from_millis(500)),
            ..ResiliencePolicy::disabled()
        },
    );
    let mut sim = Simulation::new(
        b.build(),
        SimConfig::default().seed(0xBADD).resilience(resilience),
    );
    // 1000 req/s against 200 req/s of service: permanent overload.
    sim.add_agent(Box::new(FixedRate::new(
        RequestTypeId::new(0),
        SimDuration::from_millis(1),
        2_000,
    )));
    sim.add_agent(Box::new(FixedRate::new(
        RequestTypeId::new(1),
        SimDuration::from_millis(20),
        100,
    )));
    sim.run_until(SimTime::from_millis(600));

    let counters = *sim.metrics().resilience();
    assert!(counters.timed_out > 0, "saturation must expire deadlines");
    assert!(counters.shed > 0, "saturation must shed at the queue bound");
    assert!(
        counters.retries > 0,
        "failed attempts must schedule retries"
    );
    assert!(
        counters.breaker_opens > 0,
        "consecutive failures must trip the breaker"
    );
    assert!(
        sim.pending_deadlines() > 0,
        "the long-deadline class must hold pending timers at the checkpoint"
    );

    let snapshot = sim.checkpoint().expect("FixedRate supports snapshotting");
    let mut fork = Simulation::from_snapshot(&snapshot);
    assert_eq!(fork.now(), sim.now());
    assert_eq!(fork.pending_events(), sim.pending_events());
    assert_eq!(fork.pending_deadlines(), sim.pending_deadlines());
    assert_eq!(fork.rng_fingerprint(), sim.rng_fingerprint());
    assert_eq!(fork.metrics(), sim.metrics());

    let t2 = SimTime::from_millis(1_500);
    sim.run_until(t2);
    fork.run_until(t2);
    assert_eq!(observe(&fork), observe(&sim));
    assert_eq!(fork.pending_deadlines(), sim.pending_deadlines());
    assert_eq!(fork.rng_fingerprint(), sim.rng_fingerprint());
    assert_eq!(fork.metrics(), sim.metrics());
}
