//! Integration tests of the auto-scaler's full lifecycle: scale-up under
//! sustained load (with provisioning delay), scale-down when load recedes
//! (with graceful replica draining), and waiter re-routing off draining
//! replicas.

use callgraph::{RequestTypeId, ServiceId, ServiceSpec, TopologyBuilder};
use microsim::{AutoScalePolicy, ScalingDirection, SimConfig, Simulation};
use simnet::{SimDuration, SimTime};
use workload::{PoissonSource, RateTrace, RequestMix};

fn topology() -> callgraph::Topology {
    let mut b = TopologyBuilder::new();
    let gw = b.add_service(
        ServiceSpec::new("gw")
            .threads(2048)
            .cores(8)
            .blockable(false)
            .demand_cv(0.1),
    );
    // One core serving 10 ms requests: capacity 100 req/s per replica.
    let api = b.add_service(ServiceSpec::new("api").threads(64).cores(1).demand_cv(0.1));
    b.add_request_type(
        "r",
        vec![
            (gw, SimDuration::from_micros(200)),
            (api, SimDuration::from_millis(10)),
        ],
    );
    b.build()
}

const API: ServiceId = ServiceId::new(1);

fn policy() -> AutoScalePolicy {
    AutoScalePolicy {
        up_threshold: 0.70,
        down_threshold: 0.30,
        sustain_secs: 5,
        provision_delay: SimDuration::from_secs(3),
        max_replicas: 4,
    }
}

/// Load ramps high then recedes: the scaler must add replicas during the
/// surge and drain them afterwards, and service quality must recover.
#[test]
fn scale_up_then_down_follows_the_load() {
    let mut sim = Simulation::new(topology(), SimConfig::default().autoscale(policy()));
    // 30 s at 160 req/s (160% of one replica), then 90 s at 20 req/s.
    let trace = RateTrace::new(SimDuration::from_secs(30), vec![160.0, 20.0, 20.0, 20.0]);
    sim.add_agent(Box::new(PoissonSource::new(
        RequestMix::single(RequestTypeId::new(0)),
        trace,
        SimTime::from_secs(120),
        1,
    )));
    sim.run_until(SimTime::from_secs(120));

    let actions = sim.metrics().scaling_actions();
    let ups = actions
        .iter()
        .filter(|a| a.direction == ScalingDirection::Up)
        .count();
    let downs = actions
        .iter()
        .filter(|a| a.direction == ScalingDirection::Down)
        .count();
    assert!(ups >= 1, "surge must trigger a scale-up: {actions:?}");
    assert!(
        downs >= 1,
        "recession must trigger a scale-down: {actions:?}"
    );
    // The first up happens during the surge; downs happen after it.
    let first_up = actions
        .iter()
        .find(|a| a.direction == ScalingDirection::Up)
        .expect("checked");
    assert!(first_up.at < SimTime::from_secs(32));
    assert!(
        first_up.at >= SimTime::from_secs(5 + 3),
        "sustain + provision delay"
    );
    // Back to one replica at the end.
    assert_eq!(sim.active_replicas(API), 1, "quiet system drains extras");
}

/// During a sustained overload, adding the replica actually restores
/// latency: mean RT after the scale-up is far below the pre-scale peak.
#[test]
fn scale_up_restores_latency() {
    let mut sim = Simulation::new(topology(), SimConfig::default().autoscale(policy()));
    sim.add_agent(Box::new(PoissonSource::at_rate(
        RequestMix::single(RequestTypeId::new(0)),
        150.0,
        SimTime::from_secs(60),
        2,
    )));
    sim.run_until(SimTime::from_secs(60));

    let m = sim.metrics();
    let first_up = m
        .scaling_actions()
        .iter()
        .find(|a| a.direction == ScalingDirection::Up)
        .map(|a| a.at)
        .expect("overload must scale up");
    let before = telemetry::LatencySummary::compute(
        m,
        telemetry::Traffic::All,
        None,
        first_up - SimDuration::from_secs(3),
        first_up,
    );
    let after = telemetry::LatencySummary::compute(
        m,
        telemetry::Traffic::All,
        None,
        first_up + SimDuration::from_secs(10),
        SimTime::from_secs(60),
    );
    assert!(
        after.avg_ms < before.avg_ms / 2.0,
        "scale-up must relieve queueing: {:.0} -> {:.0} ms",
        before.avg_ms,
        after.avg_ms
    );
    assert!(sim.active_replicas(API) >= 2);
}

/// Requests queued on a replica that gets drained are re-routed, not lost:
/// conservation holds across a scale-down.
#[test]
fn drained_replicas_never_lose_requests() {
    let mut sim = Simulation::new(topology(), SimConfig::default().autoscale(policy()));
    // Surge to force scale-up, then drop to force drain while some
    // requests are still in flight.
    let trace = RateTrace::new(
        SimDuration::from_secs(20),
        vec![170.0, 170.0, 10.0, 10.0, 10.0],
    );
    sim.add_agent(Box::new(PoissonSource::new(
        RequestMix::single(RequestTypeId::new(0)),
        trace,
        SimTime::from_secs(100),
        3,
    )));
    sim.run_until(SimTime::from_secs(130));
    let m = sim.metrics();
    assert!(
        !m.scaling_actions().is_empty(),
        "the trace must exercise scaling"
    );
    assert_eq!(
        m.request_log().len(),
        m.access_log().len(),
        "every submitted request completes across scale events"
    );
}
