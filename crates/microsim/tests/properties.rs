//! Property-based tests of the platform simulator's invariants: request
//! conservation, causal timestamps, metric consistency and determinism on
//! randomly generated topologies and workloads.

use callgraph::{RequestTypeId, ServiceSpec, Topology, TopologyBuilder};
use microsim::agents::FixedRate;
use microsim::{SimConfig, Simulation};
use proptest::prelude::*;
use simnet::{SimDuration, SimTime};

/// A random small application: 2-5 services, 1-3 chain request types.
#[derive(Debug, Clone)]
struct RandomApp {
    services: Vec<(u32, u32)>,      // (threads, cores)
    chains: Vec<Vec<(usize, u64)>>, // (service index, demand ms)
}

fn app_strategy() -> impl Strategy<Value = RandomApp> {
    let services = prop::collection::vec((1u32..48, 1u32..4), 2..6);
    services.prop_flat_map(|services| {
        let n = services.len();
        let chain = prop::collection::vec((0..n, 1u64..12), 1..4).prop_map(move |raw| {
            // Visit each service at most once per chain.
            let mut seen = std::collections::HashSet::new();
            raw.into_iter()
                .filter(|(s, _)| seen.insert(*s))
                .collect::<Vec<_>>()
        });
        let chains = prop::collection::vec(chain, 1..4);
        (Just(services), chains).prop_map(|(services, chains)| RandomApp {
            services,
            chains: chains.into_iter().filter(|c| !c.is_empty()).collect(),
        })
    })
}

fn build(app: &RandomApp) -> Option<Topology> {
    if app.chains.is_empty() {
        return None;
    }
    let mut b = TopologyBuilder::new();
    let ids: Vec<_> = app
        .services
        .iter()
        .enumerate()
        .map(|(i, (threads, cores))| {
            b.add_service(
                ServiceSpec::new(format!("s{i}"))
                    .threads(*threads)
                    .cores(*cores)
                    .demand_cv(0.2),
            )
        })
        .collect();
    for (i, chain) in app.chains.iter().enumerate() {
        b.add_request_type(
            format!("r{i}"),
            chain
                .iter()
                .map(|(s, d)| (ids[*s], SimDuration::from_millis(*d)))
                .collect(),
        );
    }
    Some(b.build())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every submitted request eventually completes (the horizon is far
    /// beyond any queueing the tiny workload can create), timestamps are
    /// causal, and the access log matches the request log.
    #[test]
    fn requests_are_conserved_and_causal(app in app_strategy(), seed in any::<u64>()) {
        let Some(topo) = build(&app) else { return Ok(()); };
        let types = topo.num_request_types();
        let mut sim = Simulation::new(topo, SimConfig::default().seed(seed));
        let mut expected = 0u64;
        for rt in 0..types {
            let count = 5 + (rt as u64 % 3);
            expected += count;
            sim.add_agent(Box::new(FixedRate::new(
                RequestTypeId::new(rt as u32),
                SimDuration::from_millis(40),
                count,
            )));
        }
        sim.run_until(SimTime::from_secs(120));
        let m = sim.metrics();
        prop_assert_eq!(m.request_log().len() as u64, expected, "conservation");
        prop_assert_eq!(m.access_log().len() as u64, expected);
        for r in m.request_log() {
            prop_assert!(r.completed_at > r.submitted_at, "causality");
            prop_assert!(r.latency() >= SimDuration::from_micros(500), "at least the network hops");
        }
    }

    /// Metric windows are contiguous and utilisation is always in [0, 1].
    #[test]
    fn metric_windows_are_wellformed(app in app_strategy(), seed in any::<u64>()) {
        let Some(topo) = build(&app) else { return Ok(()); };
        let num_services = topo.num_services();
        let mut sim = Simulation::new(topo, SimConfig::default().seed(seed));
        sim.add_agent(Box::new(FixedRate::new(
            RequestTypeId::new(0),
            SimDuration::from_millis(10),
            100,
        )));
        sim.run_until(SimTime::from_secs(5));
        let m = sim.metrics();
        let w = m.window();
        let mut prev: Option<SimTime> = None;
        for row in m.windows() {
            prop_assert_eq!(row.len(), num_services);
            for s in row {
                let u = s.utilization(w);
                prop_assert!((0.0..=1.0).contains(&u), "util {u}");
            }
            if let Some(p) = prev {
                prop_assert_eq!(row[0].start, p + w, "windows are contiguous");
            }
            prev = Some(row[0].start);
        }
        // Arrivals at the entry service cover all submissions.
        let entry_arrivals: u32 = m.windows().map(|row| row[0].arrivals).sum();
        let _ = entry_arrivals; // entry service varies per chain; presence checked above
    }

    /// Same seed, same run — for arbitrary random applications.
    #[test]
    fn determinism_on_random_apps(app in app_strategy(), seed in any::<u64>()) {
        let Some(topo) = build(&app) else { return Ok(()); };
        let run = |topo: Topology| {
            let mut sim = Simulation::new(topo, SimConfig::default().seed(seed));
            sim.add_agent(Box::new(FixedRate::new(
                RequestTypeId::new(0),
                SimDuration::from_millis(7),
                60,
            )));
            sim.run_until(SimTime::from_secs(10));
            sim.metrics()
                .request_log()
                .iter()
                .map(|r| (r.submitted_at.as_micros(), r.completed_at.as_micros()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(topo.clone()), run(topo));
    }
}
