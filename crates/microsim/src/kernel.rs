//! The simulation kernel: platform state and event handlers.
//!
//! The kernel executes jobs against the replicated services, enforcing the
//! two blocking mechanisms described in the crate docs (thread-slot holding
//! across synchronous RPC, FIFO CPU queues per replica), samples metrics on
//! a fixed window, and runs the auto-scaler on 1 s boundaries.

use std::sync::Arc;

use callgraph::{ExecutionHistory, RequestTypeId, ServiceId, Topology};
use simnet::{EventQueue, RngStream, SimDuration, SimTime};

use crate::agent::AgentId;
use crate::autoscale::{decide, ScaleDecision, ScalingAction, ScalingDirection};
use crate::config::SimConfig;
use crate::job::{Frame, Job, Origin, Outcome, Phase, Response};
use crate::metrics::{AccessLogEntry, Metrics, NetworkWindow, RequestRecord, ServiceWindow};
use crate::replica::Segment;
use crate::resilience::{BreakerBank, DeadlineQueues};
use crate::service::Service;

/// Events interpreted by the kernel's dispatch loop.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    /// A request/RPC arrives at step `step` of `job`'s path.
    Deliver { job: usize, step: usize },
    /// The downstream reply for step `step` of `job` arrives back.
    Reply { job: usize, step: usize },
    /// A compute segment finished on a core.
    ComputeDone {
        service: usize,
        replica: usize,
        job: usize,
        step: usize,
        phase: Phase,
    },
    /// The response reaches the submitting client.
    Complete { job: usize },
    /// An agent timer fires.
    Wake { agent: AgentId, token: u64 },
    /// Metrics sampling boundary.
    Sample,
    /// A provisioned replica comes online.
    ScaleUpReady { service: usize },
    /// The front entry of deadline class `class` may have expired. Each
    /// class keeps at most one of these on the wheel (see
    /// [`DeadlineQueues`]), so pending events stay O(classes) even with
    /// 100k in-flight deadlines.
    DeadlineCheck { class: u32 },
    /// A platform-level retry's backoff elapsed: re-deliver the attempt.
    Retry { job: usize },
}

/// Why [`Kernel::pump`] returned control to the run loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PumpResult {
    /// An agent timer fired: dispatch `on_wake`.
    Wake(AgentId, u64),
    /// Responses are waiting in the outbox: dispatch `on_response`.
    Responses,
    /// Reached the time horizon.
    Idle,
}

/// Standard-normal draws buffered per refill for service-demand sampling.
///
/// Small enough to live in one cache line pair; large enough that the
/// per-refill overhead is amortised over many job stages.
const DEMAND_Z_BATCH: usize = 32;

/// The platform state. Owned by [`Simulation`](crate::Simulation); agents
/// reach it through [`SimCtx`](crate::SimCtx).
///
/// `Clone` performs a deep copy of all mutable state (event queue, replicas,
/// in-flight jobs, metric windows, RNG streams) while the immutable parts —
/// topology, execution paths, config — are shared via `Arc`. A clone is
/// therefore an exact fork: running the original and the clone with the same
/// inputs produces bit-identical histories.
///
/// The `Clone` impl lives in [`crate::snapshot`] and clones every field
/// explicitly, one line per field, so that `simlint`'s snapshot-completeness
/// rule can cross-check this field list against the clone path: adding a
/// field here without extending the snapshot is a CI failure, not a silent
/// stale fork. Fields are `pub(crate)` for that impl only — nothing outside
/// the crate sees them.
pub struct Kernel {
    pub(crate) topology: Arc<Topology>,
    pub(crate) paths: Arc<Vec<callgraph::ExecutionPath>>,
    pub(crate) cfg: Arc<SimConfig>,
    pub(crate) now: SimTime,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) services: Vec<Service>,
    pub(crate) jobs: Vec<Option<Job>>,
    pub(crate) free_jobs: Vec<usize>,
    pub(crate) metrics: Metrics,
    pub(crate) demand_rng: RngStream,
    /// Buffered standard-normal draws for demand sampling, consumed in draw
    /// order; see [`Kernel::next_demand_z`].
    pub(crate) demand_z: [f64; DEMAND_Z_BATCH],
    pub(crate) demand_z_next: usize,
    pub(crate) trace_rng: RngStream,
    pub(crate) next_token: u64,
    /// Responses produced during event handling, drained by the run loop
    /// and dispatched to agents.
    pub(crate) outbox: Vec<(AgentId, Response)>,
    /// Recycled span buffers for traced jobs.
    pub(crate) span_pool: Vec<Vec<(SimTime, SimTime)>>,
    /// Reused per-sample window buffer.
    pub(crate) win_scratch: Vec<ServiceWindow>,
    // Per-window counters (reset at each sample).
    pub(crate) win_arrivals: Vec<u32>,
    pub(crate) win_completions: Vec<u32>,
    pub(crate) win_net: NetworkWindow,
    // Per-second utilisation accumulation for the auto-scaler.
    pub(crate) sec_busy: Vec<SimDuration>,
    pub(crate) sec_started: SimTime,
    pub(crate) windows_per_sec: u64,
    pub(crate) windows_seen: u64,
    /// Backoff-jitter draws for platform retries; see the sequence-layout
    /// contract in [`crate::resilience`].
    pub(crate) retry_rng: RngStream,
    /// Pending per-attempt deadlines, bucketed by duration class.
    pub(crate) deadlines: DeadlineQueues,
    /// Per-service circuit breakers (disabled when `failure_threshold` is
    /// zero).
    pub(crate) breakers: BreakerBank,
    /// Fast gate: `false` when every resilience policy is disabled, in
    /// which case the kernel takes exactly the pre-resilience code paths —
    /// no extra events, draws, or records.
    pub(crate) resilience_active: bool,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .field("services", &self.services.len())
            .field("in_flight_jobs", &(self.jobs.len() - self.free_jobs.len()))
            .finish_non_exhaustive()
    }
}

impl Kernel {
    pub(crate) fn new(topology: Topology, cfg: SimConfig) -> Self {
        let now = SimTime::ZERO;
        let services: Vec<Service> = topology
            .services()
            .iter()
            .cloned()
            .map(|spec| Service::new(spec, now))
            .collect();
        let n = services.len();
        let paths = topology.paths();
        let mut queue = EventQueue::with_capacity(1024);
        queue.push(now + cfg.window, Event::Sample);
        let windows_per_sec = (1_000_000 / cfg.window.as_micros()).max(1);
        let type_deadlines: Vec<Option<SimDuration>> = (0..paths.len())
            .map(|rt| cfg.resilience.policy_for(rt as u32).deadline)
            .collect();
        Kernel {
            retry_rng: RngStream::from_label(cfg.seed, "kernel/retry"),
            deadlines: DeadlineQueues::new(&type_deadlines),
            breakers: BreakerBank::new(
                n,
                cfg.resilience.default.breaker.failure_threshold,
                cfg.resilience.default.breaker.probe_interval,
            ),
            resilience_active: !cfg.resilience.is_disabled(),
            metrics: Metrics::new(cfg.window, n),
            demand_rng: RngStream::from_label(cfg.seed, "kernel/demand"),
            demand_z: [0.0; DEMAND_Z_BATCH],
            demand_z_next: DEMAND_Z_BATCH,
            trace_rng: RngStream::from_label(cfg.seed, "kernel/trace"),
            topology: Arc::new(topology),
            paths: Arc::new(paths),
            cfg: Arc::new(cfg),
            now,
            queue,
            services,
            jobs: Vec::new(),
            free_jobs: Vec::new(),
            next_token: 0,
            outbox: Vec::new(),
            span_pool: Vec::new(),
            win_scratch: Vec::with_capacity(n),
            win_arrivals: vec![0; n],
            win_completions: vec![0; n],
            win_net: NetworkWindow::default(),
            sec_busy: vec![SimDuration::ZERO; n],
            sec_started: now,
            windows_per_sec,
            windows_seen: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The application topology (admin view).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Collected metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Active replica count of a service (admin view; Fig 15b).
    pub fn active_replicas(&self, service: ServiceId) -> usize {
        self.services[service.index()].active_replicas()
    }

    /// Public request-type catalogue (what crawling the public URLs
    /// yields).
    pub fn request_type_catalog(&self) -> Vec<(RequestTypeId, String)> {
        self.topology
            .request_types()
            .iter()
            .map(|rt| (rt.id, rt.name.clone()))
            .collect()
    }

    // ---- client API (via SimCtx) ----

    pub(crate) fn submit(
        &mut self,
        agent: AgentId,
        request_type: RequestTypeId,
        origin: Origin,
        tag: u64,
    ) -> u64 {
        assert!(
            request_type.index() < self.paths.len(),
            "unknown request type {request_type}"
        );
        let token = self.next_token;
        self.next_token += 1;

        let spec = self.topology.request_type(request_type);
        let bytes = spec.request_bytes + self.cfg.platform.per_message_overhead;
        self.win_net.bytes_in += bytes;
        if self.cfg.access_log {
            self.metrics.record_access(AccessLogEntry {
                at: self.now,
                origin,
                request_type,
                bytes,
            });
        }

        let trace = self.cfg.trace_sampling > 0.0 && self.trace_rng.chance(self.cfg.trace_sampling);
        let steps = self.paths[request_type.index()].len();
        let spans = trace.then(|| {
            let mut buf = self.span_pool.pop().unwrap_or_default();
            buf.clear();
            buf.resize(steps, (SimTime::ZERO, SimTime::ZERO));
            buf
        });
        let job = Job {
            agent,
            token,
            tag,
            request_type,
            origin,
            submitted_at: self.now,
            orig_token: token,
            attempt: 1,
            cancelled: false,
            frames: crate::inline_vec::InlineVec::new(),
            spans,
        };
        let id = match self.free_jobs.pop() {
            Some(i) => {
                self.jobs[i] = Some(job);
                i
            }
            None => {
                self.jobs.push(Some(job));
                self.jobs.len() - 1
            }
        };
        self.queue.push(
            self.now + self.cfg.platform.net_latency,
            Event::Deliver { job: id, step: 0 },
        );
        if self.resilience_active {
            if let Some((expiry, class)) =
                self.deadlines
                    .arm(self.now, request_type.index() as u32, id, token)
            {
                self.queue.push(expiry, Event::DeadlineCheck { class });
            }
        }
        token
    }

    pub(crate) fn schedule_wake(&mut self, agent: AgentId, delay: SimDuration, token: u64) {
        self.queue
            .push(self.now + delay, Event::Wake { agent, token });
    }

    // ---- event loop ----

    /// Pops and handles events up to and including `until`, yielding back
    /// to the run loop whenever an agent must be re-entered: on an agent
    /// timer, or as soon as completed responses are waiting in the outbox
    /// (so agents observe their responses at the timestamp they completed,
    /// before any later event is processed).
    pub(crate) fn pump(&mut self, until: SimTime) -> PumpResult {
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked");
            self.now = t;
            match ev {
                Event::Wake { agent, token } => return PumpResult::Wake(agent, token),
                Event::Deliver { job, step } => self.handle_deliver(job, step),
                Event::Reply { job, step } => self.handle_reply(job, step),
                Event::ComputeDone {
                    service,
                    replica,
                    job,
                    step,
                    phase,
                } => self.handle_compute_done(service, replica, job, step, phase),
                Event::Complete { job } => self.handle_complete(job),
                Event::Sample => self.handle_sample(),
                Event::ScaleUpReady { service } => self.handle_scale_up(service),
                Event::DeadlineCheck { class } => self.handle_deadline_check(class),
                Event::Retry { job } => self.handle_retry(job),
            }
            if !self.outbox.is_empty() {
                return PumpResult::Responses;
            }
        }
        self.now = until.max(self.now);
        PumpResult::Idle
    }

    fn path_of(&self, job: usize) -> &callgraph::ExecutionPath {
        let rt = self.jobs[job].as_ref().expect("live job").request_type;
        &self.paths[rt.index()]
    }

    fn handle_deliver(&mut self, job: usize, step: usize) {
        if self.resilience_active && self.reap_if_cancelled(job) {
            return;
        }
        let service_id = self.path_of(job).steps()[step].service;
        let sidx = service_id.index();
        if self.resilience_active && !self.breakers.admit(sidx, self.now) {
            // Open breaker: fail fast before the request touches the
            // service (no arrival is counted, no frame pushed). Breaker
            // rejections do not themselves feed the failure counter.
            self.fail_attempt(job, Outcome::Rejected, sidx, false, true);
            return;
        }
        self.win_arrivals[sidx] += 1;
        let ridx = self.services[sidx].pick_replica();
        {
            let j = self.jobs[job].as_mut().expect("live job");
            debug_assert_eq!(j.frames.len(), step, "frames grow with descent");
            j.frames.push(Frame {
                replica: ridx,
                admitted: false,
            });
            if let Some(spans) = &mut j.spans {
                spans[step].0 = self.now;
            }
        }
        let queue_bound = self.cfg.resilience.default.queue_bound;
        let replica = &mut self.services[sidx].replicas[ridx];
        if replica.try_admit() {
            self.jobs[job].as_mut().expect("live job").frames[step].admitted = true;
            self.start_segment(sidx, ridx, job, step, Phase::Pre);
        } else if self.resilience_active
            && queue_bound.is_some_and(|b| replica.wait_queue.len() >= b as usize)
        {
            // Full bounded queue: shed on arrival. The frame just pushed
            // was never admitted; drop it before failing the attempt.
            self.jobs[job].as_mut().expect("live job").frames.pop();
            self.fail_attempt(job, Outcome::Shed, sidx, true, true);
        } else {
            self.services[sidx].replicas[ridx]
                .wait_queue
                .push_back((job, step));
        }
    }

    /// Samples the jittered duration of a compute segment and offers it to
    /// the replica's CPU.
    fn start_segment(&mut self, sidx: usize, ridx: usize, job: usize, step: usize, phase: Phase) {
        let path = self.path_of(job);
        let is_leaf = step + 1 == path.len();
        let mean = path.steps()[step].demand.as_secs_f64()
            * self.cfg.platform.demand_scale
            * if is_leaf { 1.0 } else { 0.5 };
        let cv = self.services[sidx].spec.demand_cv;
        // Same draw discipline as `RngStream::lognormal_mean_cv`: a normal
        // draw is consumed only when the distribution is non-degenerate, so
        // the batched buffer reproduces per-call sampling bit-for-bit.
        let secs = if mean > 0.0 && cv > 0.0 {
            let z = self.next_demand_z();
            simnet::lognormal_mean_cv_from_z(mean, cv, z)
        } else if mean > 0.0 {
            mean
        } else {
            0.0
        };
        let duration = SimDuration::from_secs_f64(secs);
        // A leaf spends its whole demand in Pre; intermediate steps split
        // half before the downstream call, half after the reply.
        let seg = Segment {
            job,
            step,
            phase,
            duration,
        };
        let now = self.now;
        if self.services[sidx].replicas[ridx].offer_segment(seg, now) {
            self.queue.push(
                now + duration,
                Event::ComputeDone {
                    service: sidx,
                    replica: ridx,
                    job,
                    step,
                    phase,
                },
            );
        }
    }

    /// Next buffered standard-normal draw for demand jitter, refilling the
    /// batch from `demand_rng` when exhausted.
    ///
    /// Nothing else draws from `demand_rng`, so prefetching a batch yields
    /// exactly the sequence per-call sampling would have seen.
    #[inline]
    fn next_demand_z(&mut self) -> f64 {
        if self.demand_z_next == DEMAND_Z_BATCH {
            self.demand_rng.fill_standard_normal(&mut self.demand_z);
            self.demand_z_next = 0;
        }
        let z = self.demand_z[self.demand_z_next];
        self.demand_z_next += 1;
        z
    }

    fn handle_compute_done(
        &mut self,
        sidx: usize,
        ridx: usize,
        job: usize,
        step: usize,
        phase: Phase,
    ) {
        // Hand the core to the next queued segment, if any. A queued
        // segment of a cancelled job is skipped: popping it consumes that
        // job's last reference, so the tombstone is reaped and the core
        // takes the next segment (repeated `finish_segment` calls at the
        // same instant are safe: busy-time accounting is idempotent).
        let now = self.now;
        loop {
            match self.services[sidx].replicas[ridx].finish_segment(now) {
                Some(next)
                    if self.resilience_active
                        && self.jobs[next.job].as_ref().is_some_and(|j| j.cancelled) =>
                {
                    self.reap(next.job);
                }
                Some(next) => {
                    self.queue.push(
                        now + next.duration,
                        Event::ComputeDone {
                            service: sidx,
                            replica: ridx,
                            job: next.job,
                            step: next.step,
                            phase: next.phase,
                        },
                    );
                    break;
                }
                None => break,
            }
        }
        // A cancelled job's running segment finishes its core time (work
        // is not preempted) but the job advances no further.
        if self.resilience_active && self.reap_if_cancelled(job) {
            return;
        }
        // Advance the finished job.
        let path_len = self.path_of(job).len();
        match phase {
            Phase::Pre if step + 1 < path_len => {
                // Descend: the thread slot at this step stays held.
                self.queue.push(
                    now + self.cfg.platform.net_latency,
                    Event::Deliver {
                        job,
                        step: step + 1,
                    },
                );
            }
            _ => self.finish_step(sidx, ridx, job, step),
        }
    }

    /// The job is done at `step`: release the slot, wake a waiter, and
    /// propagate the reply upstream (or complete the request).
    fn finish_step(&mut self, sidx: usize, ridx: usize, job: usize, step: usize) {
        self.win_completions[sidx] += 1;
        if self.resilience_active {
            // A completed step at this service is the breaker's success
            // signal (it also ends a half-open probe, closing the breaker).
            self.breakers.on_success(sidx);
        }
        {
            let j = self.jobs[job].as_mut().expect("live job");
            if let Some(spans) = &mut j.spans {
                spans[step].1 = self.now;
            }
            debug_assert_eq!(j.frames.len(), step + 1, "finishing the deepest frame");
            j.frames.pop();
        }
        self.release_slot_and_admit_waiter(sidx, ridx);
        let net = self.cfg.platform.net_latency;
        if step == 0 {
            self.queue.push(self.now + net, Event::Complete { job });
        } else {
            self.queue.push(
                self.now + net,
                Event::Reply {
                    job,
                    step: step - 1,
                },
            );
        }
    }

    fn handle_reply(&mut self, job: usize, step: usize) {
        if self.resilience_active && self.reap_if_cancelled(job) {
            return;
        }
        let frame = self.jobs[job].as_ref().expect("live job").frames[step];
        let service_id = self.path_of(job).steps()[step].service;
        self.start_segment(service_id.index(), frame.replica, job, step, Phase::Post);
    }

    fn handle_complete(&mut self, job: usize) {
        if self.resilience_active && self.reap_if_cancelled(job) {
            return;
        }
        let j = self.jobs[job].take().expect("live job");
        self.free_jobs.push(job);
        let spec = self.topology.request_type(j.request_type);
        self.win_net.bytes_out += spec.response_bytes + self.cfg.platform.per_message_overhead;
        self.metrics.record_request(RequestRecord {
            request_type: j.request_type,
            origin: j.origin,
            submitted_at: j.submitted_at,
            completed_at: self.now,
            outcome: Outcome::Ok,
        });
        if let Some(spans) = j.spans {
            let mut hist = ExecutionHistory::new();
            let path = &self.paths[j.request_type.index()];
            let mut parent = None;
            for (i, &(start, end)) in spans.iter().enumerate() {
                parent = Some(hist.record(parent, path.steps()[i].service, start, end));
            }
            self.metrics.record_trace(j.request_type, hist);
            self.span_pool.push(spans);
        }
        self.outbox.push((
            j.agent,
            Response {
                token: j.orig_token,
                tag: j.tag,
                request_type: j.request_type,
                submitted_at: j.submitted_at,
                completed_at: self.now,
                outcome: Outcome::Ok,
            },
        ));
    }

    // ---- resilience: deadlines, retries, breakers, shedding ----

    /// Frees a job slot whose last outstanding reference was just
    /// consumed, returning its span buffer to the pool.
    fn reap(&mut self, job: usize) {
        let j = self.jobs[job].take().expect("reaping a live slot");
        self.free_jobs.push(job);
        if let Some(spans) = j.spans {
            self.span_pool.push(spans);
        }
    }

    /// Reaps `job` if it is a cancelled tombstone. Returns `true` when the
    /// caller's reference was the tombstone's last and has been consumed.
    fn reap_if_cancelled(&mut self, job: usize) -> bool {
        if self.jobs[job].as_ref().is_some_and(|j| j.cancelled) {
            self.reap(job);
            true
        } else {
            false
        }
    }

    /// Releases one admitted thread slot on `(sidx, ridx)` and admits the
    /// next live waiter, if any. Cancelled waiters' queue entries are
    /// their last reference: they are reaped and the next entry is tried.
    /// With resilience disabled no job is ever cancelled and this is
    /// exactly the pre-resilience release path.
    fn release_slot_and_admit_waiter(&mut self, sidx: usize, ridx: usize) {
        self.services[sidx].replicas[ridx].release();
        while let Some((wjob, wstep)) = self.services[sidx].replicas[ridx].wait_queue.pop_front() {
            if self.jobs[wjob].as_ref().is_some_and(|j| j.cancelled) {
                self.reap(wjob);
                continue;
            }
            if self.services[sidx].replicas[ridx].try_admit() {
                self.jobs[wjob].as_mut().expect("live waiter").frames[wstep].admitted = true;
                self.start_segment(sidx, ridx, wjob, wstep, Phase::Pre);
            } else {
                // Draining replica: reroute the waiter to another replica.
                self.jobs[wjob].as_mut().expect("live waiter").frames.pop();
                self.win_arrivals[sidx] = self.win_arrivals[sidx].saturating_sub(1);
                self.queue.push(
                    self.now,
                    Event::Deliver {
                        job: wjob,
                        step: wstep,
                    },
                );
            }
            break;
        }
    }

    /// Fails the current attempt of `job` with `outcome`: tombstones it,
    /// releases every thread slot it holds (admitting waiters), records
    /// the failed attempt in the request log, feeds the failing service's
    /// breaker, and either schedules a platform retry or delivers the
    /// failure [`Response`].
    ///
    /// `reap_now` is set when the caller just consumed the job's only
    /// outstanding progress reference (its `Deliver` event): the slot is
    /// freed here and may be reused immediately by the retry. Otherwise
    /// (deadline expiry) the job stays a cancelled tombstone until its
    /// outstanding reference — an in-flight event or queue entry — is next
    /// touched.
    fn fail_attempt(
        &mut self,
        job: usize,
        outcome: Outcome,
        fail_sidx: usize,
        count_failure: bool,
        reap_now: bool,
    ) {
        let now = self.now;
        let j = self.jobs[job].as_mut().expect("live job");
        j.cancelled = true;
        let agent = j.agent;
        let orig_token = j.orig_token;
        let tag = j.tag;
        let rt = j.request_type;
        let origin = j.origin;
        let submitted_at = j.submitted_at;
        let attempt = j.attempt;
        let held = j.frames.len();
        // Release admitted slots deepest-first, admitting waiters as slots
        // free up. Frames are re-read through `self.jobs` each iteration
        // because waiter admission can (on a path that revisits a service)
        // pop this very tombstone's own wait entry and reap it.
        for step in (0..held).rev() {
            let Some(j) = self.jobs[job].as_ref() else {
                break;
            };
            let frame = j.frames[step];
            if !frame.admitted {
                continue;
            }
            let sidx = self.paths[rt.index()].steps()[step].service.index();
            self.release_slot_and_admit_waiter(sidx, frame.replica);
        }
        match outcome {
            Outcome::TimedOut => self.metrics.resilience.timed_out += 1,
            Outcome::Rejected => self.metrics.resilience.rejected += 1,
            Outcome::Shed => self.metrics.resilience.shed += 1,
            Outcome::Ok => unreachable!("Ok is not a failure"),
        }
        if count_failure && self.breakers.on_failure(fail_sidx, now) {
            self.metrics.resilience.breaker_opens += 1;
        }
        // Failed attempts enter the request log at failure time (the log
        // is ordered by completion, which here is the failure instant).
        self.metrics.record_request(RequestRecord {
            request_type: rt,
            origin,
            submitted_at,
            completed_at: now,
            outcome,
        });
        if reap_now && self.jobs[job].is_some() {
            self.reap(job);
        }
        let policy = *self.cfg.resilience.policy_for(rt.index() as u32);
        if attempt < policy.retry.max_attempts {
            self.metrics.resilience.retries += 1;
            let token = self.next_token;
            self.next_token += 1;
            // The retry takes a fresh slot and per-attempt token (deadline
            // staleness keys on it) but keeps the original token and
            // submission time the client knows. Retries are never traced,
            // so the trace stream's layout is independent of failures.
            let retry = Job {
                agent,
                token,
                tag,
                request_type: rt,
                origin,
                submitted_at,
                orig_token,
                attempt: attempt + 1,
                cancelled: false,
                frames: crate::inline_vec::InlineVec::new(),
                spans: None,
            };
            let id = match self.free_jobs.pop() {
                Some(i) => {
                    self.jobs[i] = Some(retry);
                    i
                }
                None => {
                    self.jobs.push(Some(retry));
                    self.jobs.len() - 1
                }
            };
            // Exponential backoff with optional multiplicative jitter; the
            // jitter draw is the sole consumer of the `kernel/retry`
            // stream and is skipped entirely when `jitter == 0`.
            let shift = (attempt - 1).min(20);
            let mut backoff = policy.retry.backoff_base.as_secs_f64() * (1u64 << shift) as f64;
            if policy.retry.jitter > 0.0 {
                backoff *= 1.0 + policy.retry.jitter * self.retry_rng.unit();
            }
            self.queue.push(
                now + SimDuration::from_secs_f64(backoff),
                Event::Retry { job: id },
            );
        } else {
            self.outbox.push((
                agent,
                Response {
                    token: orig_token,
                    tag,
                    request_type: rt,
                    submitted_at,
                    completed_at: now,
                    outcome,
                },
            ));
        }
    }

    /// Drains the due entries of deadline `class`, timing out the live
    /// ones, then re-schedules the class's single wheel event at the next
    /// pending expiry (or disarms the class).
    fn handle_deadline_check(&mut self, class: u32) {
        let now = self.now;
        while let Some((job, token)) = self.deadlines.pop_due(class, now) {
            // Stale entries — the attempt completed, already failed, or
            // the slot was reused — fail the token comparison and are
            // dropped without effect.
            let live = self.jobs[job]
                .as_ref()
                .is_some_and(|j| j.token == token && !j.cancelled);
            if !live {
                continue;
            }
            let j = self.jobs[job].as_ref().expect("checked live");
            // Attribute the timeout to the deepest service reached (the
            // one the request was stuck at); a request timing out before
            // first delivery charges its entry service.
            let path = &self.paths[j.request_type.index()];
            let fail_step = j.frames.len().saturating_sub(1);
            let fail_sidx = path.steps()[fail_step].service.index();
            self.fail_attempt(job, Outcome::TimedOut, fail_sidx, true, false);
        }
        if let Some(next) = self.deadlines.re_arm(class) {
            self.queue.push(next, Event::DeadlineCheck { class });
        }
    }

    /// A scheduled retry's backoff elapsed: the attempt re-enters the
    /// platform like a fresh submission — network-ingress accounting and
    /// an access-log entry (retry storms stay IDS-visible) — and arms its
    /// own per-attempt deadline.
    fn handle_retry(&mut self, job: usize) {
        let j = self.jobs[job].as_ref().expect("live retry");
        let rt = j.request_type;
        let origin = j.origin;
        let token = j.token;
        let spec = self.topology.request_type(rt);
        let bytes = spec.request_bytes + self.cfg.platform.per_message_overhead;
        self.win_net.bytes_in += bytes;
        if self.cfg.access_log {
            self.metrics.record_access(AccessLogEntry {
                at: self.now,
                origin,
                request_type: rt,
                bytes,
            });
        }
        self.queue.push(
            self.now + self.cfg.platform.net_latency,
            Event::Deliver { job, step: 0 },
        );
        if let Some((expiry, class)) = self.deadlines.arm(self.now, rt.index() as u32, job, token) {
            self.queue.push(expiry, Event::DeadlineCheck { class });
        }
    }

    fn handle_sample(&mut self) {
        let now = self.now;
        let mut windows = std::mem::take(&mut self.win_scratch);
        windows.clear();
        for (i, svc) in self.services.iter_mut().enumerate() {
            let mut busy = SimDuration::ZERO;
            for r in &mut svc.replicas {
                busy += r.take_busy(now);
            }
            self.sec_busy[i] += busy;
            windows.push(ServiceWindow {
                start: now - self.cfg.window,
                busy,
                active_cores: svc.active_cores(),
                admitted: svc.total_admitted(),
                waiting: svc.total_waiting() as u32,
                arrivals: self.win_arrivals[i],
                completions: self.win_completions[i],
                replicas: svc.active_replicas() as u32,
            });
            self.win_arrivals[i] = 0;
            self.win_completions[i] = 0;
        }
        let net = std::mem::take(&mut self.win_net);
        self.metrics.push_window(&windows, net);
        self.win_scratch = windows;
        self.windows_seen += 1;

        // Auto-scaler runs on 1 s boundaries over the accumulated busy time.
        if self.windows_seen.is_multiple_of(self.windows_per_sec) {
            if let Some(policy) = self.cfg.autoscale {
                let elapsed = now.saturating_since(self.sec_started).as_secs_f64();
                for i in 0..self.services.len() {
                    let svc = &mut self.services[i];
                    let cores = f64::from(svc.active_cores().max(1));
                    let util = if elapsed > 0.0 {
                        (self.sec_busy[i].as_secs_f64() / (elapsed * cores)).min(1.0)
                    } else {
                        0.0
                    };
                    let mut hot = svc.hot_seconds;
                    let mut cold = svc.cold_seconds;
                    let decision = decide(&policy, util, &mut hot, &mut cold);
                    svc.hot_seconds = hot;
                    svc.cold_seconds = cold;
                    match decision {
                        ScaleDecision::Up => {
                            if !svc.scaling_in_flight
                                && (svc.active_replicas() as u32) < policy.max_replicas
                            {
                                svc.scaling_in_flight = true;
                                self.queue.push(
                                    now + policy.provision_delay,
                                    Event::ScaleUpReady { service: i },
                                );
                            }
                        }
                        ScaleDecision::Down => {
                            if svc.drain_one() {
                                let _rerouted = self.reroute_drained_waiters(i);
                                let after = self.services[i].active_replicas() as u32;
                                self.metrics.record_scaling(ScalingAction {
                                    at: now,
                                    service: ServiceId::new(i as u32),
                                    direction: ScalingDirection::Down,
                                    replicas_after: after,
                                });
                            }
                        }
                        ScaleDecision::Hold => {}
                    }
                    self.sec_busy[i] = SimDuration::ZERO;
                }
            } else {
                for b in &mut self.sec_busy {
                    *b = SimDuration::ZERO;
                }
            }
            self.sec_started = now;
        }

        self.queue.push(now + self.cfg.window, Event::Sample);
    }

    /// Moves waiters off draining replicas of service `i` back through the
    /// load balancer. Returns how many were rerouted.
    fn reroute_drained_waiters(&mut self, sidx: usize) -> usize {
        let mut moved = 0;
        let mut rerouted: Vec<(usize, usize)> = Vec::new(); // simlint: allow(hot-path-alloc) — rare drain path; Vec::new is allocation-free
        for r in &mut self.services[sidx].replicas {
            if r.draining {
                while let Some(w) = r.wait_queue.pop_front() {
                    rerouted.push(w);
                }
            }
        }
        for (job, step) in rerouted {
            if self.jobs[job].as_ref().is_some_and(|j| j.cancelled) {
                // The drained queue entry was the tombstone's last
                // reference.
                self.reap(job);
                continue;
            }
            self.jobs[job].as_mut().expect("live waiter").frames.pop();
            self.win_arrivals[sidx] = self.win_arrivals[sidx].saturating_sub(1);
            self.queue.push(self.now, Event::Deliver { job, step });
            moved += 1;
        }
        moved
    }

    fn handle_scale_up(&mut self, sidx: usize) {
        let svc = &mut self.services[sidx];
        svc.add_replica(self.now);
        svc.scaling_in_flight = false;
        let after = svc.active_replicas() as u32;
        self.metrics.record_scaling(ScalingAction {
            at: self.now,
            service: ServiceId::new(sidx as u32),
            direction: ScalingDirection::Up,
            replicas_after: after,
        });
    }

    /// Consumes the kernel, returning the recorded metrics.
    pub(crate) fn into_metrics(self) -> Metrics {
        self.metrics
    }

    /// Number of events pending in the calendar (snapshot-equivalence
    /// checks).
    pub(crate) fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Pending deadline entries across all classes (off-wheel bookkeeping).
    pub(crate) fn pending_deadlines(&self) -> usize {
        self.deadlines.pending()
    }

    /// Fingerprints of the kernel's RNG streams (demand, trace) without
    /// advancing them.
    pub(crate) fn rng_fingerprint(&self) -> (u64, u64) {
        (self.demand_rng.fingerprint(), self.trace_rng.fingerprint())
    }
}
