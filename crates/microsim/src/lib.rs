//! Discrete-event microservice platform simulator.
//!
//! This crate is the runtime substrate of the reproduction: it executes a
//! [`callgraph::Topology`] the way a container cluster executes a
//! microservice application, reproducing the two mechanisms the Grunt
//! attack exploits:
//!
//! 1. **Millibottlenecks** — each replica has a small number of CPU cores;
//!    compute segments queue FIFO for a core, so a burst saturates the core
//!    for a sub-second window.
//! 2. **Cross-tier queue overflow** — RPC is synchronous and a caller
//!    *holds its worker-thread slot* in every upstream service while the
//!    downstream call is outstanding. When a downstream service saturates,
//!    upstream thread pools fill and requests of *other* types sharing
//!    those upstream services block (the paper's blocking effects).
//!
//! # Architecture
//!
//! * [`Simulation`] owns the platform state ([`kernel::Kernel`]) and a set
//!   of [`Agent`]s (closed-loop users, the attacker's bot farm, probes).
//! * Agents interact with the platform only through [`SimCtx`]: they can
//!   submit requests, receive [`Response`]s and schedule wake-ups. This is
//!   the *external user view* — the type system enforces that the attacker
//!   implemented in the `grunt` crate stays blackbox.
//! * White-box observability (per-service CPU windows, queue lengths,
//!   request logs, scaling actions, access logs) is available *after or
//!   during* a run via [`Simulation::metrics`]; the `telemetry` crate
//!   layers CloudWatch-style views on top.
//!
//! # Example
//!
//! ```
//! use callgraph::{ServiceSpec, TopologyBuilder};
//! use microsim::{SimConfig, Simulation};
//! use simnet::{SimDuration, SimTime};
//!
//! let mut b = TopologyBuilder::new();
//! let gw = b.add_service(ServiceSpec::new("gateway").threads(64));
//! let api = b.add_service(ServiceSpec::new("api").threads(16));
//! b.add_request_type(
//!     "get",
//!     vec![
//!         (gw, SimDuration::from_millis(1)),
//!         (api, SimDuration::from_millis(5)),
//!     ],
//! );
//! let topo = b.build();
//!
//! let mut sim = Simulation::new(topo, SimConfig::default().seed(7));
//! // Inject a single request through an open-loop helper agent.
//! sim.add_agent(Box::new(microsim::agents::OneShot::new(
//!     callgraph::RequestTypeId::new(0),
//! )));
//! sim.run_until(SimTime::from_secs(1));
//! assert_eq!(sim.metrics().request_log().len(), 1);
//! ```

pub mod agent;
pub mod agents;
pub mod autoscale;
pub mod config;
mod inline_vec;
pub mod job;
pub mod kernel;
pub mod metrics;
pub mod replica;
pub mod resilience;
pub mod seglog;
pub mod service;
pub mod sim;
pub mod snapshot;

pub use agent::{Agent, AgentId, SimCtx};
pub use autoscale::{AutoScalePolicy, ScalingAction, ScalingDirection};
pub use config::{
    BreakerPolicy, PlatformProfile, ResilienceConfig, ResiliencePolicy, RetryPolicy, SimConfig,
    TypePolicy,
};
pub use job::{Origin, Outcome, Response};
pub use metrics::{AccessLogEntry, Metrics, RequestRecord, ResilienceCounters, ServiceWindow};
pub use seglog::{AccessLog, Csr, RequestFilter, RequestLog, SegLog, WindowLog};
pub use sim::Simulation;
pub use snapshot::{AgentState, SimSnapshot, Snapshot, SnapshotError};
