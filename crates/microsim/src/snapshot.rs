//! Warm-state checkpointing: capture a running simulation and fork it.
//!
//! A [`SimSnapshot`] freezes *everything* that determines the future of a
//! simulation — the kernel (event calendar with its `(time, seq)` counter,
//! replicas, thread-pool occupancy, in-flight jobs and spans, metric
//! windows, RNG streams) and the state of every registered agent. Forking a
//! snapshot yields a [`Simulation`](crate::Simulation) whose subsequent
//! history is **bit-identical** to the original's: snapshots are exact deep
//! copies of the mutable state, while the large immutable parts (topology,
//! execution paths, config) are shared via `Arc`, so cloning a snapshot per
//! sweep cell — or per worker thread — is cheap.
//!
//! Agents participate through [`Snapshot`], which any `Clone` agent gets
//! for free, plus a one-line [`Agent::snapshot`](crate::Agent::snapshot)
//! override that makes the capability visible through `dyn Agent`:
//!
//! ```
//! use microsim::{Agent, AgentState, SimCtx};
//!
//! #[derive(Clone)]
//! struct Probe {
//!     fired: u64,
//! }
//!
//! impl Agent for Probe {
//!     fn start(&mut self, _ctx: &mut SimCtx<'_>) {}
//!     fn snapshot(&self) -> Option<AgentState> {
//!         Some(AgentState::of(self))
//!     }
//! }
//! ```

use std::fmt;
use std::sync::Arc;

use crate::agent::Agent;
use crate::kernel::Kernel;
use crate::metrics::Metrics;

/// The kernel's snapshot path: every field cloned explicitly, one line per
/// field, so nothing can be forgotten silently.
///
/// `Kernel` deliberately does **not** derive `Clone`: a derive would keep
/// compiling when a new field is added even if that field must *not* be
/// shared between a snapshot and its fork (e.g. anything `Rc`/`RefCell`-like
/// or a cache keyed on identity). Writing the copy out per field keeps the
/// decision explicit, and `simlint`'s `snapshot-complete` rule cross-checks
/// this impl against `Kernel`'s field list: a field added to the struct but
/// missing here fails CI.
impl Clone for Kernel {
    fn clone(&self) -> Self {
        Kernel {
            // Immutable per-run structure: shared, not copied.
            topology: Arc::clone(&self.topology),
            paths: Arc::clone(&self.paths),
            cfg: Arc::clone(&self.cfg),
            // Mutable simulation state: exact deep copies.
            now: self.now,
            queue: self.queue.clone(),
            services: self.services.clone(),
            jobs: self.jobs.clone(),
            free_jobs: self.free_jobs.clone(),
            metrics: self.metrics.clone(),
            demand_rng: self.demand_rng.clone(),
            demand_z: self.demand_z,
            demand_z_next: self.demand_z_next,
            trace_rng: self.trace_rng.clone(),
            next_token: self.next_token,
            outbox: self.outbox.clone(),
            span_pool: self.span_pool.clone(),
            win_scratch: self.win_scratch.clone(),
            win_arrivals: self.win_arrivals.clone(),
            win_completions: self.win_completions.clone(),
            win_net: self.win_net,
            sec_busy: self.sec_busy.clone(),
            sec_started: self.sec_started,
            windows_per_sec: self.windows_per_sec,
            windows_seen: self.windows_seen,
            retry_rng: self.retry_rng.clone(),
            deadlines: self.deadlines.clone(),
            breakers: self.breakers.clone(),
            resilience_active: self.resilience_active,
        }
    }
}

/// The metrics' snapshot path: copy-on-write, written out per field like
/// [`Kernel`]'s so `simlint`'s `snapshot-complete` rule can cross-check it
/// against the `Metrics` field list.
///
/// The segmented logs (`windows`, `request_log`, `access_log`, `traces`)
/// share their sealed warm prefix behind `Arc` — cloning them bumps
/// refcounts and copies only the bounded mutable tail, so fork cost is
/// independent of how much history the warm run accumulated. Sealed
/// segments are immutable by construction (appends go to a fresh tail), so
/// the sharing is invisible: the fork and the original can never observe
/// each other's writes.
impl Clone for Metrics {
    fn clone(&self) -> Self {
        Metrics {
            window: self.window,
            num_services: self.num_services,
            // COW segmented logs: Arc-shared prefix + copied tail.
            windows: self.windows.clone(),
            request_log: self.request_log.clone(),
            access_log: self.access_log.clone(),
            traces: self.traces.clone(),
            // Rare events: a plain deep copy stays negligible.
            scaling_actions: self.scaling_actions.clone(),
            resilience: self.resilience,
        }
    }
}

/// Implemented by agents whose live state can be captured into a
/// [`SimSnapshot`] and restored in a fork.
///
/// Blanket-implemented for every agent that is `Clone + Send + Sync`; the
/// captured state is simply a clone, which is exact by construction. Agents
/// must *also* override [`Agent::snapshot`](crate::Agent::snapshot) (the
/// object-safe hook `Simulation::checkpoint` discovers the capability
/// through) to return `Some(Snapshot::snapshot(self))`.
pub trait Snapshot: Agent + Clone + Send + Sync + Sized {
    /// Captures this agent's current state.
    fn snapshot(&self) -> AgentState {
        AgentState::of(self)
    }

    /// Rebuilds a live boxed agent from a captured state.
    fn restore(state: &AgentState) -> Box<dyn Agent> {
        state.restore()
    }
}

impl<A: Agent + Clone + Send + Sync> Snapshot for A {}

/// The captured state of one agent: a type-erased, cloneable box that can
/// be turned back into a live `Box<dyn Agent>`.
pub struct AgentState(Box<dyn ErasedAgentState>);

impl AgentState {
    /// Captures `agent` by cloning it behind a type-erased box.
    pub fn of<A: Agent + Clone + Send + Sync>(agent: &A) -> AgentState {
        AgentState(Box::new(CloneState(agent.clone())))
    }

    /// Rebuilds a live boxed agent from this state.
    pub(crate) fn restore(&self) -> Box<dyn Agent> {
        self.0.clone_box().into_agent()
    }
}

impl Clone for AgentState {
    fn clone(&self) -> Self {
        AgentState(self.0.clone_box())
    }
}

impl fmt::Debug for AgentState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("AgentState(..)")
    }
}

trait ErasedAgentState: Send + Sync {
    fn clone_box(&self) -> Box<dyn ErasedAgentState>;
    fn into_agent(self: Box<Self>) -> Box<dyn Agent>;
}

struct CloneState<A>(A);

impl<A: Agent + Clone + Send + Sync> ErasedAgentState for CloneState<A> {
    fn clone_box(&self) -> Box<dyn ErasedAgentState> {
        Box::new(CloneState(self.0.clone()))
    }

    fn into_agent(self: Box<Self>) -> Box<dyn Agent> {
        Box::new(self.0)
    }
}

/// A frozen simulation, captured by
/// [`Simulation::checkpoint`](crate::Simulation::checkpoint) and forked by
/// [`Simulation::from_snapshot`](crate::Simulation::from_snapshot).
///
/// Cloning is cheap relative to re-running the simulated time it encodes:
/// the topology, execution paths, and config are `Arc`-shared, so a clone
/// copies only the live mutable state. `SimSnapshot` is `Send + Sync`, so a
/// sweep can hold one behind an `Arc` and let each worker thread fork its
/// own cells.
#[derive(Clone)]
pub struct SimSnapshot {
    pub(crate) kernel: Kernel,
    pub(crate) agents: Vec<AgentState>,
    pub(crate) started: Vec<bool>,
}

impl SimSnapshot {
    /// The simulated time at which this snapshot was taken.
    pub fn taken_at(&self) -> simnet::SimTime {
        self.kernel.now()
    }

    /// Number of agents captured in this snapshot.
    pub fn num_agents(&self) -> usize {
        self.agents.len()
    }
}

impl fmt::Debug for SimSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimSnapshot")
            .field("taken_at", &self.kernel.now())
            .field("agents", &self.agents.len())
            .finish()
    }
}

/// Why a checkpoint could not be taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The agent registered at `index` does not support snapshotting (its
    /// [`Agent::snapshot`](crate::Agent::snapshot) returned `None`).
    UnsupportedAgent {
        /// Registration index of the offending agent.
        index: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::UnsupportedAgent { index } => write!(
                f,
                "agent #{index} does not support snapshotting \
                 (Agent::snapshot returned None)"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}
